"""Stream-processing work-flow graphs (Figure 1.1).

"The data-fusion graph for an application is a tree rooted at an
application with data sources as the leaves, and operators as
intermediate nodes; multiple applications may share data sources or
operators and thus we can use a circle-and-arrow acyclic graph ... to
represent a general structure of work flows" (section 1.1).

:class:`WorkflowGraph` models that DAG: sources (no inputs),
applications (no outputs) and operators in between, with validation and
the queries requirement propagation and filter deployment need.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["NodeKind", "WorkflowGraph"]


class NodeKind(Enum):
    SOURCE = "source"
    OPERATOR = "operator"
    APPLICATION = "application"


class WorkflowGraph:
    """An acyclic source -> operators -> applications flow graph."""

    def __init__(self) -> None:
        self._kind: dict[str, NodeKind] = {}
        self._downstream: dict[str, set[str]] = {}
        self._upstream: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_source(self, name: str) -> None:
        self._add_node(name, NodeKind.SOURCE)

    def add_operator(self, name: str) -> None:
        self._add_node(name, NodeKind.OPERATOR)

    def add_application(self, name: str) -> None:
        self._add_node(name, NodeKind.APPLICATION)

    def _add_node(self, name: str, kind: NodeKind) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        if name in self._kind:
            raise ValueError(f"node {name!r} already exists")
        self._kind[name] = kind
        self._downstream[name] = set()
        self._upstream[name] = set()

    def connect(self, upstream: str, downstream: str) -> None:
        """Add a data-flow edge; validates kinds and acyclicity."""
        for name in (upstream, downstream):
            if name not in self._kind:
                raise KeyError(f"unknown node {name!r}")
        if self._kind[upstream] is NodeKind.APPLICATION:
            raise ValueError("applications are sinks; they have no downstream")
        if self._kind[downstream] is NodeKind.SOURCE:
            raise ValueError("sources are roots; they have no upstream")
        if upstream == downstream:
            raise ValueError("self-loops are not allowed")
        if self._reaches(downstream, upstream):
            raise ValueError(
                f"edge {upstream!r} -> {downstream!r} would create a cycle"
            )
        self._downstream[upstream].add(downstream)
        self._upstream[downstream].add(upstream)

    def _reaches(self, start: str, target: str) -> bool:
        frontier = [start]
        seen = set()
        while frontier:
            node = frontier.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._downstream[node])
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def kind(self, name: str) -> NodeKind:
        try:
            return self._kind[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def nodes(self) -> list[str]:
        return sorted(self._kind)

    def sources(self) -> list[str]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.SOURCE)

    def applications(self) -> list[str]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.APPLICATION)

    def operators(self) -> list[str]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.OPERATOR)

    def downstream(self, name: str) -> list[str]:
        self.kind(name)
        return sorted(self._downstream[name])

    def upstream(self, name: str) -> list[str]:
        self.kind(name)
        return sorted(self._upstream[name])

    def fan_out(self, name: str) -> int:
        """Number of direct downstream consumers of a node's output."""
        return len(self._downstream[name])

    def topological_order(self) -> list[str]:
        """Sources first, applications last; deterministic order."""
        in_degree = {name: len(self._upstream[name]) for name in self._kind}
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: list[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = []
            for downstream in self._downstream[node]:
                in_degree[downstream] -= 1
                if in_degree[downstream] == 0:
                    inserted.append(downstream)
            for name in sorted(inserted):
                ready.append(name)
            ready.sort()
        if len(order) != len(self._kind):  # pragma: no cover - guarded by connect()
            raise RuntimeError("graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check the deployment is complete: every application can trace
        back to at least one source, and no node dangles."""
        for app in self.applications():
            if not self._reaches_upstream_source(app):
                raise ValueError(f"application {app!r} is not fed by any source")
        for operator in self.operators():
            if not self._downstream[operator]:
                raise ValueError(f"operator {operator!r} feeds nobody")
            if not self._upstream[operator]:
                raise ValueError(f"operator {operator!r} has no input")

    def _reaches_upstream_source(self, name: str) -> bool:
        frontier = [name]
        seen = set()
        while frontier:
            node = frontier.pop()
            if self._kind[node] is NodeKind.SOURCE:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._upstream[node])
        return False
