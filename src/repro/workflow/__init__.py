"""Stream-processing work-flow graphs and deployment planning
(Figure 1.1, sections 1.1 and 2.2.1)."""

from repro.workflow.deploy import JuncturePlan, plan_deployment
from repro.workflow.graph import NodeKind, WorkflowGraph

__all__ = ["JuncturePlan", "NodeKind", "WorkflowGraph", "plan_deployment"]
