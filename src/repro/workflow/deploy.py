"""Deployment planning: where do group-aware filters go?

Section 2.2.1: "Our bandwidth optimization focuses on data sources or
operators that need to send data to remote downstream operators or
proxies via multicast."  Given a work-flow graph and the propagated
quality requirements, :func:`plan_deployment` decides, per data-sharing
juncture, whether to install a group-aware filter service (fan-out of at
least two subscribing applications) or a plain self-interested filter,
and assembles the per-juncture engine configuration (filters + the
group's conjoined time constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.cuts import TimeConstraint
from repro.filters.base import GroupAwareFilter
from repro.workflow.graph import NodeKind, WorkflowGraph

if TYPE_CHECKING:  # pragma: no cover - break the qos <-> workflow cycle
    from repro.qos.propagation import PropagatedRequirements
    from repro.qos.spec import QualitySpec

__all__ = ["JuncturePlan", "plan_deployment"]


@dataclass
class JuncturePlan:
    """Filtering configuration for one data-sharing juncture."""

    node: str
    specs: list["QualitySpec"]
    group_aware: bool
    time_constraint: Optional[TimeConstraint]

    def build_filters(self) -> list[GroupAwareFilter]:
        return [spec.instantiate() for spec in self.specs]


def plan_deployment(
    graph: WorkflowGraph,
    requirements: "PropagatedRequirements",
    min_group_size: int = 2,
) -> list[JuncturePlan]:
    """One plan per source/operator that serves at least one application.

    Junctures serving ``min_group_size`` or more applications get a
    group-aware service; single-subscriber nodes fall back to plain
    filtering (no group to coordinate).
    """
    if min_group_size < 2:
        raise ValueError("a group needs at least two members")
    plans: list[JuncturePlan] = []
    for node in graph.nodes():
        if graph.kind(node) is NodeKind.APPLICATION:
            continue
        specs = requirements.specs_at(node)
        if not specs:
            continue
        group_aware = len(specs) >= min_group_size
        constraint = None
        if group_aware:
            constraint = specs[0].group_time_constraint(*specs[1:])
        plans.append(
            JuncturePlan(
                node=node,
                specs=specs,
                group_aware=group_aware,
                time_constraint=constraint,
            )
        )
    return plans
