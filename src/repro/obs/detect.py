"""Streaming detectors: raw series in, scalar signals out.

Each detector here is a tiny stateful reducer the
:class:`~repro.obs.watch.Watchtower` feeds once per poll.  They hold no
opinions about thresholds — they turn scraped series into *signals*
(rates, robust anomaly scores, regression ratios, windowed event
counts) and the declarative rules in :mod:`repro.obs.slo` decide what
is worth a verdict.

All of them are pure Python over bounded deques: no clocks of their own
(the poller passes ``now``), no background tasks, deterministic given
the same inputs.
"""

from __future__ import annotations

from collections import deque
from statistics import median

__all__ = [
    "BucketDelta",
    "EventWindow",
    "MadDetector",
    "P99Baseline",
    "RateTracker",
]


class RateTracker:
    """Per-key counter → rate/s, with counter-reset handling.

    Prometheus counters only go up — until the process restarts.  A
    respawned worker re-exports its families from zero, so a negative
    delta is read as a reset and the new absolute value *is* the delta
    (everything since the restart).  The first observation of a key has
    no baseline and yields ``None``.
    """

    def __init__(self) -> None:
        self._previous: dict[object, tuple[float, float]] = {}

    def rate(self, key: object, value: float, now: float) -> float | None:
        return self.rate_and_delta(key, value, now)[0]

    def rate_and_delta(
        self, key: object, value: float, now: float
    ) -> tuple[float | None, float | None]:
        previous = self._previous.get(key)
        self._previous[key] = (value, now)
        if previous is None:
            return None, None
        prev_value, prev_ts = previous
        delta = value - prev_value
        if delta < 0:  # counter reset (worker respawn)
            delta = value
        dt = now - prev_ts
        return (delta / dt if dt > 0 else None), delta


class MadDetector:
    """Robust anomaly score: |x − median| / max(1.4826·MAD, min_scale).

    The median absolute deviation makes the score immune to the step it
    is trying to detect (a mean/stddev scorer chases its own tail).
    ``min_scale`` is the absolute noise floor: a perfectly flat history
    has MAD 0, and without the floor any jitter would score infinite.
    Scores are computed against the history *before* the new value is
    admitted, so a step scores high on arrival and decays as the window
    refills — flat → 0, step/spike → fires, recovery → clears.
    """

    def __init__(
        self,
        window: int = 64,
        min_samples: int = 8,
        min_scale: float = 1.0,
    ):
        if min_samples < 3:
            raise ValueError("min_samples must be at least 3")
        self._values: deque[float] = deque(maxlen=window)
        self.min_samples = min_samples
        self.min_scale = min_scale

    def score(self, value: float) -> float:
        """Anomaly score of ``value`` vs history (0.0 while warming up)."""
        if len(self._values) < self.min_samples:
            return 0.0
        center = median(self._values)
        mad = median(abs(v - center) for v in self._values)
        scale = max(1.4826 * mad, self.min_scale)
        return abs(value - center) / scale

    def update(self, value: float) -> float:
        """Score ``value`` then admit it to the history."""
        score = self.score(value)
        self._values.append(value)
        return score


class P99Baseline:
    """Latency regression ratio against a warmup baseline.

    The first ``warmup`` observations are collected untested; their
    median becomes the baseline and every later observation reports
    ``value / baseline``.  ``min_baseline`` stops a microsecond-scale
    warmup from flagging every later millisecond as a 1000× regression.
    """

    def __init__(self, warmup: int = 5, min_baseline: float = 1.0):
        if warmup < 1:
            raise ValueError("warmup must be at least 1")
        self.warmup = warmup
        self.min_baseline = min_baseline
        self._warm: list[float] = []
        self.baseline: float | None = None

    def update(self, value: float) -> float | None:
        """Regression ratio vs baseline (``None`` while warming up)."""
        if self.baseline is None:
            self._warm.append(value)
            if len(self._warm) >= self.warmup:
                self.baseline = max(median(self._warm), self.min_baseline)
            return None
        return value / self.baseline


class EventWindow:
    """Count of timestamped occurrences inside a sliding window."""

    def __init__(self, window_s: float = 60.0):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._times: deque[float] = deque()

    def add(self, ts: float) -> None:
        self._times.append(ts)

    def count(self, now: float) -> int:
        horizon = now - self.window_s
        times = self._times
        while times and times[0] < horizon:
            times.popleft()
        return len(times)


class BucketDelta:
    """Per-interval histogram buckets from cumulative scrape snapshots.

    Exposed histogram buckets are lifetime-cumulative, which dampens
    every fresh pathology under the weight of history.  This tracker
    differences consecutive snapshots per series key, yielding the
    bucket counts of *this poll interval only* — the honest input for a
    latency-regression detector.  A shrinking count (worker restart)
    resets the baseline and reports the new snapshot as the interval.
    """

    def __init__(self) -> None:
        self._previous: dict[object, dict[float, float]] = {}

    def delta(
        self, key: object, cumulative: dict[float, float]
    ) -> dict[float, float]:
        previous = self._previous.get(key)
        self._previous[key] = dict(cumulative)
        if previous is None:
            return dict(cumulative)
        out: dict[float, float] = {}
        reset = False
        for bound, count in cumulative.items():
            diff = count - previous.get(bound, 0.0)
            if diff < 0:
                reset = True
                break
            out[bound] = diff
        if reset:
            return dict(cumulative)
        return out
