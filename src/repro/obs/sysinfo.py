"""Host fingerprint stamped into benchmark trajectory artifacts.

Successive CI runs accumulate ``BENCH_*.json`` histories; a throughput
regression is only interpretable if each row says what hardware and
interpreter produced it.  One dict, JSON-ready, cheap to compute.
"""

from __future__ import annotations

import os
import platform

__all__ = ["platform_info"]


def platform_info() -> dict:
    """CPU count, OS and interpreter identity of this host."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
    }
