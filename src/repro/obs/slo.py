"""Declarative health rules, SLO burn windows and verdicts.

The detector layer (:mod:`repro.obs.detect`) reduces a scrape to a flat
``{signal_name: value}`` dict; this module turns signals into
*verdicts*:

* :class:`Rule` — an instant threshold on one signal (``warn`` /
  ``critical`` bounds with a comparison operator), evaluated every
  poll.  A rule whose signal is absent this poll abstains — no data is
  not bad data.
* :class:`SloWindow` — a rolling error-budget burn window: each poll
  contributes good/bad counts, and the window's burn rate (observed
  error ratio over the budget ``1 − objective``) grades the verdict.
  One catastrophic poll dominates the window immediately, so an
  induced overflow storm goes critical within a single poll interval.
* :class:`Verdict` / :class:`HealthReport` — the structured output:
  every verdict names the signal, value, thresholds and the exact
  evidence series that fired, and the report's overall status is the
  worst of its verdicts.

Statuses order ``ok < warn < critical``; :func:`worst` folds them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "DEFAULT_RULES",
    "HealthReport",
    "Rule",
    "SloWindow",
    "Verdict",
    "default_rules",
    "default_slos",
    "worst",
]

OK = "ok"
WARN = "warn"
CRITICAL = "critical"

_RANK = {OK: 0, WARN: 1, CRITICAL: 2}


def worst(statuses: Sequence[str]) -> str:
    """The most severe status in ``statuses`` (``ok`` when empty)."""
    top = OK
    for status in statuses:
        if _RANK.get(status, 0) > _RANK[top]:
            top = status
    return top


@dataclass(frozen=True)
class Verdict:
    """One graded judgement with the evidence that produced it."""

    name: str
    status: str
    signal: str
    value: Optional[float] = None
    threshold: Optional[float] = None
    evidence: dict = field(default_factory=dict)
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "signal": self.signal,
            "value": self.value,
            "threshold": self.threshold,
            "evidence": dict(self.evidence),
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Rule:
    """Instant threshold rule over one signal.

    ``op`` is the *bad* direction: with ``op=">"`` the rule fires when
    the signal exceeds a bound, with ``op="<"`` when it falls below.
    Either bound may be ``None`` (that grade is never issued).
    ``series`` names the exposition series (and event kinds) a fired
    verdict should cite as evidence.
    """

    name: str
    signal: str
    warn: Optional[float] = None
    critical: Optional[float] = None
    op: str = ">"
    series: tuple[str, ...] = ()
    detail: str = ""

    def __post_init__(self) -> None:
        if self.op not in (">", "<"):
            raise ValueError(f"unknown rule op {self.op!r}")
        if self.warn is None and self.critical is None:
            raise ValueError(f"rule {self.name!r} has no thresholds")

    def _breaches(self, value: float, bound: Optional[float]) -> bool:
        if bound is None:
            return False
        return value > bound if self.op == ">" else value < bound

    def evaluate(self, signals: dict) -> Optional[Verdict]:
        """Grade the rule against this poll's signals (None = abstain)."""
        value = signals.get(self.signal)
        if value is None:
            return None
        if self._breaches(value, self.critical):
            status, threshold = CRITICAL, self.critical
        elif self._breaches(value, self.warn):
            status, threshold = WARN, self.warn
        else:
            status, threshold = OK, None
        return Verdict(
            name=self.name,
            status=status,
            signal=self.signal,
            value=value,
            threshold=threshold,
            evidence={
                "op": self.op,
                "warn": self.warn,
                "critical": self.critical,
                "series": list(self.series),
            },
            detail=self.detail,
        )


class SloWindow:
    """Rolling burn-rate window over per-poll good/bad observations.

    The error budget is ``1 − objective``; the burn rate is the
    window's observed error ratio divided by that budget.  A burn of
    1.0 means the budget is being consumed exactly as fast as the SLO
    tolerates; sustained burns above ``warn_burn`` / ``critical_burn``
    grade the verdict.  Observations are weighted by their counts, so
    one storm poll with thousands of bad units swings the whole window
    at once.
    """

    def __init__(
        self,
        name: str,
        *,
        signal: str,
        objective: float = 0.99,
        window_s: float = 60.0,
        warn_burn: float = 1.0,
        critical_burn: float = 4.0,
        series: Sequence[str] = (),
        detail: str = "",
    ):
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.name = name
        self.signal = signal
        self.objective = objective
        self.window_s = window_s
        self.warn_burn = warn_burn
        self.critical_burn = critical_burn
        self.series = tuple(series)
        self.detail = detail
        self._observations: deque[tuple[float, float, float]] = deque()

    def observe(self, now: float, good: float, bad: float) -> None:
        """Record one poll's good/bad unit counts."""
        self._observations.append((now, max(0.0, good), max(0.0, bad)))
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        observations = self._observations
        while observations and observations[0][0] < horizon:
            observations.popleft()

    def evaluate(self, now: float) -> Optional[Verdict]:
        """Grade the window's burn rate (None before any observation)."""
        self._evict(now)
        good = sum(g for _, g, _ in self._observations)
        bad = sum(b for _, _, b in self._observations)
        total = good + bad
        if total <= 0:
            return None
        error_ratio = bad / total
        budget = 1.0 - self.objective
        burn = error_ratio / budget
        if burn >= self.critical_burn:
            status, threshold = CRITICAL, self.critical_burn
        elif burn >= self.warn_burn:
            status, threshold = WARN, self.warn_burn
        else:
            status, threshold = OK, None
        return Verdict(
            name=self.name,
            status=status,
            signal=self.signal,
            value=round(burn, 6),
            threshold=threshold,
            evidence={
                "objective": self.objective,
                "window_s": self.window_s,
                "error_ratio": round(error_ratio, 6),
                "good": good,
                "bad": bad,
                "warn_burn": self.warn_burn,
                "critical_burn": self.critical_burn,
                "series": list(self.series),
            },
            detail=self.detail,
        )


@dataclass
class HealthReport:
    """One poll's full judgement: overall status, verdicts, signals."""

    ts: float
    poll: int
    status: str
    verdicts: list[Verdict]
    signals: dict

    @property
    def firing(self) -> list[Verdict]:
        return [v for v in self.verdicts if v.status != OK]

    def counts(self) -> dict:
        out = {OK: 0, WARN: 0, CRITICAL: 0}
        for verdict in self.verdicts:
            out[verdict.status] = out.get(verdict.status, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "schema": "repro-health/v1",
            "ts": self.ts,
            "poll": self.poll,
            "status": self.status,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "signals": dict(self.signals),
        }


def default_rules() -> list[Rule]:
    """The stock rule set, tuned so a healthy run grades all-ok.

    Thresholds lean conservative on warn-able noise (queue scores,
    stall ratios) and hair-trigger on unambiguous failure (a dead
    worker is critical the poll it is seen).
    """
    return [
        Rule(
            "worker_dead",
            signal="workers_down",
            critical=0.5,
            series=("repro_cluster_worker_alive",),
            detail="cluster worker process down (alive gauge is 0)",
        ),
        Rule(
            "worker_death_seen",
            signal="worker_deaths_recent",
            critical=0.5,
            series=("event:worker_death", "event:worker_lost"),
            detail="worker_death/worker_lost event inside the flap window",
        ),
        Rule(
            "worker_flapping",
            signal="worker_respawns_per_min",
            warn=2.5,
            critical=5.5,
            series=(
                "repro_cluster_worker_respawns_total",
                "event:worker_respawn",
            ),
            detail="supervisor is respawning workers repeatedly",
        ),
        Rule(
            "overflow_drops",
            signal="overflow_drop_ratio",
            warn=0.01,
            critical=0.10,
            series=(
                "repro_session_overflow_dropped_tuples_total",
                "repro_broker_decided_emissions_total",
            ),
            detail="decided tuples dropped by session overflow policies",
        ),
        Rule(
            "backpressure_stall",
            signal="backpressure_stall_ratio",
            warn=0.25,
            critical=0.75,
            series=("repro_transport_backpressure_stall_seconds_total",),
            detail="fraction of wall time spent stalled on slow consumers",
        ),
        Rule(
            "queue_depth_anomaly",
            signal="queue_depth_score_max",
            warn=6.0,
            critical=12.0,
            series=("repro_session_queue_depth_high_water",),
            detail="session queue high-water jumped vs its own history "
            "(MAD score)",
        ),
        Rule(
            "stage_p99_regression",
            signal="stage_p99_regression_max",
            warn=3.0,
            critical=10.0,
            series=("repro_stage_latency_ms",),
            detail="a stage's interval p99 regressed vs its warmup "
            "baseline",
        ),
        Rule(
            "event_log_overrun",
            signal="events_dropped_rate",
            warn=10.0,
            series=("repro_events_dropped_total",),
            detail="bounded event log is evicting entries faster than "
            "readers drain them",
        ),
    ]


#: Evaluated-once default instance, for callers that only introspect.
DEFAULT_RULES: tuple[Rule, ...] = tuple(default_rules())


def default_slos(
    *,
    decide_p99_target_ms: float = 500.0,
    window_s: float = 60.0,
) -> list[SloWindow]:
    """Stock SLOs: decide-latency p99 and overflow-drop error budget."""
    return [
        SloWindow(
            "slo_decide_p99",
            signal="decide_p99_ms",
            objective=0.9,
            window_s=window_s,
            warn_burn=1.0,
            critical_burn=3.0,
            series=("repro_stage_latency_ms{stage=decide}",),
            detail=f"polls with decide p99 over {decide_p99_target_ms}ms "
            "burning the 10% violation budget",
        ),
        SloWindow(
            "slo_overflow_drops",
            signal="overflow_drop_ratio",
            objective=0.999,
            window_s=window_s,
            warn_burn=1.0,
            critical_burn=10.0,
            series=(
                "repro_session_overflow_dropped_tuples_total",
                "repro_broker_decided_emissions_total",
            ),
            detail="dropped vs decided tuples against a 99.9% delivery "
            "objective",
        ),
    ]
