"""Declarative Watchtower rules + remediation policy from a file.

One file configures the whole control loop: detection thresholds
(``[[rule]]``), SLO burn windows (``[[slo]]``), Watchtower knobs
(``[watch]``) and the remediation policy (``[remediation]``).  TOML is
the native format where the interpreter ships :mod:`tomllib` (3.11+);
JSON with the same shape is accepted everywhere, so a 3.10 deployment
loses nothing but syntax sugar.

Rules and SLOs *merge by name* over the defaults: a file entry whose
``name`` matches a stock rule replaces it, a new name extends the set,
and ``replace_defaults = true`` starts from an empty set instead.  A
rule entry of just ``name`` + ``disable = true`` drops the stock rule.

Example (TOML)::

    replace_defaults = false

    [watch]
    interval_s = 0.5
    decide_p99_target_ms = 250.0

    [[rule]]
    name = "overflow_drops"        # overrides the stock thresholds
    signal = "overflow_drop_ratio"
    warn = 0.05
    critical = 0.25

    [[slo]]
    name = "slo_decide_p99"
    signal = "decide_p99_ms"
    objective = 0.95
    window_s = 30.0

    [remediation]
    max_risk = 0.6
    cooldown_s = 10.0
    allow_scale = true
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.obs.slo import Rule, SloWindow, default_rules, default_slos

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None

__all__ = [
    "RulesFileError",
    "RulesConfig",
    "load_rules_file",
    "rules_config_from_dict",
]

#: Keys accepted in a ``[watch]`` table (anything else is a typo).
_WATCH_KEYS = frozenset(
    {
        "interval_s",
        "decide_p99_target_ms",
        "death_window_s",
        "flap_window_s",
    }
)

_RULE_KEYS = frozenset(
    {"name", "signal", "warn", "critical", "op", "detail", "series", "disable"}
)

_SLO_KEYS = frozenset(
    {
        "name",
        "signal",
        "objective",
        "window_s",
        "warn_burn",
        "critical_burn",
        "detail",
        "series",
        "disable",
    }
)

_REMEDIATION_KEYS = frozenset(
    {
        "max_risk",
        "cooldown_s",
        "actions_per_window",
        "window_s",
        "allow_scale",
        "allow_shed",
        "max_workers",
    }
)


class RulesFileError(ValueError):
    """A rules file that parsed but does not describe a valid config."""


@dataclass
class RulesConfig:
    """Everything a rules file configures, resolved against defaults."""

    rules: list[Rule] = field(default_factory=list)
    slos: list[SloWindow] = field(default_factory=list)
    watch: dict = field(default_factory=dict)
    #: Raw ``[remediation]`` table (``None`` when absent).  Kept as a
    #: dict so this module does not import the service layer; feed it to
    #: ``repro.service.remediate.RemediationPolicy(**remediation)``.
    remediation: Optional[dict] = None


def _parse_text(text: str, suffix: str, path: str) -> dict:
    if suffix in (".toml", ".tml"):
        if tomllib is None:
            raise RulesFileError(
                f"{path}: TOML rules need Python 3.11+ (tomllib); "
                "re-encode the file as JSON for older interpreters"
            )
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise RulesFileError(f"{path}: invalid TOML: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        if tomllib is not None:
            # Unsuffixed files: accept TOML too before giving up.
            try:
                return tomllib.loads(text)
            except tomllib.TOMLDecodeError:
                pass
        raise RulesFileError(f"{path}: not valid JSON{' or TOML' if tomllib else ''}: {exc}") from exc


def _check_keys(table: dict, allowed: frozenset, where: str) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise RulesFileError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"expected {', '.join(sorted(allowed))}"
        )


def _build_rule(entry: dict, where: str) -> Optional[Rule]:
    _check_keys(entry, _RULE_KEYS, where)
    name = entry.get("name")
    if not name or not isinstance(name, str):
        raise RulesFileError(f"{where}: every rule needs a string 'name'")
    if entry.get("disable"):
        return None
    signal = entry.get("signal")
    if not signal or not isinstance(signal, str):
        raise RulesFileError(f"{where} ({name!r}): missing 'signal'")
    try:
        return Rule(
            name=name,
            signal=signal,
            warn=entry.get("warn"),
            critical=entry.get("critical"),
            op=entry.get("op", ">"),
            series=tuple(entry.get("series", ())),
            detail=str(entry.get("detail", "")),
        )
    except ValueError as exc:
        raise RulesFileError(f"{where} ({name!r}): {exc}") from exc


def _build_slo(entry: dict, where: str) -> Optional[SloWindow]:
    _check_keys(entry, _SLO_KEYS, where)
    name = entry.get("name")
    if not name or not isinstance(name, str):
        raise RulesFileError(f"{where}: every slo needs a string 'name'")
    if entry.get("disable"):
        return None
    signal = entry.get("signal")
    if not signal or not isinstance(signal, str):
        raise RulesFileError(f"{where} ({name!r}): missing 'signal'")
    kwargs = {}
    for key in ("objective", "window_s", "warn_burn", "critical_burn"):
        if key in entry:
            kwargs[key] = float(entry[key])
    try:
        return SloWindow(
            name,
            signal=signal,
            series=tuple(entry.get("series", ())),
            detail=str(entry.get("detail", "")),
            **kwargs,
        )
    except ValueError as exc:
        raise RulesFileError(f"{where} ({name!r}): {exc}") from exc


def load_rules_file(path: str | Path) -> RulesConfig:
    """Load, validate and resolve a rules file against the defaults."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise RulesFileError(f"cannot read rules file {path}: {exc}") from exc
    data = _parse_text(text, path.suffix.lower(), str(path))
    return rules_config_from_dict(data, where=str(path))


def rules_config_from_dict(data: dict, where: str = "<inline>") -> RulesConfig:
    """Validate and resolve an already-parsed rules table.

    The same resolution :func:`load_rules_file` applies after parsing —
    exposed so embedding configs (scenario files carrying a
    ``[watch_rules]`` table) reuse one loader instead of re-implementing
    the merge-by-name semantics.  ``where`` labels error messages.
    """
    path = where
    if not isinstance(data, dict):
        raise RulesFileError(f"{path}: top level must be a table/object")
    known_top = {"replace_defaults", "watch", "rule", "slo", "remediation"}
    _check_keys(data, frozenset(known_top), str(path))
    replace = bool(data.get("replace_defaults", False))

    def _entries(key: str) -> list[dict]:
        raw = data.get(key, [])
        if not isinstance(raw, list) or not all(
            isinstance(e, dict) for e in raw
        ):
            raise RulesFileError(
                f"{path}: '{key}' must be an array of tables "
                f"([[{key}]] in TOML, a list of objects in JSON)"
            )
        return raw

    # Merge-by-name over defaults (or a blank slate).
    rules: dict[str, Rule] = (
        {} if replace else {r.name: r for r in default_rules()}
    )
    for i, entry in enumerate(_entries("rule")):
        name = str(entry.get("name", ""))
        built = _build_rule(entry, f"{path}: rule[{i}]")
        if built is None:
            rules.pop(name, None)
        else:
            rules[built.name] = built

    watch = data.get("watch", {})
    if not isinstance(watch, dict):
        raise RulesFileError(f"{path}: 'watch' must be a table/object")
    _check_keys(watch, _WATCH_KEYS, f"{path}: watch")
    watch = {k: float(v) for k, v in watch.items()}
    if watch.get("interval_s", 1.0) <= 0:
        raise RulesFileError(f"{path}: watch.interval_s must be positive")

    slo_defaults = default_slos(
        decide_p99_target_ms=watch.get("decide_p99_target_ms", 500.0)
    )
    slos: dict[str, SloWindow] = (
        {} if replace else {s.name: s for s in slo_defaults}
    )
    for i, entry in enumerate(_entries("slo")):
        name = str(entry.get("name", ""))
        built = _build_slo(entry, f"{path}: slo[{i}]")
        if built is None:
            slos.pop(name, None)
        else:
            slos[built.name] = built

    remediation = data.get("remediation")
    if remediation is not None:
        if not isinstance(remediation, dict):
            raise RulesFileError(
                f"{path}: 'remediation' must be a table/object"
            )
        _check_keys(
            remediation, _REMEDIATION_KEYS, f"{path}: remediation"
        )
        remediation = dict(remediation)

    return RulesConfig(
        rules=list(rules.values()),
        slos=list(slos.values()),
        watch=watch,
        remediation=remediation,
    )
