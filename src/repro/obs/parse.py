"""Prometheus text-exposition parser: the Watchtower's input side.

:mod:`repro.obs.metrics` renders counters, gauges and histograms into
the text exposition format (v0.0.4); this module parses that text back
into typed samples so the :class:`~repro.obs.watch.Watchtower` can
analyze a live scrape without regexes scattered through the detector
code.  It round-trips everything the registry renders — escaped label
values, ``+Inf`` bounds, integer-formatted floats — plus the cluster
router's merged fleet exposition, where :func:`relabel_exposition`
prepends a ``worker=`` label to every series.

One deliberate lenience: the router's relabel can produce a duplicate
label name on the router's *own* cluster families (the injected
``worker="router"`` in front of an existing ``worker="0"``).  The
parser resolves duplicates last-wins, which keeps the slot-index label
— the one the analysis wants.

Timestamps (a third token after the value) are tolerated and ignored;
our renderer never emits them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Exposition",
    "MetricFamily",
    "Sample",
    "parse_exposition",
]

#: Sample-name suffixes that belong to a declared histogram family.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


@dataclass(frozen=True)
class Sample:
    """One series sample: full sample name, label set, value."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def label(self, name: str, default: str | None = None) -> str | None:
        result = default
        for key, value in self.labels:
            if key == name:
                result = value  # last wins (relabel duplicates)
        return result

    def matches(self, want: dict[str, str]) -> bool:
        """Subset label match (every wanted pair present)."""
        have = dict(self.labels)  # last-wins on duplicates
        return all(have.get(k) == v for k, v in want.items())


@dataclass
class MetricFamily:
    """One metric family: base name, declared kind, help, samples."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)


def _unescape_label_value(text: str) -> str:
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
            if nxt == '"':
                out.append('"')
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _unescape_help(text: str) -> str:
    return text.replace("\\n", "\n").replace("\\\\", "\\")


def _parse_labels(text: str, start: int) -> tuple[list[tuple[str, str]], int]:
    """Parse ``{k="v",...}`` beginning at ``text[start] == '{'``.

    Returns the pairs and the index just past the closing brace.  Label
    values may contain any character (commas, braces, escaped quotes),
    so this is a quote-aware scan, not a split.
    """
    pairs: list[tuple[str, str]] = []
    i = start + 1
    n = len(text)
    while i < n:
        while i < n and text[i] in ", ":
            i += 1
        if i < n and text[i] == "}":
            return pairs, i + 1
        eq = text.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed label set: {text[start:]!r}")
        name = text[i:eq].strip()
        i = eq + 1
        if i >= n or text[i] != '"':
            raise ValueError(f"unquoted label value in {text[start:]!r}")
        i += 1
        value_start = i
        while i < n:
            if text[i] == "\\":
                i += 2
                continue
            if text[i] == '"':
                break
            i += 1
        if i >= n:
            raise ValueError(f"unterminated label value in {text[start:]!r}")
        pairs.append((name, _unescape_label_value(text[value_start:i])))
        i += 1
    raise ValueError(f"unterminated label set: {text[start:]!r}")


def _parse_value(token: str) -> float:
    # float() accepts "+Inf"/"-Inf"/"NaN" spellings natively.
    return float(token)


def _parse_sample(line: str) -> Sample:
    name_end = len(line)
    for i, ch in enumerate(line):
        if ch == "{" or ch == " ":
            name_end = i
            break
    name = line[:name_end]
    if not name:
        raise ValueError(f"sample line without a name: {line!r}")
    if line[name_end : name_end + 1] == "{":
        pairs, rest_start = _parse_labels(line, name_end)
    else:
        pairs, rest_start = [], name_end
    rest = line[rest_start:].split()
    if not rest:
        raise ValueError(f"sample line without a value: {line!r}")
    return Sample(name, tuple(pairs), _parse_value(rest[0]))


class Exposition:
    """Parsed scrape: families by base name plus flat series lookup."""

    def __init__(self, families: dict[str, MetricFamily]):
        self.families = families
        self._by_sample_name: dict[str, list[Sample]] = {}
        for family in families.values():
            for sample in family.samples:
                self._by_sample_name.setdefault(sample.name, []).append(
                    sample
                )

    # -- lookup --------------------------------------------------------
    def family(self, name: str) -> MetricFamily | None:
        return self.families.get(name)

    def samples(self, name: str, **labels: str) -> list[Sample]:
        """All samples of one full sample name whose labels ⊇ ``labels``."""
        want = {k: str(v) for k, v in labels.items()}
        return [
            s
            for s in self._by_sample_name.get(name, ())
            if s.matches(want)
        ]

    def value(self, name: str, **labels: str) -> float | None:
        """The single matching sample's value (``None`` when absent).

        Raises when the label set is ambiguous — a detector reading one
        series must say which one.
        """
        matches = self.samples(name, **labels)
        if not matches:
            return None
        if len(matches) > 1:
            raise ValueError(
                f"{name} with {labels} matches {len(matches)} series; "
                "add labels or use total()"
            )
        return matches[0].value

    def total(self, name: str, **labels: str) -> float:
        """Sum of every matching series (0.0 when none)."""
        return sum(s.value for s in self.samples(name, **labels))

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values one label takes across a sample name."""
        seen: dict[str, None] = {}
        for sample in self._by_sample_name.get(name, ()):
            value = sample.label(label)
            if value is not None:
                seen.setdefault(value, None)
        return list(seen)

    # -- histograms ----------------------------------------------------
    def histogram_buckets(self, name: str, **labels: str) -> dict[float, float]:
        """Merged cumulative buckets ``{le_bound: count}`` for a family.

        Matching series (e.g. the same stage across every worker) are
        summed per bound — sums of cumulative counts stay cumulative.
        """
        merged: dict[float, float] = {}
        for sample in self.samples(f"{name}_bucket", **labels):
            le = sample.label("le")
            if le is None:
                continue
            bound = _parse_value(le)
            merged[bound] = merged.get(bound, 0.0) + sample.value
        return merged

    def histogram_count(self, name: str, **labels: str) -> float:
        return self.total(f"{name}_count", **labels)

    def histogram_sum(self, name: str, **labels: str) -> float:
        return self.total(f"{name}_sum", **labels)

    def histogram_quantile(
        self, name: str, q: float, **labels: str
    ) -> float | None:
        """Estimated quantile from merged cumulative buckets.

        Standard Prometheus estimation: find the first bucket whose
        cumulative count reaches ``q * total`` and interpolate linearly
        inside it (lower edge 0 for the first bucket; the ``+Inf``
        bucket answers with the largest finite bound).  ``None`` when
        the histogram is empty.
        """
        return quantile_from_buckets(
            self.histogram_buckets(name, **labels), q
        )


def quantile_from_buckets(
    buckets: dict[float, float], q: float
) -> float | None:
    """Quantile estimate over cumulative ``{le: count}`` buckets."""
    if not buckets:
        return None
    bounds = sorted(buckets)
    total = buckets[bounds[-1]]
    if total <= 0:
        return None
    q = min(1.0, max(0.0, q))
    target = q * total
    previous_bound = 0.0
    previous_cum = 0.0
    largest_finite = 0.0
    for bound in bounds:
        cum = buckets[bound]
        if math.isfinite(bound):
            largest_finite = bound
        if cum >= target and cum > previous_cum:
            if not math.isfinite(bound):
                return largest_finite
            span = cum - previous_cum
            fraction = (target - previous_cum) / span if span > 0 else 1.0
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = bound if math.isfinite(bound) else previous_bound
        previous_cum = cum
    return largest_finite


def parse_exposition(text: str) -> Exposition:
    """Parse one scrape body into an :class:`Exposition`.

    Unparseable sample lines raise: a detector acting on a half-read
    scrape would fire on phantom signals, so the contract is all-or-
    nothing per scrape.
    """
    families: dict[str, MetricFamily] = {}

    def family_for(sample_name: str) -> MetricFamily:
        # A histogram child sample belongs to its declared base family;
        # undeclared names get an untyped family of their own.
        for suffix in _HISTOGRAM_SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                declared = families.get(base)
                if declared is not None and declared.kind == "histogram":
                    return declared
        family = families.get(sample_name)
        if family is None:
            family = families[sample_name] = MetricFamily(sample_name)
        return family

    for line in text.splitlines():
        if not line or line.isspace():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            family = families.setdefault(name, MetricFamily(name))
            family.help = _unescape_help(help_text)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            family = families.setdefault(name, MetricFamily(name))
            family.kind = kind.strip() or "untyped"
            continue
        if line.startswith("#"):
            continue
        sample = _parse_sample(line)
        family_for(sample.name).samples.append(sample)

    return Exposition(families)
