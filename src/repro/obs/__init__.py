"""Low-overhead observability for the live dissemination pipeline.

Three surfaces, one bundle:

* :mod:`repro.obs.metrics` — a dependency-free counter/gauge/histogram
  registry rendered in Prometheus text format on ``/metrics``, with
  text-level relabel/merge helpers so the cluster router can re-export
  worker scrapes under ``worker="N"`` labels.
* :mod:`repro.obs.trace` — deterministic ~1/256 per-tuple sampling and
  stage-tagged latency accumulation that decomposes the end-to-end
  ``decide_p50_ms`` into ingest/decide/batch/queue/write stages.
* :mod:`repro.obs.events` — a bounded structured event log (worker
  lifecycle, drains, overflow disconnects, subscription churn) with
  ``since=`` cursor semantics for ``/events``.

:class:`~repro.obs.telemetry.Telemetry` ties them together; passing
``telemetry=None`` to any instrumented layer disables the whole thing.

The analysis side lives in :mod:`repro.obs.watch`: a
:class:`~repro.obs.watch.Watchtower` that parses the exposition back
(:mod:`repro.obs.parse`), reduces it with streaming detectors
(:mod:`repro.obs.detect`) and grades the signals with declarative rules
and SLO burn windows (:mod:`repro.obs.slo`) into health verdicts.
"""

from repro.obs.events import EventLog
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_expositions,
    relabel_exposition,
)
from repro.obs.parse import Exposition, parse_exposition
from repro.obs.rulesfile import RulesConfig, RulesFileError, load_rules_file
from repro.obs.slo import (
    HealthReport,
    Rule,
    SloWindow,
    Verdict,
    default_rules,
    default_slos,
)
from repro.obs.sysinfo import platform_info
from repro.obs.telemetry import DEFAULT_SAMPLE_PERIOD, Telemetry
from repro.obs.trace import (
    STAGES,
    StageTracer,
    TraceBag,
    stage_id,
    stage_name,
)
from repro.obs.watch import HttpProbe, LocalProbe, Watchtower

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SAMPLE_PERIOD",
    "EventLog",
    "Exposition",
    "Gauge",
    "HealthReport",
    "Histogram",
    "HttpProbe",
    "LocalProbe",
    "MetricsRegistry",
    "Rule",
    "RulesConfig",
    "RulesFileError",
    "STAGES",
    "SloWindow",
    "StageTracer",
    "Telemetry",
    "TraceBag",
    "Verdict",
    "Watchtower",
    "default_rules",
    "default_slos",
    "load_rules_file",
    "merge_expositions",
    "parse_exposition",
    "platform_info",
    "relabel_exposition",
    "stage_id",
    "stage_name",
]
