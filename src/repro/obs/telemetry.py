"""The per-process telemetry bundle threaded through the pipeline.

One :class:`Telemetry` instance per broker process ties together the
three observability surfaces — :class:`~repro.obs.metrics.MetricsRegistry`
(``/metrics``), :class:`~repro.obs.trace.StageTracer` +
:class:`~repro.obs.trace.TraceBag` (sampled stage latencies) and
:class:`~repro.obs.events.EventLog` (``/events``) — so a component can
be handed a single optional object.  ``telemetry=None`` everywhere means
*fully disabled*: the instrumented layers guard on it and fall back to
their pre-telemetry hot paths at zero cost.
"""

from __future__ import annotations

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import StageTracer, TraceBag, stage_name

__all__ = ["DEFAULT_SAMPLE_PERIOD", "Telemetry"]

#: One traced tuple per this many, by default (~0.4%).
DEFAULT_SAMPLE_PERIOD = 256


class Telemetry:
    """Registry + tracer + trace bag + event log for one process."""

    def __init__(
        self,
        *,
        sample_period: int = DEFAULT_SAMPLE_PERIOD,
        event_capacity: int = 1024,
        trace_capacity: int = 4096,
    ):
        self.registry = MetricsRegistry()
        self.tracer = StageTracer(sample_period)
        self.bag = TraceBag(trace_capacity)
        self.events = EventLog(event_capacity)
        self._stage_hist = self.registry.histogram(
            "repro_stage_latency_ms",
            "Per-stage pipeline latency from sampled per-tuple traces.",
            ("stage",),
        )
        self._stage_children: dict[str, object] = {}
        m_dropped = self.registry.counter(
            "repro_events_dropped_total",
            "Events evicted from the bounded event ring.",
        )
        self.registry.register_collector(
            lambda: setattr(
                m_dropped.labels(), "value", float(self.events.dropped)
            )
        )

    # ------------------------------------------------------------------
    def observe_stage(self, stage: str, dur_ns: int) -> None:
        """Record one stage duration (nanoseconds in, ms histogram)."""
        child = self._stage_children.get(stage)
        if child is None:
            child = self._stage_hist.labels(stage)
            self._stage_children[stage] = child
        child.observe(dur_ns / 1e6)

    def record_stage_pairs(self, pairs: list[tuple[int, int]]) -> None:
        """Record wire-form ``(stage_id, dur_ns)`` pairs; unknown ids
        (from a newer peer) are skipped rather than misfiled."""
        for sid, dur_ns in pairs:
            name = stage_name(sid)
            if name is not None:
                self.observe_stage(name, dur_ns)
