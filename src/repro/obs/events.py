"""Bounded structured event log with cursor-based consumption.

Counters say *how often*; events say *what happened and when*.  The
router and every worker keep an :class:`EventLog` — a fixed-capacity
ring of small JSON-ready dicts (worker spawn/death/respawn, drain
start/end, overflow disconnects, subscription churn, adaptive-ingest
batch resizes) — surfaced over HTTP as ``/events?since=<id>`` and
persisted into loadgen run manifests as ``events.jsonl``.

Event ids are strictly increasing and never reused, so ``since=``
cursors stay valid across ring eviction: a reader that falls behind
simply misses the evicted span (detectable because the next id jumps).
"""

from __future__ import annotations

import json
import time
from collections import deque
from collections.abc import Iterable

__all__ = ["EventLog"]


class EventLog:
    """Fixed-capacity, monotonically-cursored event ring."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._next_id = 1
        #: Events evicted from the ring before any reader saw them pass
        #: — the ``repro_events_dropped_total`` overrun signal.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def last_id(self) -> int:
        """Id of the newest event (0 when nothing has been emitted)."""
        return self._next_id - 1

    def emit(self, kind: str, **fields: object) -> dict:
        """Append one event; returns the stored record."""
        event = {"id": self._next_id, "ts": time.time(), "kind": kind}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        self._next_id += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    def ingest(self, records: Iterable[dict], **extra: object) -> int:
        """Re-emit foreign records (e.g. a worker's events) locally.

        The router uses this to fold worker-side events into its
        cluster-wide log: each record gets a fresh local id while its
        original id is preserved as ``origin_id``.  Returns the count.
        """
        n = 0
        for record in records:
            fields = {
                k: v for k, v in record.items() if k not in ("id", "kind")
            }
            origin = record.get("id")
            if origin is not None:
                fields.setdefault("origin_id", origin)
            fields.update(extra)
            self.emit(str(record.get("kind", "event")), **fields)
            n += 1
        return n

    def since(self, cursor: int = 0, limit: int | None = None) -> list[dict]:
        """Events with ``id > cursor``, oldest first."""
        out = [dict(e) for e in self._events if e["id"] > cursor]
        if limit is not None and len(out) > limit:
            out = out[:limit]
        return out

    def to_jsonl(self) -> str:
        """Every retained event, one JSON object per line."""
        return "".join(
            json.dumps(e, sort_keys=True) + "\n" for e in self._events
        )
