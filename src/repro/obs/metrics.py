"""Dependency-free metrics registry with Prometheus text exposition.

The live pipeline needs more than the point-in-time ``/snapshot``: the
broker, sessions, transport and cluster layers each record counters,
gauges and fixed-bucket histograms into a :class:`MetricsRegistry`, and
:class:`~repro.transport.http.SnapshotHTTP` renders the registry in the
Prometheus text exposition format on ``/metrics``.

Everything here is stdlib-only and relies on asyncio's single-writer
discipline instead of locks: each metric child is owned by one event
loop, increments are plain ``+=`` on Python ints/floats (atomic enough
under the GIL), and rendering takes a point-in-time copy.

The cluster router does not *forward* scrapes — it re-exports.  Workers
serve their own ``/metrics``; the router fetches each worker's text,
rewrites every sample with a ``worker="<index>"`` label via
:func:`relabel_exposition`, and merges the parts (plus its own
router-labelled registry) with :func:`merge_expositions`, deduplicating
``# HELP``/``# TYPE`` headers per metric family.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_help",
    "escape_label_value",
    "merge_expositions",
    "relabel_exposition",
]

#: Fixed histogram buckets for millisecond latencies.  Spans the sub-ms
#: codec/write path up to multi-second stall pathologies.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the Prometheus text format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _render_labels(
    names: Sequence[str], values: Sequence[str], extra: Sequence[tuple[str, str]] = ()
) -> str:
    parts = [
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in (*zip(names, values), *extra)
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Common family bookkeeping: name, help, label names, children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], object] = {}
        #: Cached label-less child: unlabeled families sit on hot paths
        #: (one ``inc()`` per offered tuple), so the common case must be
        #: one attribute hop, not a labels() round trip.
        self._default: object | None = None

    def labels(self, *values: object, **kv: object) -> object:
        """Return (creating on first use) the child for one label set."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name")
            values = tuple(kv[name] for name in self.label_names)
        # Hot paths pass a single ready string (codec, policy, app);
        # skip the stringify pass for that shape.
        if len(values) == 1 and type(values[0]) is str:
            key = values
        else:
            key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {key!r}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> object:  # pragma: no cover - abstract
        raise NotImplementedError

    def _default_child(self) -> object:
        """The label-less child, for families declared without labels."""
        child = self._default
        if child is None:
            if self.label_names:
                raise ValueError(
                    f"{self.name} requires labels {self.label_names}"
                )
            child = self._default = self.labels()
        return child

    # ------------------------------------------------------------------
    def render(self, lines: list[str]) -> None:
        lines.append(f"# HELP {self.name} {escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._children):
            self._render_child(lines, key, self._children[key])

    def _render_child(
        self, lines: list[str], key: tuple[str, ...], child: object
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Counter(_Metric):
    """Monotonically increasing count (events, tuples, bytes)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return sum(c.value for c in self._children.values())

    def _render_child(
        self, lines: list[str], key: tuple[str, ...], child: _CounterChild
    ) -> None:
        labels = _render_labels(self.label_names, key)
        lines.append(f"{self.name}{labels} {_format_value(child.value)}")


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def max(self, value: float) -> None:
        """High-water update: keep the larger of current and ``value``."""
        if value > self.value:
            self.value = value


class Gauge(_Metric):
    """Point-in-time value (queue depth, liveness, high-water marks)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def max(self, value: float) -> None:
        self._default_child().max(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _render_child(
        self, lines: list[str], key: tuple[str, ...], child: _GaugeChild
    ) -> None:
        labels = _render_labels(self.label_names, key)
        lines.append(f"{self.name}{labels} {_format_value(child.value)}")


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative buckets only at render time)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def _render_child(
        self, lines: list[str], key: tuple[str, ...], child: _HistogramChild
    ) -> None:
        cumulative = 0
        for bound, bucket_count in zip(child.buckets, child.counts):
            cumulative += bucket_count
            labels = _render_labels(
                self.label_names, key, extra=(("le", _format_value(bound)),)
            )
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        labels = _render_labels(self.label_names, key, extra=(("le", "+Inf"),))
        lines.append(f"{self.name}_bucket{labels} {child.count}")
        plain = _render_labels(self.label_names, key)
        lines.append(f"{self.name}_sum{plain} {_format_value(child.sum)}")
        lines.append(f"{self.name}_count{plain} {child.count}")


class MetricsRegistry:
    """Named collection of metric families with text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list = []

    def register_collector(self, fn) -> None:
        """Register a zero-arg callable run before every render.

        For values owned elsewhere (segment-cache hit counts, pool
        sizes): the collector copies them into gauges/counters at scrape
        time instead of instrumenting the owner's hot path.
        """
        self._collectors.append(fn)

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter(name, help, label_names))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> Gauge:
        metric = self._register(Gauge(name, help, label_names))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        metric = self._register(Histogram(name, help, label_names, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def render(self) -> str:
        """Prometheus text exposition of every registered family."""
        for fn in self._collectors:
            fn()
        lines: list[str] = []
        for name in sorted(self._metrics):
            self._metrics[name].render(lines)
        return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Cluster-side merge helpers: text-level relabel + dedup.


def _inject_labels(sample: str, extra: Mapping[str, str]) -> str:
    """Add ``extra`` labels to one exposition sample line."""
    name_end = len(sample)
    for i, ch in enumerate(sample):
        if ch == "{" or ch == " ":
            name_end = i
            break
    injected = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in extra.items()
    )
    if sample[name_end : name_end + 1] == "{":
        close = sample.rindex("}")
        existing = sample[name_end + 1 : close]
        body = f"{injected},{existing}" if existing else injected
        return f"{sample[:name_end]}{{{body}}}{sample[close + 1:]}"
    return f"{sample[:name_end]}{{{injected}}}{sample[name_end:]}"


def relabel_exposition(text: str, extra: Mapping[str, str]) -> str:
    """Rewrite every sample in ``text`` with ``extra`` labels prepended.

    ``# HELP``/``# TYPE`` comment lines pass through untouched.  This is
    how the cluster router turns a worker's local scrape into
    ``worker="N"``-labelled series.
    """
    if not extra:
        return text
    out = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
        else:
            out.append(_inject_labels(line, extra))
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def merge_expositions(parts: Iterable[str]) -> str:
    """Concatenate exposition texts, deduplicating HELP/TYPE headers.

    Prometheus rejects a family declared twice in one scrape; when the
    router stitches its own registry together with N worker scrapes the
    shared families must keep exactly one header block, with all sample
    lines grouped under it.
    """
    headers: dict[str, list[str]] = {}
    samples: dict[str, list[str]] = {}
    order: list[str] = []

    def family_of(sample_line: str) -> str:
        name = sample_line.split("{", 1)[0].split(" ", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if base in headers:
                    return base
        return name

    for text in parts:
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                bucket = headers.setdefault(name, [])
                if name not in order:
                    order.append(name)
                if line not in bucket:
                    bucket.append(line)
            elif line.startswith("#"):
                continue
            else:
                family = family_of(line)
                if family not in order:
                    order.append(family)
                samples.setdefault(family, []).append(line)

    lines: list[str] = []
    for name in order:
        lines.extend(headers.get(name, ()))
        lines.extend(samples.get(name, ()))
    return "\n".join(lines) + "\n" if lines else ""
