"""Watchtower: streaming health analysis over ``/metrics`` + ``/events``.

The read-only half of the self-healing loop.  A :class:`Watchtower`
polls one probe — :class:`HttpProbe` against a live gateway/cluster or
:class:`LocalProbe` against an in-process :class:`Telemetry` — and each
poll:

1. parses the Prometheus exposition (:mod:`repro.obs.parse`),
2. cursors new structured events,
3. reduces both to scalar *signals* via the streaming detectors in
   :mod:`repro.obs.detect` (counter rates, queue-depth MAD scores,
   interval stage-p99 vs warmup baseline, stall ratios, flap windows,
   per-worker imbalance),
4. grades the signals with declarative rules and SLO burn windows
   (:mod:`repro.obs.slo`) into a :class:`HealthReport`.

Verdict *transitions* are emitted back into the event log as
``anomaly_*`` / ``slo_*`` events and handed to the optional
:attr:`Watchtower.on_transitions` callback — the edge-triggered input
the remediation loop (:mod:`repro.service.remediate`) subscribes to.
The Watchtower itself never actuates anything: detect and report only.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import time
from typing import Iterable, Optional, Sequence

from repro.obs.detect import (
    BucketDelta,
    EventWindow,
    MadDetector,
    P99Baseline,
    RateTracker,
)
from repro.obs.parse import Exposition, parse_exposition, quantile_from_buckets
from repro.obs.slo import (
    CRITICAL,
    HealthReport,
    Rule,
    SloWindow,
    Verdict,
    default_rules,
    default_slos,
    worst,
)

__all__ = [
    "HttpProbe",
    "LocalProbe",
    "Watchtower",
    "format_report",
]

#: Event kinds the Watchtower itself produces; excluded from analysis so
#: a verdict about worker death is never re-read as evidence of one.
_OWN_EVENT_PREFIXES = ("anomaly_", "slo_", "watch_")

#: Event kinds counted as a worker dying (matches cluster.py emissions).
_DEATH_KINDS = ("worker_death", "worker_lost")

#: Minimum interval sample count before a stage p99 is trusted at all.
_MIN_P99_SAMPLES = 20

#: Absolute stage-latency floor (ms): a regression on a sub-5ms stage is
#: scheduler jitter, not a pathology worth a verdict.
_P99_FLOOR_MS = 5.0


class HttpProbe:
    """Scrape ``/metrics`` and cursor ``/events`` from a live server."""

    def __init__(self, host: str, port: int, *, timeout_s: float = 2.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    async def _get(self, path: str) -> Optional[bytes]:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\nConnection: close\r\n\r\n".encode(
                    "ascii"
                )
            )
            await writer.drain()
            response = await asyncio.wait_for(
                reader.read(), timeout=self.timeout_s
            )
            head, _, body = response.partition(b"\r\n\r\n")
            if b" 200 " not in head.split(b"\r\n", 1)[0]:
                return None
            return body
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def metrics(self) -> Optional[str]:
        body = await self._get("/metrics")
        return body.decode("utf-8", "replace") if body is not None else None

    async def events(self, since: int) -> list[dict]:
        body = await self._get(f"/events?since={since}")
        if not body:
            return []
        records: list[dict] = []
        for line in body.decode("utf-8", "replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


class LocalProbe:
    """Probe an in-process telemetry bundle (no sockets).

    When ``service`` exposes the gateway/cluster observability surface
    (``metrics_text`` / ``pull_events``) it is used — so a cluster's
    merged fleet exposition and folded events are analyzed, exactly as
    an HTTP scraper would see them.  Otherwise the registry is rendered
    directly.
    """

    def __init__(self, telemetry, service=None):
        self.telemetry = telemetry
        self.service = service

    async def metrics(self) -> Optional[str]:
        service = self.service
        if service is not None and hasattr(service, "metrics_text"):
            text = service.metrics_text()
            if inspect.isawaitable(text):
                text = await text
            return text
        return self.telemetry.registry.render()

    async def events(self, since: int) -> list[dict]:
        service = self.service
        if service is not None and hasattr(service, "pull_events"):
            pulled = service.pull_events()
            if inspect.isawaitable(pulled):
                await pulled
        return self.telemetry.events.since(since)


class Watchtower:
    """Periodic health analysis: scrape → signals → verdicts → report.

    Stateless rules over stateful detectors: every poll produces a full
    :class:`HealthReport` (kept as :attr:`report`), and only status
    *transitions* emit ``anomaly_*``/``slo_*`` events into ``events``.
    """

    def __init__(
        self,
        probe,
        *,
        rules: Optional[Sequence[Rule]] = None,
        slos: Optional[Sequence[SloWindow]] = None,
        interval_s: float = 1.0,
        events=None,
        decide_p99_target_ms: float = 500.0,
        death_window_s: float = 30.0,
        flap_window_s: float = 60.0,
        clock=time.time,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.probe = probe
        self.rules = list(rules) if rules is not None else default_rules()
        self.slos = list(slos) if slos is not None else default_slos()
        self.interval_s = interval_s
        self.events = events
        self.decide_p99_target_ms = decide_p99_target_ms
        self.clock = clock
        self.report: Optional[HealthReport] = None
        self.polls = 0
        self._events_cursor = 0
        self._rates = RateTracker()
        self._buckets = BucketDelta()
        self._queue_scores: dict[tuple[str, str], MadDetector] = {}
        self._stage_baselines: dict[str, P99Baseline] = {}
        self._deaths = EventWindow(death_window_s)
        self._respawns = EventWindow(flap_window_s)
        self._flap_window_s = flap_window_s
        self._last_status: dict[str, str] = {}
        #: Optional edge-trigger hook: called once per poll with the
        #: list of ``(verdict, previous_status)`` transitions (only
        #: verdicts whose status changed).  The remediation loop's
        #: subscription point.
        self.on_transitions = None

    # -- event ingestion -----------------------------------------------
    def _ingest_events(self, records: Iterable[dict]) -> int:
        """Feed fresh events into the flap windows; returns fresh count."""
        fresh = 0
        for record in records:
            rid = int(record.get("id", 0))
            if rid <= self._events_cursor:
                continue
            self._events_cursor = max(self._events_cursor, rid)
            kind = str(record.get("kind", ""))
            if kind.startswith(_OWN_EVENT_PREFIXES):
                continue
            fresh += 1
            ts = float(record.get("ts", self.clock()))
            if kind in _DEATH_KINDS:
                self._deaths.add(ts)
            elif kind == "worker_respawn":
                self._respawns.add(ts)
        return fresh

    # -- signal derivation ---------------------------------------------
    def _derive_signals(self, expo: Exposition, now: float) -> dict:
        signals: dict[str, float] = {}
        rates = self._rates

        def counter(signal: str, family: str, **labels) -> Optional[float]:
            total = expo.total(family, **labels)
            rate, delta = rates.rate_and_delta(signal, total, now)
            if rate is not None:
                signals[f"{signal}_rate"] = round(rate, 3)
            return delta

        offered_delta = counter("offered", "repro_broker_offered_tuples_total")
        decided_delta = counter(
            "decided", "repro_broker_decided_emissions_total"
        )
        drops_delta = counter(
            "drops", "repro_session_overflow_dropped_tuples_total"
        )
        counter("events_dropped", "repro_events_dropped_total")

        if decided_delta is not None and drops_delta is not None:
            emitted = decided_delta + drops_delta
            if emitted > 0:
                signals["overflow_drop_ratio"] = round(
                    drops_delta / emitted, 6
                )

        stall_rate, _ = rates.rate_and_delta(
            "stall",
            expo.total("repro_transport_backpressure_stall_seconds_total"),
            now,
        )
        if stall_rate is not None:
            # Seconds stalled per second of wall clock, summed across
            # connections — clamp for the single-connection reading.
            signals["backpressure_stall_ratio"] = round(
                min(stall_rate, 1.0), 4
            )

        # Worker liveness from the cluster gauge (absent on one gateway).
        alive_samples = expo.samples("repro_cluster_worker_alive")
        if alive_samples:
            down = sum(1 for s in alive_samples if s.value < 0.5)
            signals["workers_down"] = float(down)
            signals["workers_alive"] = float(len(alive_samples) - down)

        signals["worker_deaths_recent"] = float(self._deaths.count(now))
        signals["worker_respawns_per_min"] = round(
            self._respawns.count(now) * (60.0 / self._flap_window_s), 3
        )

        # Session queue high-water anomaly, scored per (worker, app)
        # series against its own history.
        score_max = None
        depth_max = None
        for sample in expo.samples("repro_session_queue_depth_high_water"):
            key = (sample.label("worker", ""), sample.label("app", ""))
            detector = self._queue_scores.get(key)
            if detector is None:
                detector = self._queue_scores[key] = MadDetector(
                    window=120, min_samples=8, min_scale=8.0
                )
            score = detector.update(sample.value)
            score_max = score if score_max is None else max(score_max, score)
            depth_max = (
                sample.value
                if depth_max is None
                else max(depth_max, sample.value)
            )
        if score_max is not None:
            signals["queue_depth_score_max"] = round(score_max, 3)
            signals["queue_depth_max"] = depth_max

        # Interval stage p99s: difference the cumulative histograms, then
        # regress each stage against its own warmup baseline.
        regression_max = None
        for stage in expo.label_values(
            "repro_stage_latency_ms_bucket", "stage"
        ):
            cumulative = expo.histogram_buckets(
                "repro_stage_latency_ms", stage=stage
            )
            interval = self._buckets.delta(("stage", stage), cumulative)
            total = max(interval.values(), default=0.0)
            if total < _MIN_P99_SAMPLES:
                continue
            p99 = quantile_from_buckets(interval, 0.99)
            if p99 is None:
                continue
            if stage == "decide":
                signals["decide_p99_ms"] = round(p99, 3)
            if p99 < _P99_FLOOR_MS:
                continue
            baseline = self._stage_baselines.get(stage)
            if baseline is None:
                baseline = self._stage_baselines[stage] = P99Baseline(
                    warmup=5, min_baseline=_P99_FLOOR_MS
                )
            ratio = baseline.update(p99)
            if ratio is not None:
                regression_max = (
                    ratio
                    if regression_max is None
                    else max(regression_max, ratio)
                )
        if regression_max is not None:
            signals["stage_p99_regression_max"] = round(regression_max, 3)

        # Per-worker ingest imbalance (informational; single-source runs
        # are legitimately lopsided, so no default rule grades this).
        per_worker: dict[str, float] = {}
        for sample in expo.samples("repro_broker_offered_tuples_total"):
            label = sample.label("worker")
            if label is not None and label != "router":
                per_worker[label] = per_worker.get(label, 0.0) + sample.value
        if len(per_worker) >= 2:
            deltas = [
                d
                for d in (
                    rates.rate_and_delta(
                        ("offered_w", w), v, now
                    )[1]
                    for w, v in sorted(per_worker.items())
                )
                if d is not None
            ]
            mean = sum(deltas) / len(deltas) if deltas else 0.0
            if mean > 0:
                signals["worker_offered_imbalance"] = round(
                    max(deltas) / mean, 3
                )

        if offered_delta is not None:
            signals["offered_delta"] = offered_delta
        if decided_delta is not None:
            signals["decided_delta"] = decided_delta
        return signals

    # -- SLO feeding ----------------------------------------------------
    def _observe_slos(self, signals: dict, now: float) -> None:
        for slo in self.slos:
            if slo.signal == "decide_p99_ms":
                p99 = signals.get("decide_p99_ms")
                if p99 is None:
                    continue
                bad = 1.0 if p99 > self.decide_p99_target_ms else 0.0
                # Weight by the interval's decide volume, not by polls:
                # a violating poll that decided 10k tuples burns 10k
                # units of budget, while an idle violating poll barely
                # registers.  Floor at one unit so a quiet interval
                # still contributes an observation.
                weight = max(signals.get("decided_delta") or 0.0, 1.0)
                slo.observe(now, weight * (1.0 - bad), weight * bad)
            elif slo.signal == "overflow_drop_ratio":
                ratio = signals.get("overflow_drop_ratio")
                if ratio is None:
                    continue
                delta = signals.get("offered_delta") or 0.0
                # Weight by interval volume so a storm poll dominates.
                weight = max(delta, 1.0)
                slo.observe(now, weight * (1.0 - ratio), weight * ratio)
            else:
                value = signals.get(slo.signal)
                if value is not None and 0.0 <= value <= 1.0:
                    slo.observe(now, 1.0 - value, value)

    # -- verdict emission ----------------------------------------------
    def _emit_transitions(self, verdicts: Sequence[Verdict]) -> None:
        transitions: list[tuple[Verdict, str]] = []
        for verdict in verdicts:
            previous = self._last_status.get(verdict.name, "ok")
            self._last_status[verdict.name] = verdict.status
            if verdict.status == previous:
                continue
            transitions.append((verdict, previous))
            if self.events is None:
                continue
            kind = (
                verdict.name
                if verdict.name.startswith("slo_")
                else f"anomaly_{verdict.name}"
            )
            self.events.emit(
                kind,
                status=verdict.status,
                previous=previous,
                signal=verdict.signal,
                value=verdict.value,
                threshold=verdict.threshold,
                detail=verdict.detail or None,
            )
        if transitions and self.on_transitions is not None:
            self.on_transitions(transitions)

    # -- polling --------------------------------------------------------
    async def poll(self) -> HealthReport:
        """One analysis cycle; always yields (and stores) a report."""
        now = self.clock()
        self.polls += 1
        text = await self.probe.metrics()
        verdicts: list[Verdict] = []
        signals: dict = {}
        expo: Optional[Exposition] = None
        if text is None:
            verdicts.append(
                Verdict(
                    name="scrape_failed",
                    status=CRITICAL,
                    signal="scrape",
                    detail="could not fetch /metrics from the probe target",
                )
            )
        else:
            try:
                expo = parse_exposition(text)
            except ValueError as exc:
                verdicts.append(
                    Verdict(
                        name="scrape_failed",
                        status=CRITICAL,
                        signal="scrape",
                        detail=f"unparseable exposition: {exc}",
                    )
                )
        records = await self.probe.events(self._events_cursor)
        self._ingest_events(records)
        if expo is not None:
            signals = self._derive_signals(expo, now)
            self._observe_slos(signals, now)
            for rule in self.rules:
                verdict = rule.evaluate(signals)
                if verdict is not None:
                    verdicts.append(verdict)
            for slo in self.slos:
                verdict = slo.evaluate(now)
                if verdict is not None:
                    verdicts.append(verdict)
        self._emit_transitions(verdicts)
        self.report = HealthReport(
            ts=now,
            poll=self.polls,
            status=worst([v.status for v in verdicts]),
            verdicts=verdicts,
            signals=signals,
        )
        return self.report

    async def run(self, *, polls: Optional[int] = None) -> None:
        """Poll forever (or ``polls`` times); cancellation-safe."""
        done = 0
        while polls is None or done < polls:
            await self.poll()
            done += 1
            if polls is not None and done >= polls:
                break
            await asyncio.sleep(self.interval_s)


def format_report(report: HealthReport) -> str:
    """Human-readable one-screen rendering for ``repro watch``."""
    lines = [
        f"[{time.strftime('%H:%M:%S', time.localtime(report.ts))}] "
        f"poll {report.poll}  status={report.status.upper()}  "
        + "  ".join(f"{k}={v}" for k, v in sorted(report.counts().items()))
    ]
    for verdict in report.verdicts:
        marker = {"ok": " ", "warn": "!", "critical": "X"}.get(
            verdict.status, "?"
        )
        value = "-" if verdict.value is None else f"{verdict.value:g}"
        bound = (
            ""
            if verdict.threshold is None
            else f" (threshold {verdict.threshold:g})"
        )
        lines.append(
            f"  {marker} {verdict.name:<24} {verdict.status:<8} "
            f"{verdict.signal}={value}{bound}"
        )
    interesting = (
        "offered_rate",
        "decided_rate",
        "decide_p99_ms",
        "overflow_drop_ratio",
        "workers_alive",
        "queue_depth_max",
    )
    shown = {k: report.signals[k] for k in interesting if k in report.signals}
    if shown:
        lines.append(
            "  signals: "
            + "  ".join(f"{k}={v:g}" for k, v in shown.items())
        )
    return "\n".join(lines)
