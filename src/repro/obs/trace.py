"""Stage-tagged tracing: sampled per-tuple latency decomposition.

``/snapshot`` already reports end-to-end decide percentiles; this module
answers *where the millisecond goes*.  A deterministic sampler picks
~1/``sample_period`` tuples keyed off a hash of ``(source, seq)`` — the
same tuple is sampled by every process that sees it, so the producer
client, the cluster router and the owning worker all trace the same
flows without any "sampled" bit on the wire.  Each traced tuple accrues
``(stage, duration_ns)`` pairs in a bounded :class:`TraceBag`; stage
durations are measured with ``time.perf_counter_ns`` between boundaries
inside one process (never across processes — monotonic clocks do not
compare across them) and ride the negotiated wire trace field so the
next hop can extend the same trace.

Stage vocabulary (ordered; the index is the binary wire id):

========  ===================  ==========================================
 id        stage                boundary
========  ===================  ==========================================
 0         ``ingest_send``      client ``ingest()`` call -> frame written
 1         ``router_forward``   router ingest recv -> worker-bound write
 2         ``ingest_recv``      server frame decode -> broker admission
 3         ``decide_exec``      broker engine step for the arrival
 4         ``decide``           broker arrival -> emission (end-to-end)
 5         ``batch_flush``      emission -> session micro-batch flush
 6         ``session_queue``    batch flush -> delivery pump dequeue
 7         ``socket_write``     pump dequeue -> decided bytes drained
 8         ``router_reassembly``router decided recv -> session push
========  ===================  ==========================================
"""

from __future__ import annotations

import zlib

__all__ = [
    "STAGES",
    "STAGE_BATCH_FLUSH",
    "STAGE_DECIDE",
    "STAGE_DECIDE_EXEC",
    "STAGE_INGEST_RECV",
    "STAGE_INGEST_SEND",
    "STAGE_ROUTER_FORWARD",
    "STAGE_ROUTER_REASSEMBLY",
    "STAGE_SESSION_QUEUE",
    "STAGE_SOCKET_WRITE",
    "StageTracer",
    "TraceBag",
    "stage_id",
    "stage_name",
]

STAGE_INGEST_SEND = "ingest_send"
STAGE_ROUTER_FORWARD = "router_forward"
STAGE_INGEST_RECV = "ingest_recv"
STAGE_DECIDE_EXEC = "decide_exec"
STAGE_DECIDE = "decide"
STAGE_BATCH_FLUSH = "batch_flush"
STAGE_SESSION_QUEUE = "session_queue"
STAGE_SOCKET_WRITE = "socket_write"
STAGE_ROUTER_REASSEMBLY = "router_reassembly"

STAGES: tuple[str, ...] = (
    STAGE_INGEST_SEND,
    STAGE_ROUTER_FORWARD,
    STAGE_INGEST_RECV,
    STAGE_DECIDE_EXEC,
    STAGE_DECIDE,
    STAGE_BATCH_FLUSH,
    STAGE_SESSION_QUEUE,
    STAGE_SOCKET_WRITE,
    STAGE_ROUTER_REASSEMBLY,
)

_STAGE_IDS = {name: i for i, name in enumerate(STAGES)}

_MASK32 = 0xFFFFFFFF


def stage_id(name: str) -> int:
    """Dense wire id for a stage name."""
    return _STAGE_IDS[name]


def stage_name(sid: int) -> str | None:
    """Stage name for a wire id (``None`` for ids from a newer peer)."""
    return STAGES[sid] if 0 <= sid < len(STAGES) else None


class StageTracer:
    """Deterministic ~1/``sample_period`` tuple sampler.

    The decision is a pure function of ``(source, seq)`` — a murmur-style
    integer finalizer over the sequence number, phase-shifted by a CRC of
    the source name — so independent processes agree on which tuples are
    traced without coordination, and the cost per tuple is two integer
    multiplies (the source CRC is cached).
    """

    def __init__(self, sample_period: int = 256):
        if sample_period < 0:
            raise ValueError("sample_period must be >= 0 (0 disables)")
        self.sample_period = sample_period
        self._source_salt: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.sample_period > 0

    def _salt(self, source: str) -> int:
        salt = self._source_salt.get(source)
        if salt is None:
            salt = zlib.crc32(source.encode("utf-8")) & _MASK32
            self._source_salt[source] = salt
        return salt

    def sampled(self, source: str, seq: int) -> bool:
        """Should the tuple ``(source, seq)`` carry a trace?"""
        period = self.sample_period
        if period <= 0:
            return False
        if period == 1:
            return True
        h = (seq * 0x9E3779B1) & _MASK32
        h ^= h >> 15
        h = (h * 0x85EBCA6B) & _MASK32
        h ^= h >> 13
        h ^= self._salt(source)
        return h % period == 0


class _Entry:
    __slots__ = ("stages", "mark_ns")

    def __init__(self, mark_ns: int):
        self.stages: list[tuple[int, int]] = []
        self.mark_ns = mark_ns


class TraceBag:
    """Bounded in-flight store of accumulated stage durations.

    Keys are ``(source, seq)``.  Only sampled tuples ever enter the bag,
    so at the default 1/256 sampling its footprint is negligible; if a
    burst outruns ``capacity`` the oldest traces are evicted (a dropped
    trace is a non-event — the next sampled tuple replaces it).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: dict[tuple[str, int], _Entry] = {}
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def begin(
        self,
        key: tuple[str, int],
        now_ns: int,
        carried: list[tuple[int, int]] | None = None,
    ) -> None:
        """Open (or reopen) a trace, optionally seeded from the wire."""
        entry = _Entry(now_ns)
        if carried:
            entry.stages.extend(carried)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evicted += 1

    def add(self, key: tuple[str, int], sid: int, dur_ns: int) -> None:
        """Record one stage duration without touching the mark."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.stages.append((sid, dur_ns))

    def stamp(self, key: tuple[str, int], sid: int, now_ns: int) -> int | None:
        """Close a stage at ``now_ns``: duration since the last mark."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        dur = now_ns - entry.mark_ns
        entry.stages.append((sid, dur))
        entry.mark_ns = now_ns
        return dur

    def mark(self, key: tuple[str, int], now_ns: int) -> None:
        """Reset the mark (start a new stage) without recording one."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.mark_ns = now_ns

    def peek(self, key: tuple[str, int]) -> list[tuple[int, int]] | None:
        entry = self._entries.get(key)
        return list(entry.stages) if entry is not None else None

    def since_mark(self, key: tuple[str, int], now_ns: int) -> int | None:
        """Nanoseconds since the last mark, without mutating the entry.

        Lets fan-out paths measure the same interval once per recipient
        (a stamp would move the mark and shortchange later recipients).
        """
        entry = self._entries.get(key)
        return now_ns - entry.mark_ns if entry is not None else None

    def pop(self, key: tuple[str, int]) -> list[tuple[int, int]] | None:
        """Remove and return the accumulated ``(stage_id, ns)`` pairs."""
        entry = self._entries.pop(key, None)
        return entry.stages if entry is not None else None
