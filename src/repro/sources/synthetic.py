"""Generic synthetic sources for tests and micro-experiments."""

from __future__ import annotations

import math
import random

from repro.core.tuples import Trace
from repro.sources.base import bounded_random_walk

__all__ = ["random_walk_trace", "sine_trace", "step_trace", "ramp_trace"]


def random_walk_trace(
    n: int = 1000,
    seed: int = 0,
    step_scale: float = 1.0,
    start: float = 0.0,
    attribute: str = "value",
    interval_ms: float = 10.0,
) -> Trace:
    """A mean-reverting random walk; the workhorse of the property tests."""
    rng = random.Random(seed)
    values = bounded_random_walk(rng, n, start=start, step_scale=step_scale)
    return Trace.from_values(values, attribute=attribute, interval_ms=interval_ms)


def sine_trace(
    n: int = 1000,
    period: int = 200,
    amplitude: float = 10.0,
    noise: float = 0.0,
    seed: int = 0,
    attribute: str = "value",
    interval_ms: float = 10.0,
) -> Trace:
    """A smooth periodic source: steady state-update rate, ideal for DC."""
    rng = random.Random(seed)
    values = [
        amplitude * math.sin(2.0 * math.pi * i / period) + rng.gauss(0.0, noise)
        for i in range(n)
    ]
    return Trace.from_values(values, attribute=attribute, interval_ms=interval_ms)


def step_trace(
    n: int = 1000,
    step_every: int = 100,
    step_height: float = 5.0,
    attribute: str = "value",
    interval_ms: float = 10.0,
) -> Trace:
    """A staircase: long flat runs with abrupt jumps (worst case for
    candidate-set overlap - every set is nearly a singleton)."""
    values = [step_height * (i // step_every) for i in range(n)]
    return Trace.from_values(values, attribute=attribute, interval_ms=interval_ms)


def ramp_trace(
    n: int = 1000,
    slope: float = 1.0,
    attribute: str = "value",
    interval_ms: float = 10.0,
) -> Trace:
    """A monotone ramp: maximal candidate-set overlap between filters."""
    values = [slope * i for i in range(n)]
    return Trace.from_values(values, attribute=attribute, interval_ms=interval_ms)
