"""Synthetic fire HRR(Q) trace (Figure 4.23).

"The third source is chemical readings, specifically HRR(Q) readings,
from fire experiments conducted by ... the fire prevention program at
WPI" (section 4.7.4).  Figure 4.23 shows a smooth heat-release-rate
curve: slow ignition, a roughly quadratic growth phase to ~3.5, a
plateau and decay.  The curve is locally smooth with rare combustion
spikes; that smoothness is why this source benefits most from
group-aware filtering (O/I ~60% of SI in the paper): long monotone runs
give large, heavily overlapping candidate sets.
"""

from __future__ import annotations

import random

from repro.core.tuples import Trace

__all__ = ["fire_trace"]


def fire_trace(
    n: int = 3000,
    seed: int = 17,
    interval_ms: float = 10.0,
    peak: float = 3.5,
    spike_probability: float = 0.006,
    spike_scale: float = 0.6,
) -> Trace:
    """Generate an ``n``-tuple HRR(Q) trace following a t^2 fire curve.

    Rare transient spikes (flare-ups caught by the calorimeter) inflate
    the mean absolute consecutive change well above the local slope, so
    recipe-derived deltas produce multi-tuple candidate sets along the
    smooth growth curve.
    """
    rng = random.Random(seed)
    ignition = int(0.08 * n)
    growth_end = int(0.55 * n)
    plateau_end = int(0.80 * n)
    values: list[float] = []
    for i in range(n):
        if i < ignition:
            base = 0.02 * (i / max(1, ignition))
        elif i < growth_end:
            x = (i - ignition) / max(1, growth_end - ignition)
            base = peak * x * x
        elif i < plateau_end:
            base = peak
        else:
            x = (i - plateau_end) / max(1, n - plateau_end)
            base = peak * (1.0 - 0.6 * x)
        value = base + rng.gauss(0.0, 0.002)
        if rng.random() < spike_probability:
            value += rng.gauss(0.0, spike_scale)
        values.append(value)
    return Trace.from_values(values, attribute="HRR", interval_ms=interval_ms)
