"""Synthetic volcano seismic trace (Figure 4.22).

"The second source is readings of seismic sensors deployed near a
volcano in Peru" (section 4.7.4, citing Werner-Allen et al.).
Figure 4.22 shows a near-zero signal (within about +/-0.004) with
oscillatory seismic events.  The generator emits a quiet baseline plus
smooth damped-oscillation events and rare instrument spikes; its
update pattern sits between the fire curve (very smooth) and the cow
trace (abrupt bursts), matching its middle rank in Figure 4.20's
bandwidth savings.
"""

from __future__ import annotations

import math
import random

from repro.core.tuples import Trace

__all__ = ["volcano_trace"]


def volcano_trace(
    n: int = 3000,
    seed: int = 13,
    interval_ms: float = 10.0,
    noise_scale: float = 0.00005,
    event_probability: float = 0.01,
    event_amplitude: float = 0.0025,
    spike_probability: float = 0.006,
    spike_scale: float = 0.015,
) -> Trace:
    """Generate an ``n``-tuple seismometer trace.

    Quiet Gaussian background at ``noise_scale``; with probability
    ``event_probability`` per tuple a seismic event begins - a smooth
    decaying sinusoid with amplitude around ``event_amplitude``; rare
    single-sample spikes model telemetry glitches.
    """
    rng = random.Random(seed)
    values = [rng.gauss(0.0, noise_scale) for _ in range(n)]
    i = 0
    while i < n:
        if rng.random() < event_probability:
            length = rng.randint(60, 150)
            amplitude = rng.uniform(0.5, 1.3) * event_amplitude
            period = rng.randint(30, 60)
            for offset in range(length):
                if i + offset < n:
                    values[i + offset] += (
                        amplitude
                        * math.exp(-0.02 * offset)
                        * math.sin(2.0 * math.pi * offset / period)
                    )
            i += length
        else:
            i += 1
    for j in range(n):
        if rng.random() < spike_probability:
            values[j] += rng.gauss(0.0, spike_scale)
    return Trace.from_values(values, attribute="seis", interval_ms=interval_ms)
