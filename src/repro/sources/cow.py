"""Synthetic cow-orientation trace (Figure 4.21).

"The first source is a cow's movement data, specifically its orientation
change ... collected by a bio-monitoring research group" (section 4.7.4).
Figure 4.21 shows east-orientation values around 810-817 that are flat
for long stretches and change in *clustered brief bursts* - the animal
stands still, then turns.  This shape yields the smallest group-aware
savings of the three sources in the paper (O/I ~83% of SI), because the
candidate sets cluster tightly around the bursts.
"""

from __future__ import annotations

import random

from repro.core.tuples import Trace

__all__ = ["cow_trace"]


def cow_trace(
    n: int = 3000,
    seed: int = 11,
    interval_ms: float = 10.0,
    baseline: float = 813.0,
    burst_probability: float = 0.01,
    turn_scale: float = 0.3,
    spike_probability: float = 0.006,
    spike_scale: float = 8.0,
) -> Trace:
    """Generate an ``n``-tuple orientation trace.

    Most samples sit at the current heading with tiny jitter; with
    probability ``burst_probability`` per tuple the animal turns: the
    heading moves with a persistent velocity for 10-40 samples, then
    settles at a new plateau.  Rare single-sample spikes model collar
    sensor glitches.
    """
    rng = random.Random(seed)
    values: list[float] = []
    heading = baseline
    velocity = 0.0
    burst_remaining = 0
    for _ in range(n):
        if burst_remaining > 0:
            velocity = 0.9 * velocity + rng.gauss(0.0, turn_scale * 0.3)
            heading += velocity
            burst_remaining -= 1
        elif rng.random() < burst_probability:
            burst_remaining = rng.randint(10, 40)
            velocity = rng.gauss(0.0, turn_scale)
        sample = heading + rng.gauss(0.0, 0.01)
        if rng.random() < spike_probability:
            sample += rng.gauss(0.0, spike_scale)
        values.append(sample)
    return Trace.from_values(values, attribute="E-orient", interval_ms=interval_ms)
