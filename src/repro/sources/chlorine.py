"""Synthetic chlorine-spill trace (section 5.5.1, Figure 5.4).

For the Baton Rouge train-derailment drill, "the source data was
simulated according to a diffusion model that was carefully engineered
for this scenario.  The model considered many factors such as wind
direction, wind speed, and the density of the sensors.  The source
produced a new reading every 10 ms."

We implement a continuous-release Gaussian plume: a ruptured tank car
leaks at a constant rate while the wind direction and speed meander
(AR(1) processes).  Each fixed monitoring station's concentration is the
steady-state plume solution at its current crosswind offset, so readings
wander smoothly over a wide range as the plume swings across the
sensors - with rare single-sample electrochemical-sensor spikes on top.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.tuples import Trace

__all__ = ["Station", "chlorine_trace"]


@dataclass(frozen=True)
class Station:
    """A chlorine sensor: distance from the release (m) and bearing (rad)."""

    name: str
    distance_m: float
    bearing_rad: float


_DEFAULT_STATIONS = (
    Station("cl_near", 200.0, 0.00),
    Station("cl_mid", 500.0, 0.10),
    Station("cl_far", 900.0, -0.08),
)


def _plume_concentration(
    rate_kg_s: float,
    wind_mps: float,
    crosswind_m: float,
    downwind_m: float,
    stability: float = 0.10,
) -> float:
    """Steady-state Gaussian plume concentration at ground level.

    Dispersion sigmas grow linearly with downwind distance (neutral
    stability); vertical term folded in for a ground-level release.
    """
    if downwind_m <= 1.0 or wind_mps <= 0.1:
        return 0.0
    sigma_y = max(1.0, stability * downwind_m)
    sigma_z = max(1.0, 0.6 * stability * downwind_m)
    norm = rate_kg_s / (math.pi * sigma_y * sigma_z * wind_mps)
    exponent = -0.5 * (crosswind_m / sigma_y) ** 2
    if exponent < -60.0:
        return 0.0
    return norm * math.exp(exponent)


def chlorine_trace(
    n: int = 3000,
    seed: int = 23,
    interval_ms: float = 10.0,
    stations: tuple[Station, ...] = _DEFAULT_STATIONS,
    rate_kg_s: float = 50.0,
    wind_mps: float = 3.0,
    spike_probability: float = 0.006,
) -> Trace:
    """Generate an ``n``-tuple multi-station chlorine concentration trace.

    The wind direction meanders (AR(1) velocity), swinging the plume
    centerline across the stations; wind speed gusts around its mean.
    Rare spikes model sensor glitches and inflate the mean consecutive
    change above the smooth local slope, as real electrochemical traces
    do (see ``repro.sources.namos`` for why that matters to filtering).
    """
    rng = random.Random(seed)
    wind = wind_mps
    direction = 0.0
    direction_velocity = 0.0
    raw: dict[str, list[float]] = {station.name: [] for station in stations}
    peak = 0.0
    for _ in range(n):
        direction_velocity = 0.97 * direction_velocity + rng.gauss(0.0, 0.0015)
        direction += direction_velocity - 0.002 * direction
        wind += rng.gauss(0.0, 0.02) + 0.01 * (wind_mps - wind)
        for station in stations:
            angle = direction - station.bearing_rad
            crosswind = station.distance_m * math.sin(angle)
            downwind = station.distance_m * math.cos(angle)
            concentration = _plume_concentration(
                rate_kg_s, max(0.5, wind), crosswind, downwind
            )
            observed = concentration * 1.0e6  # ppm-ish scale
            raw[station.name].append(observed)
            peak = max(peak, observed)
    spike_scale = 0.05 * peak if peak > 0 else 1.0
    columns: dict[str, list[float]] = {}
    for station in stations:
        series = []
        for value in raw[station.name]:
            noisy = value * (1.0 + rng.gauss(0.0, 0.002))
            if rng.random() < spike_probability:
                noisy += rng.gauss(0.0, spike_scale)
            series.append(max(0.0, noisy))
        columns[station.name] = series
    return Trace.from_columns(columns, interval_ms=interval_ms)
