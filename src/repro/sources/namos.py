"""Synthetic NAMOS buoy trace.

The primary Chapter-4 source: "Each NAMOS buoy trace tuple contains six
temperature readings ..., one reading from a fluorometer ..., a
timestamp" replayed "at about 10 ms per tuple" (section 4.2).  The
generator produces series whose srcStatistics match the values implied
by the Table 4.1 filter recipes (deltas are 1-3x srcStatistics): fluoro
~0.0234, tmpr2 ~0.0230, tmpr4 ~0.0310, tmpr6 ~0.0250.

Micro-structure matters more than shape for delta-compression studies:
the series are *locally smooth* (a slowly meandering drift, like water
temperature mixing) with *rare transient spikes* (wave splash / sensor
glitches).  The spikes inflate the mean absolute consecutive change, so
the recipe deltas sit well above the local slope - which is what gives
filters multi-tuple candidate sets and the group overlap the paper
measures.  Thermistor channels share the drift (one water column), so
heterogeneous groups like DC_Hybrid also find cross-channel overlap.
"""

from __future__ import annotations

import random

from repro.core.tuples import Trace
from repro.sources.base import scale_to_statistics

__all__ = ["namos_trace", "NAMOS_STATISTICS", "meandering_series"]

#: Target srcStatistics per attribute (mean |consecutive change|).
NAMOS_STATISTICS: dict[str, float] = {
    "fluoro": 0.0234,
    "tmpr1": 0.0270,
    "tmpr2": 0.0230,
    "tmpr3": 0.0290,
    "tmpr4": 0.0310,
    "tmpr5": 0.0300,
    "tmpr6": 0.0250,
}

#: Baseline values: lake temperatures around 22 C, fluorometer around 5.
_BASELINES: dict[str, float] = {
    "fluoro": 5.0,
    "tmpr1": 21.8,
    "tmpr2": 22.0,
    "tmpr3": 22.3,
    "tmpr4": 22.6,
    "tmpr5": 22.1,
    "tmpr6": 21.5,
}


def meandering_series(
    rng: random.Random,
    n: int,
    velocity_persistence: float = 0.98,
    velocity_noise: float = 0.08,
    spike_probability: float = 0.008,
    spike_scale: float = 80.0,
    jitter: float = 0.0,
) -> list[float]:
    """Locally smooth drift with rare transient spikes.

    The drift velocity is an AR(1) process (persistent, slowly turning);
    spikes displace a single sample without moving the level.  The spike
    term dominates the mean absolute consecutive change, so after scaling
    to a target srcStatistics the local slope is a small fraction of it.
    """
    velocity = 0.0
    level = 0.0
    values: list[float] = []
    for _ in range(n):
        velocity = velocity_persistence * velocity + rng.gauss(0.0, velocity_noise)
        level += velocity
        sample = level
        if spike_probability > 0 and rng.random() < spike_probability:
            sample += rng.gauss(0.0, spike_scale)
        if jitter > 0:
            sample += rng.gauss(0.0, jitter)
        values.append(sample)
    return values


def namos_trace(n: int = 3000, seed: int = 7, interval_ms: float = 10.0) -> Trace:
    """Generate an ``n``-tuple synthetic buoy trace.

    Thermistor channels blend a shared meandering drift (the common water
    column) with channel-local drift and independent spikes; the
    fluorometer is partially correlated with temperature and carries its
    own dynamics.  Every channel is scaled so its measured srcStatistics
    hits the Table 4.1 target exactly.
    """
    shared_rng = random.Random(seed)
    shared = meandering_series(shared_rng, n, spike_probability=0.0)

    columns: dict[str, list[float]] = {}
    for index, (name, statistic) in enumerate(sorted(NAMOS_STATISTICS.items())):
        local_rng = random.Random(seed * 1009 + index)
        own = meandering_series(
            local_rng,
            n,
            velocity_noise=0.05,
            spike_probability=0.008,
            spike_scale=80.0,
        )
        shared_weight = 0.6 if name == "fluoro" else 1.0
        own_weight = 0.8 if name == "fluoro" else 0.45
        raw = [shared_weight * s + own_weight * o for s, o in zip(shared, own)]
        scaled = scale_to_statistics(raw, statistic)
        base = _BASELINES[name]
        columns[name] = [base + value - scaled[0] for value in scaled]

    return Trace.from_columns(columns, interval_ms=interval_ms)
