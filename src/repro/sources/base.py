"""Shared machinery for synthetic data sources.

The paper evaluates on real deployments' traces (NAMOS buoys, a cow's
orientation, volcano seismometers, fire HRR(Q) readings and a modelled
chlorine spill).  Those traces are not redistributable, so this package
generates synthetic equivalents that preserve the properties filtering
depends on: the ~10 ms inter-arrival rate, each attribute's
*srcStatistics* (mean absolute consecutive change, section 4.3), and the
distinctive value-update shapes of Figures 4.21-4.23.  DESIGN.md records
the substitution.

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Iterator, Sequence

from repro.core.tuples import StreamTuple, Trace

__all__ = [
    "bounded_random_walk",
    "scale_to_statistics",
    "replay",
    "SourceCatalog",
]


def bounded_random_walk(
    rng: random.Random,
    n: int,
    start: float,
    step_scale: float,
    mean: float | None = None,
    reversion: float = 0.01,
) -> list[float]:
    """Mean-reverting random walk (Ornstein-Uhlenbeck style).

    ``step_scale`` controls the innovation magnitude; ``reversion`` pulls
    the series back toward ``mean`` so long traces stay bounded, like the
    slowly drifting thermistor readings of the NAMOS buoys.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    center = start if mean is None else mean
    values = [start]
    current = start
    for _ in range(n - 1):
        current += rng.gauss(0.0, step_scale) + reversion * (center - current)
        values.append(current)
    return values


def scale_to_statistics(values: Sequence[float], target_statistic: float) -> list[float]:
    """Rescale a series so its srcStatistics equals ``target_statistic``.

    The paper's filter recipes are multiples of srcStatistics; scaling
    lets a generator hit the exact statistic implied by Table 4.1 while
    keeping its shape.
    """
    if len(values) < 2:
        raise ValueError("need at least two values to scale")
    actual = sum(
        abs(b - a) for a, b in zip(values, values[1:])
    ) / (len(values) - 1)
    if actual == 0:
        raise ValueError("series is constant; cannot scale")
    factor = target_statistic / actual
    anchor = values[0]
    return [anchor + (v - anchor) * factor for v in values]


def replay(trace: Trace) -> Iterator[tuple[float, StreamTuple]]:
    """Yield ``(delay_from_previous_ms, tuple)`` pairs for replaying a
    trace into a simulated network at its original rate."""
    previous_ts: float | None = None
    for item in trace:
        delay = 0.0 if previous_ts is None else item.timestamp - previous_ts
        previous_ts = item.timestamp
        yield delay, item


class SourceCatalog:
    """Registry of named trace generators, for the experiment CLI."""

    def __init__(self) -> None:
        self._generators: dict[str, Callable[..., Trace]] = {}

    def register(self, name: str, generator: Callable[..., Trace]) -> None:
        if name in self._generators:
            raise ValueError(f"source {name!r} already registered")
        self._generators[name] = generator

    def make(self, name: str, **kwargs) -> Trace:
        try:
            generator = self._generators[name]
        except KeyError:
            raise KeyError(
                f"unknown source {name!r}; available: {sorted(self._generators)}"
            ) from None
        return generator(**kwargs)

    def names(self) -> list[str]:
        return sorted(self._generators)


def smooth(values: Sequence[float], window: int) -> list[float]:
    """Centered moving average used by several generators."""
    if window <= 1:
        return list(values)
    half = window // 2
    result = []
    for i in range(len(values)):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        result.append(sum(values[lo:hi]) / (hi - lo))
    return result


def damped_oscillation(
    length: int, amplitude: float, period: int, decay: float
) -> list[float]:
    """A burst shaped like a seismic event: decaying sinusoid."""
    return [
        amplitude * math.exp(-decay * i) * math.sin(2.0 * math.pi * i / period)
        for i in range(length)
    ]
