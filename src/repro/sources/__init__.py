"""Synthetic data sources standing in for the paper's real-world traces.

See DESIGN.md "Substitutions" for the mapping from the paper's traces
(NAMOS buoys, cow orientation, volcano seismic, fire HRR(Q), chlorine
drill) to these generators and why the substitution preserves the
filtering behaviour under evaluation.
"""

from repro.core.tuples import src_statistics
from repro.sources.base import (
    SourceCatalog,
    bounded_random_walk,
    damped_oscillation,
    replay,
    scale_to_statistics,
    smooth,
)
from repro.sources.chlorine import Station, chlorine_trace
from repro.sources.cow import cow_trace
from repro.sources.fire import fire_trace
from repro.sources.namos import NAMOS_STATISTICS, namos_trace
from repro.sources.synthetic import ramp_trace, random_walk_trace, sine_trace, step_trace
from repro.sources.volcano import volcano_trace

__all__ = [
    "CATALOG",
    "NAMOS_STATISTICS",
    "SourceCatalog",
    "Station",
    "bounded_random_walk",
    "chlorine_trace",
    "cow_trace",
    "damped_oscillation",
    "fire_trace",
    "namos_trace",
    "ramp_trace",
    "random_walk_trace",
    "replay",
    "scale_to_statistics",
    "sine_trace",
    "smooth",
    "src_statistics",
    "step_trace",
    "volcano_trace",
]

#: All named sources, for the experiment CLI.
CATALOG = SourceCatalog()
CATALOG.register("namos", namos_trace)
CATALOG.register("cow", cow_trace)
CATALOG.register("volcano", volcano_trace)
CATALOG.register("fire", fire_trace)
CATALOG.register("chlorine", chlorine_trace)
CATALOG.register("random_walk", random_walk_trace)
CATALOG.register("sine", sine_trace)
CATALOG.register("step", step_trace)
CATALOG.register("ramp", ramp_trace)
