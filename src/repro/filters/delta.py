"""Delta-compression filters (the paper's running example).

A ``(slack, delta)`` Delta-Compression filter "selects data at delta-unit
[granularity] with slack-unit of quality deviation" (section 2.1.1).  The
self-interested filter outputs *reference tuples*: the first tuple, then
every first tuple whose value moved at least ``delta`` from the previous
reference.  The group-aware filter instead builds, for each reference,
the candidate set of tuples "within the [slack]-unit vicinity of, and
contiguous with, the reference tuple" (Figure 2.3) and lets the group
decider pick any member.

Online admission follows section 2.3.3: tuples whose distance from the
base lands in ``[delta - slack, delta + slack]`` are admitted
*tentatively*; when the reference materializes (distance >= delta),
tentative members farther than ``slack`` from it are dismissed; the set
closes at the first tuple that is no longer within ``slack`` of the
reference.

Axiom 1 requires ``slack < delta / 2`` so that one filter's candidate
sets have disjoint time covers; the constructor enforces it.

:class:`StatefulDeltaCompressionFilter` implements Figure 2.9: the next
candidate set is based on the tuple *chosen* for the previous one rather
than on the reference, which forces per-candidate-set deciding.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence

from repro.core.engine import FilterContext
from repro.core.tuples import StreamTuple
from repro.filters.base import (
    CandidateComputation,
    DependencySpec,
    FilterTaxonomy,
    GroupAwareFilter,
    OutputSelection,
)

__all__ = [
    "DeltaFilterBase",
    "DeltaCompressionFilter",
    "StatefulDeltaCompressionFilter",
    "SelfInterestedDelta",
]


class _Phase(enum.Enum):
    SEED = "seed"  # waiting for the very first derived value
    PRE_REF = "pre_reference"  # scanning for the next reference
    POST_REF = "post_reference"  # extending the vicinity of a found reference


class DeltaFilterBase(GroupAwareFilter):
    """Shared machinery for all delta-compression style filters.

    Subclasses supply :meth:`_derive`, mapping a tuple to the scalar the
    compression runs on (a raw attribute for DC1, a trend for DC2, a
    multi-attribute average for DC3).  ``None`` skips the tuple.
    """

    #: taxonomy state-update label, overridden by subclasses
    state_update = "value"

    def __init__(self, name: str, delta: float, slack: float, stateful: bool = False):
        super().__init__(name)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        # The 1e-4 relative tolerance absorbs decimal formatting round-off
        # in textual specs (6 significant digits); a slack over budget by
        # 0.01% cannot produce overlapping time covers in practice.
        if slack > (delta / 2.0) * (1.0 + 1e-4):
            raise ValueError(
                f"Axiom 1 requires slack <= delta/2 (got slack={slack}, delta={delta}); "
                "otherwise one filter's candidate-set time covers may intersect"
            )
        # Note: the paper states the axiom strictly (slack < delta/2) but its
        # own evaluation uses slack = 50% of delta (section 4.3).  Equality is
        # safe here because admission is sequential: a tuple joins at most one
        # candidate set, so time covers never share a tuple even at the
        # boundary.
        self.delta = delta
        self.slack = slack
        self._stateful = stateful
        self._phase = _Phase.SEED
        self._base: Optional[float] = None
        self._ref_value: Optional[float] = None
        self._tentative: list[StreamTuple] = []
        self._member_values: dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def taxonomy(self) -> FilterTaxonomy:
        return FilterTaxonomy(
            candidate_computation=CandidateComputation(
                attributes=self._attributes(),
                state_update=self.state_update,
                threshold="absolute-distance",
            ),
            output_selection=OutputSelection(quantity=1, unit="tuple"),
            dependency=DependencySpec(
                stateful=self._stateful,
                dependent_state="previous-chosen-tuples"
                if self._stateful
                else "reference-tuples",
            ),
        )

    def _attributes(self) -> tuple[str, ...]:
        return ()

    def _derive(self, item: StreamTuple) -> Optional[float]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Online candidate admission (first stage of Figure 2.4)
    # ------------------------------------------------------------------
    def process(self, item: StreamTuple, ctx: FilterContext) -> None:
        value = self._derive(item)
        if value is None:
            return

        if self._phase is _Phase.SEED:
            # The first tuple is always a reference (the initial output).
            self._admit(item, value, ctx)
            ctx.mark_reference(item)
            self._ref_value = value
            self._phase = _Phase.POST_REF
            return

        if self._phase is _Phase.POST_REF:
            assert self._ref_value is not None
            if abs(value - self._ref_value) <= self.slack:
                self._admit(item, value, ctx)
                return
            # The vicinity ended: close this candidate set and continue
            # scanning from the new base with the same tuple.
            self._advance_base_on_close()
            ctx.close_set()
            self._phase = _Phase.PRE_REF
            self._tentative = []
            self._member_values = {}

        # PRE_REF: scanning for the next reference relative to the base.
        assert self._base is not None
        distance = abs(value - self._base)
        if distance >= self.delta:
            self._admit(item, value, ctx)
            ctx.mark_reference(item)
            self._ref_value = value
            # Dismiss tentative members outside the realized vicinity.
            for tentative in self._tentative:
                if abs(self._member_values[tentative.seq] - value) > self.slack:
                    ctx.dismiss(tentative)
                    del self._member_values[tentative.seq]
            self._tentative = []
            self._phase = _Phase.POST_REF
        elif distance >= self.delta - self.slack:
            self._admit(item, value, ctx)
            self._tentative.append(item)
        else:
            # Contiguity with the upcoming reference is broken.
            self._dismiss_tentative(ctx)

    def _admit(self, item: StreamTuple, value: float, ctx: FilterContext) -> None:
        ctx.admit(item)
        self._member_values[item.seq] = value

    def _dismiss_tentative(self, ctx: FilterContext) -> None:
        for tentative in self._tentative:
            ctx.dismiss(tentative)
            self._member_values.pop(tentative.seq, None)
        self._tentative = []

    def _advance_base_on_close(self) -> None:
        """Stateless filters base the next set on the realized reference;
        stateful ones wait for :meth:`on_output_decided`."""
        if not self._stateful:
            self._base = self._ref_value
        self._ref_value = None

    # ------------------------------------------------------------------
    # Engine callbacks
    # ------------------------------------------------------------------
    def flush(self, ctx: FilterContext) -> None:
        if self._phase is _Phase.POST_REF:
            self._advance_base_on_close()
            ctx.close_set()
        elif self._phase is _Phase.PRE_REF:
            # No reference materialized: the application is owed nothing.
            self._dismiss_tentative(ctx)
            ctx.close_set()
        self._phase = _Phase.PRE_REF
        self._member_values = {}

    def on_force_close(self, ctx: FilterContext) -> None:
        """Timely cut (section 3.3).

        A post-reference set closes as-is; a pre-reference set only holds
        tentative members, which are dismissed so that every emitted set
        still corresponds to exactly one self-interested reference - the
        property behind "group-aware filtering with cuts should never
        perform worse than self-interested filtering".
        """
        if self._phase is _Phase.POST_REF:
            self._advance_base_on_close()
            ctx.close_set(cut=True)
            self._phase = _Phase.PRE_REF
            self._tentative = []
            self._member_values = {}
        elif self._phase is _Phase.PRE_REF:
            self._dismiss_tentative(ctx)

    def on_output_decided(self, chosen: Sequence[StreamTuple]) -> None:
        if self._stateful and chosen:
            self._base = self._member_values.get(
                chosen[-1].seq, self._base if self._base is not None else 0.0
            )
            self._member_values = {}


class DeltaCompressionFilter(DeltaFilterBase):
    """DC1: delta compression on a single attribute (Table 5.1)."""

    state_update = "value"

    def __init__(
        self,
        name: str,
        attribute: str,
        delta: float,
        slack: float,
        stateful: bool = False,
    ):
        super().__init__(name, delta, slack, stateful=stateful)
        self.attribute = attribute

    def _attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    def _derive(self, item: StreamTuple) -> Optional[float]:
        return item.value(self.attribute)

    def make_self_interested(self) -> "SelfInterestedDelta":
        return SelfInterestedDelta(
            self.name, self.delta, lambda item: item.value(self.attribute)
        )


class StatefulDeltaCompressionFilter(DeltaCompressionFilter):
    """Stateful DC: candidate sets depend on previously chosen outputs.

    Figure 2.9: "an alternative semantics requires a candidate set to base
    its reference on the tuple chosen for output from the previous
    candidate set".  The engine decides its sets per-candidate-set even
    under the region algorithm (section 2.3.3).
    """

    def __init__(self, name: str, attribute: str, delta: float, slack: float):
        super().__init__(name, attribute, delta, slack, stateful=True)


class SelfInterestedDelta:
    """Uncoordinated DC baseline: outputs reference tuples immediately."""

    def __init__(
        self,
        name: str,
        delta: float,
        derive: Callable[[StreamTuple], Optional[float]],
    ):
        self.name = name
        self.delta = delta
        self._derive = derive
        self._base: Optional[float] = None

    def process(self, item: StreamTuple) -> list[StreamTuple]:
        value = self._derive(item)
        if value is None:
            return []
        if self._base is None or abs(value - self._base) >= self.delta:
            self._base = value
            return [item]
        return []

    def flush(self) -> list[StreamTuple]:
        return []
