"""Library of distance, membership and aggregate functions.

Section 5.3: "in the group-aware filtering service package we include a
library of distance, membership, and aggregate functions that can be
easily customized with application-specific parameters", which
applications reference from their quality specifications.  Domain
extensions register additional functions under their own names.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

from repro.core.tuples import StreamTuple

__all__ = [
    "absolute_distance",
    "euclidean_distance",
    "manhattan_distance",
    "mean_of",
    "range_of",
    "rate_of_change",
    "band_membership",
    "above_threshold",
    "FunctionRegistry",
    "DISTANCE_FUNCTIONS",
    "AGGREGATE_FUNCTIONS",
    "MEMBERSHIP_FUNCTIONS",
]


# ---------------------------------------------------------------------------
# Distance functions (used to compare a tuple against a reference value)
# ---------------------------------------------------------------------------
def absolute_distance(a: float, b: float) -> float:
    """``|a - b|`` - the distance used by plain delta-compression."""
    return abs(a - b)


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance, e.g. for two-dimensional location tuples."""
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def manhattan_distance(a: Sequence[float], b: Sequence[float]) -> float:
    if len(a) != len(b):
        raise ValueError("vectors must have equal length")
    return sum(abs(x - y) for x, y in zip(a, b))


# ---------------------------------------------------------------------------
# Aggregate / state-update functions (derive the filtered value)
# ---------------------------------------------------------------------------
def mean_of(attributes: Sequence[str]) -> Callable[[StreamTuple], float]:
    """Average over several attributes - DC3's "averaged readings over
    multiple attributes of the source data" (section 5.1)."""
    names = tuple(attributes)
    if not names:
        raise ValueError("mean_of needs at least one attribute")

    def derive(item: StreamTuple) -> float:
        return sum(item.value(name) for name in names) / len(names)

    return derive


def range_of(values: Sequence[float]) -> float:
    """Sample range (max - min): the stratified sampler's dynamics measure."""
    if not values:
        raise ValueError("range of an empty sequence is undefined")
    return max(values) - min(values)


def rate_of_change(
    value: float, previous: float, dt_ms: float
) -> float:
    """Change per second - DC2's "trend" state update (section 5.1)."""
    if dt_ms <= 0:
        raise ValueError("dt_ms must be positive")
    return (value - previous) / (dt_ms / 1000.0)


# ---------------------------------------------------------------------------
# Membership functions (classification-based candidate admission)
# ---------------------------------------------------------------------------
def band_membership(low: float, high: float) -> Callable[[float], bool]:
    """Membership in a closed band, e.g. fuzzy "safe zone" rules."""
    if low > high:
        raise ValueError("low must not exceed high")
    return lambda value: low <= value <= high


def above_threshold(threshold: float) -> Callable[[float], bool]:
    return lambda value: value >= threshold


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class FunctionRegistry:
    """Named function lookup so quality specifications can reference the
    library (or application-supplied extensions) by identifier."""

    def __init__(self, initial: Mapping[str, Callable] | None = None):
        self._functions: dict[str, Callable] = dict(initial or {})

    def register(self, name: str, function: Callable) -> None:
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        self._functions[name] = function

    def get(self, name: str) -> Callable:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(
                f"unknown function {name!r}; registered: {sorted(self._functions)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)


DISTANCE_FUNCTIONS = FunctionRegistry(
    {
        "absolute": absolute_distance,
        "euclidean": euclidean_distance,
        "manhattan": manhattan_distance,
    }
)

AGGREGATE_FUNCTIONS = FunctionRegistry(
    {
        "range": range_of,
    }
)

MEMBERSHIP_FUNCTIONS = FunctionRegistry(
    {
        "band": band_membership,
        "above": above_threshold,
    }
)
