"""Independent quality validation of group-aware filtering output.

Data quality for filtering (section 2.1) means *accuracy* (no value
tampering - guaranteed by construction, filters only select), *data
granularity* (every delivered tuple is quality-equivalent to a reference
output) and *completeness* (every candidate set contributes its required
degree of outputs).  This module checks granularity and completeness from
scratch: it replays the trace through a fresh filter instance using a
recording context, reconstructs the candidate sets, and verifies the
delivered per-application output against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.candidates import CandidateSet
from repro.core.tuples import StreamTuple
from repro.filters.base import GroupAwareFilter

__all__ = ["RecordingContext", "replay_candidate_sets", "validate_outputs", "QualityReport"]


class RecordingContext:
    """Stand-in for the engine's FilterContext that only records sets."""

    def __init__(self, flt: GroupAwareFilter):
        self.filter = flt
        self._current: CandidateSet | None = None
        self.closed_sets: list[CandidateSet] = []
        self.last_decided: tuple[StreamTuple, ...] = ()

    @property
    def current_set(self) -> CandidateSet | None:
        return self._current

    def admit(self, item: StreamTuple) -> None:
        if self._current is None or self._current.closed:
            self._current = CandidateSet(self.filter.name)
        if item not in self._current:
            self._current.add(item)

    def dismiss(self, item: StreamTuple) -> None:
        if self._current is not None and item in self._current:
            self._current.remove(item)

    def mark_reference(self, item: StreamTuple) -> None:
        if self._current is None or item not in self._current:
            raise ValueError("reference tuple must be an admitted candidate")
        self._current.reference = item

    def set_degree(self, degree: int) -> None:
        if self._current is None:
            raise ValueError("no open candidate set")
        self._current.degree = degree

    def restrict_eligible(self, members: Iterable[StreamTuple]) -> None:
        if self._current is None:
            raise ValueError("no open candidate set")
        self._current.restrict_eligible(members)

    def close_set(self, cut: bool = False) -> None:
        if self._current is None:
            return
        if len(self._current) == 0:
            self._current = None
            return
        self._current.close(cut=cut)
        self.closed_sets.append(self._current)
        self._current = None
        # Stateful replay: pretend the reference itself was chosen.
        last = self.closed_sets[-1]
        reference = last.reference if last.reference is not None else last.tuples[-1]
        self.last_decided = (reference,)
        self.filter.on_output_decided([reference])

    def has_open_candidates(self) -> bool:
        return self._current is not None and len(self._current) > 0


def replay_candidate_sets(
    filter_factory: Callable[[], GroupAwareFilter],
    trace: Iterable[StreamTuple],
) -> list[CandidateSet]:
    """Reconstruct the candidate sets a fresh filter produces on ``trace``.

    Valid for stateless filters (whose candidate sets are independent of
    the decider's choices); stateful replay assumes reference outputs.
    """
    flt = filter_factory()
    ctx = RecordingContext(flt)
    for item in trace:
        flt.process(item, ctx)  # type: ignore[arg-type]
    flt.flush(ctx)  # type: ignore[arg-type]
    return ctx.closed_sets


@dataclass
class QualityReport:
    """Outcome of validating one application's delivered output."""

    candidate_sets: int = 0
    satisfied_sets: int = 0
    foreign_tuples: list[int] = field(default_factory=list)
    unsatisfied_sets: list[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Every candidate set received its required degree of outputs."""
        return not self.unsatisfied_sets

    @property
    def granular(self) -> bool:
        """Every delivered tuple belongs to some candidate set."""
        return not self.foreign_tuples

    @property
    def ok(self) -> bool:
        return self.complete and self.granular


def validate_outputs(
    candidate_sets: Sequence[CandidateSet],
    outputs: Sequence[StreamTuple],
) -> QualityReport:
    """Check delivered ``outputs`` against reconstructed candidate sets.

    Granularity: each output tuple must be an eligible member of at least
    one candidate set (it is quality-equivalent to that set's reference).
    Completeness: each candidate set must contain at least
    ``min(degree, |eligible|)`` delivered tuples.
    """
    report = QualityReport(candidate_sets=len(candidate_sets))
    delivered = {item.seq for item in outputs}
    member_of_any: set[int] = set()
    for candidate_set in candidate_sets:
        eligible = candidate_set.eligible_tuples
        member_of_any.update(item.seq for item in eligible)
        required = min(candidate_set.degree, len(eligible))
        got = sum(1 for item in eligible if item.seq in delivered)
        if got >= required:
            report.satisfied_sets += 1
        else:
            report.unsatisfied_sets.append(candidate_set.set_id)
    report.foreign_tuples = sorted(delivered - member_of_any)
    return report
