"""Reservoir-sampling filter.

Section 5.1: "reservoir sampling chooses a fixed number of samples from
a given population.  Each tuple in the result can be replaced randomly
by another tuple in the population.  In this case, the candidate set of
each output tuple is the whole data sequence in a predefined window.
Reservoir sampling can be useful to bound the output bandwidth demands."

The group-aware formulation: the window is one candidate set with degree
``reservoir_size`` and every member eligible - the decider's picks are a
valid reservoir because any k-subset of the window is.  The
self-interested counterpart runs classic Vitter reservoir sampling per
window.
"""

from __future__ import annotations

import random

from repro.core.engine import FilterContext
from repro.core.tuples import StreamTuple
from repro.filters.base import (
    CandidateComputation,
    DependencySpec,
    FilterTaxonomy,
    GroupAwareFilter,
    OutputSelection,
)

__all__ = ["ReservoirSamplingFilter", "SelfInterestedReservoir"]


class ReservoirSamplingFilter(GroupAwareFilter):
    """Pick ``reservoir_size`` tuples from every ``window`` inputs."""

    def __init__(self, name: str, reservoir_size: int, window: int, seed: int = 0):
        super().__init__(name)
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be at least 1")
        if window < reservoir_size:
            raise ValueError("window must be at least reservoir_size")
        self.reservoir_size = reservoir_size
        self.window = window
        self.seed = seed
        self._count_in_window = 0

    @property
    def taxonomy(self) -> FilterTaxonomy:
        return FilterTaxonomy(
            candidate_computation=CandidateComputation(
                attributes=(),
                state_update="tuple-count",
                threshold="window-size",
            ),
            output_selection=OutputSelection(
                quantity=self.reservoir_size, unit="tuple", prescription="random"
            ),
            dependency=DependencySpec(stateful=False),
        )

    def process(self, item: StreamTuple, ctx: FilterContext) -> None:
        ctx.admit(item)
        self._count_in_window += 1
        if self._count_in_window >= self.window:
            self._close(ctx)

    def _close(self, ctx: FilterContext, cut: bool = False) -> None:
        if self._count_in_window == 0:
            return
        ctx.set_degree(min(self.reservoir_size, self._count_in_window))
        ctx.close_set(cut=cut)
        self._count_in_window = 0

    def flush(self, ctx: FilterContext) -> None:
        self._close(ctx)

    def on_force_close(self, ctx: FilterContext) -> None:
        self._close(ctx, cut=True)

    def make_self_interested(self) -> "SelfInterestedReservoir":
        return SelfInterestedReservoir(self)


class SelfInterestedReservoir:
    """Classic per-window reservoir sampling (Vitter's algorithm R)."""

    def __init__(self, spec: ReservoirSamplingFilter):
        self.name = spec.name
        self._spec = spec
        self._rng = random.Random(spec.seed ^ (hash(spec.name) & 0xFFFFFFFF))
        self._reservoir: list[StreamTuple] = []
        self._seen = 0

    def process(self, item: StreamTuple) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        self._seen += 1
        if len(self._reservoir) < self._spec.reservoir_size:
            self._reservoir.append(item)
        else:
            slot = self._rng.randrange(self._seen)
            if slot < self._spec.reservoir_size:
                self._reservoir[slot] = item
        if self._seen >= self._spec.window:
            outputs = self._drain()
        return outputs

    def flush(self) -> list[StreamTuple]:
        return self._drain()

    def _drain(self) -> list[StreamTuple]:
        outputs = sorted(self._reservoir, key=lambda t: t.seq)
        self._reservoir = []
        self._seen = 0
        return outputs
