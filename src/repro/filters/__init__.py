"""Group-aware filters: the extensible filter framework of Chapter 5.

All filters are pure data-selection operators ("the output of a filter is
a subset of the source data", section 1.2).  The package ships the
paper's evaluated types - DC1/DC2/DC3 delta compression, stateful DC and
stratified sampling - plus the taxonomy, the function library and the
textual spec parser through which applications declare their needs.
"""

from repro.filters.base import (
    CandidateComputation,
    DependencySpec,
    FilterTaxonomy,
    GroupAwareFilter,
    OutputSelection,
)
from repro.filters.delta import (
    DeltaCompressionFilter,
    DeltaFilterBase,
    SelfInterestedDelta,
    StatefulDeltaCompressionFilter,
)
from repro.filters.location import LocationDeltaFilter
from repro.filters.membership import Band, BandTransitionFilter
from repro.filters.multiattr import AveragedDeltaFilter
from repro.filters.reservoir import ReservoirSamplingFilter
from repro.filters.sampling import SelfInterestedSampler, StratifiedSamplingFilter
from repro.filters.spec import format_spec, parse_filter, parse_group
from repro.filters.trend import TrendDeltaFilter
from repro.filters.validate import (
    QualityReport,
    RecordingContext,
    replay_candidate_sets,
    validate_outputs,
)

__all__ = [
    "AveragedDeltaFilter",
    "Band",
    "BandTransitionFilter",
    "CandidateComputation",
    "DeltaCompressionFilter",
    "DeltaFilterBase",
    "DependencySpec",
    "FilterTaxonomy",
    "GroupAwareFilter",
    "LocationDeltaFilter",
    "OutputSelection",
    "QualityReport",
    "RecordingContext",
    "ReservoirSamplingFilter",
    "SelfInterestedDelta",
    "SelfInterestedSampler",
    "StatefulDeltaCompressionFilter",
    "StratifiedSamplingFilter",
    "TrendDeltaFilter",
    "format_spec",
    "parse_filter",
    "parse_group",
    "replay_candidate_sets",
    "validate_outputs",
]
