"""Textual filter specifications.

Applications in the paper "specify which functions to use and the
corresponding parameters in their subscription files" (section 5.3); the
evaluation tables write these as, e.g., ``DC1(thermo4, 0.0310, 0.0155)``
or ``SS(thermo4, 1000, 0.15, 50, 20)``.  This module parses that notation
into filter instances so experiment configurations and subscriptions can
be expressed exactly as the paper prints them.

Recognized types (Tables 4.1, 4.19, 5.1):

* ``DC(attr, delta, slack)`` / ``DC1(attr, delta, slack)`` - single
  attribute delta compression;
* ``SDC(attr, delta, slack)`` - stateful delta compression (Figure 2.9);
* ``DC2(attr, delta, slack)`` - trend delta compression;
* ``DC3(a1, a2, a3, delta, slack)`` - averaged delta compression;
* ``SS(attr, interval_ms, threshold, high%, low%[, prescription])`` -
  stratified sampling;
* ``RS(size, window)`` - reservoir sampling (section 5.1);
* ``LOC(x_attr, y_attr, delta, slack)`` - Euclidean location delta
  compression (section 5.1);
* ``BAND(attr, witness_window, name:low:high, ...)`` - band-transition
  membership filter (section 5.1).
"""

from __future__ import annotations

import itertools
import re
from typing import Optional

from repro.filters.base import GroupAwareFilter
from repro.filters.delta import DeltaCompressionFilter, StatefulDeltaCompressionFilter
from repro.filters.location import LocationDeltaFilter
from repro.filters.membership import Band, BandTransitionFilter
from repro.filters.multiattr import AveragedDeltaFilter
from repro.filters.reservoir import ReservoirSamplingFilter
from repro.filters.sampling import StratifiedSamplingFilter
from repro.filters.trend import TrendDeltaFilter

__all__ = ["parse_filter", "parse_group", "format_spec"]

_SPEC_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*\((.*)\)\s*$")
_auto_names = itertools.count()


def _split_args(raw: str) -> list[str]:
    return [part.strip() for part in raw.split(",") if part.strip()]


def _floats(parts: list[str], spec: str) -> list[float]:
    try:
        return [float(part) for part in parts]
    except ValueError as exc:
        raise ValueError(f"non-numeric parameter in {spec!r}: {exc}") from None


def parse_filter(spec: str, name: Optional[str] = None) -> GroupAwareFilter:
    """Parse one filter specification string into a filter instance.

    ``name`` defaults to the spec string plus a unique suffix, so a group
    may contain several filters with identical parameters.
    """
    match = _SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"malformed filter spec {spec!r}")
    kind = match.group(1).upper()
    args = _split_args(match.group(2))
    if name is None:
        name = f"{spec.strip()}#{next(_auto_names)}"

    if kind in ("DC", "DC1", "SDC"):
        if len(args) != 3:
            raise ValueError(f"{kind} takes (attribute, delta, slack): {spec!r}")
        attribute = args[0]
        delta, slack = _floats(args[1:], spec)
        cls = StatefulDeltaCompressionFilter if kind == "SDC" else DeltaCompressionFilter
        return cls(name, attribute, delta, slack)

    if kind == "DC2":
        if len(args) != 3:
            raise ValueError(f"DC2 takes (attribute, delta, slack): {spec!r}")
        attribute = args[0]
        delta, slack = _floats(args[1:], spec)
        return TrendDeltaFilter(name, attribute, delta, slack)

    if kind == "DC3":
        if len(args) < 4:
            raise ValueError(f"DC3 takes (attr..., delta, slack): {spec!r}")
        attributes = args[:-2]
        delta, slack = _floats(args[-2:], spec)
        return AveragedDeltaFilter(name, attributes, delta, slack)

    if kind == "SS":
        if len(args) not in (5, 6):
            raise ValueError(
                f"SS takes (attribute, interval, threshold, high%, low%"
                f"[, prescription]): {spec!r}"
            )
        attribute = args[0]
        interval, threshold, high, low = _floats(args[1:5], spec)
        prescription = args[5] if len(args) == 6 else "random"
        return StratifiedSamplingFilter(
            name, attribute, interval, threshold, high, low, prescription=prescription
        )

    if kind == "RS":
        if len(args) != 2:
            raise ValueError(f"RS takes (reservoir_size, window): {spec!r}")
        size, window = _floats(args, spec)
        return ReservoirSamplingFilter(name, int(size), int(window))

    if kind == "LOC":
        if len(args) != 4:
            raise ValueError(f"LOC takes (x_attr, y_attr, delta, slack): {spec!r}")
        x_attribute, y_attribute = args[0], args[1]
        delta, slack = _floats(args[2:], spec)
        return LocationDeltaFilter(name, x_attribute, y_attribute, delta, slack)

    if kind == "BAND":
        if len(args) < 3:
            raise ValueError(
                f"BAND takes (attribute, witness_window, name:low:high...): {spec!r}"
            )
        attribute = args[0]
        witness_window = int(_floats(args[1:2], spec)[0])
        bands = []
        for part in args[2:]:
            pieces = part.split(":")
            if len(pieces) != 3:
                raise ValueError(f"band {part!r} must be name:low:high in {spec!r}")
            low, high = _floats(pieces[1:], spec)
            bands.append(Band(pieces[0], low, high))
        return BandTransitionFilter(name, attribute, bands, witness_window)

    raise ValueError(f"unknown filter type {kind!r} in {spec!r}")


def parse_group(specs: list[str], prefix: str = "f") -> list[GroupAwareFilter]:
    """Parse a list of specifications into a group with unique names."""
    return [
        parse_filter(spec, name=f"{prefix}{index}:{spec.strip()}")
        for index, spec in enumerate(specs)
    ]


def format_spec(flt: GroupAwareFilter) -> str:
    """Render a filter back into the paper's notation."""
    if isinstance(flt, StatefulDeltaCompressionFilter):
        return f"SDC({flt.attribute}, {flt.delta:.4g}, {flt.slack:.4g})"
    if isinstance(flt, TrendDeltaFilter):
        return f"DC2({flt.attribute}, {flt.delta:.4g}, {flt.slack:.4g})"
    if isinstance(flt, AveragedDeltaFilter):
        attrs = ", ".join(flt.attributes)
        return f"DC3({attrs}, {flt.delta:.4g}, {flt.slack:.4g})"
    if isinstance(flt, DeltaCompressionFilter):
        return f"DC1({flt.attribute}, {flt.delta:.4g}, {flt.slack:.4g})"
    if isinstance(flt, StratifiedSamplingFilter):
        return (
            f"SS({flt.attribute}, {flt.interval_ms:.4g}, {flt.threshold:.4g}, "
            f"{flt.high_rate_percent:.4g}, {flt.low_rate_percent:.4g})"
        )
    if isinstance(flt, ReservoirSamplingFilter):
        return f"RS({flt.reservoir_size}, {flt.window})"
    if isinstance(flt, LocationDeltaFilter):
        return (
            f"LOC({flt.x_attribute}, {flt.y_attribute}, "
            f"{flt.delta:.4g}, {flt.slack:.4g})"
        )
    if isinstance(flt, BandTransitionFilter):
        bands = ", ".join(
            f"{band.name}:{band.low:.4g}:{band.high:.4g}" for band in flt.bands
        )
        return f"BAND({flt.attribute}, {flt.witness_window}, {bands})"
    raise TypeError(f"cannot format {type(flt).__name__}")
