"""Filter abstract base class and the Chapter-5 taxonomy.

Figure 5.1 classifies group-aware filters along three dimensions:

* **candidate computation** - which attributes are read, how internal
  state is updated, and the threshold (distance or membership) function
  that admits candidates;
* **output selection** - how many tuples to pick from each candidate set
  (degree of candidacy, in tuples or percent) and the prescriptive
  function (random / top / bottom);
* **dependency of candidate sets** - whether the next candidate set is
  based on reference tuples (stateless) or on previously chosen outputs
  (stateful, Figure 2.9).

Every concrete filter carries a :class:`FilterTaxonomy` describing where
it sits, and implements the small online protocol the engine drives
(section 2.2.2's required properties of group-aware filters).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.tuples import StreamTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.engine import FilterContext, SelfInterestedFilterProtocol

__all__ = [
    "CandidateComputation",
    "OutputSelection",
    "DependencySpec",
    "FilterTaxonomy",
    "GroupAwareFilter",
]

_PRESCRIPTIONS = ("random", "top", "bottom")
_UNITS = ("tuple", "percent")


@dataclass(frozen=True)
class CandidateComputation:
    """First taxonomy dimension: how candidates are computed."""

    attributes: tuple[str, ...]
    state_update: str = "value"
    threshold: str = "absolute-distance"


@dataclass(frozen=True)
class OutputSelection:
    """Second taxonomy dimension: how outputs are chosen from a set."""

    quantity: float = 1.0
    unit: str = "tuple"
    prescription: str = "random"

    def __post_init__(self) -> None:
        if self.unit not in _UNITS:
            raise ValueError(f"unit must be one of {_UNITS}, got {self.unit!r}")
        if self.prescription not in _PRESCRIPTIONS:
            raise ValueError(
                f"prescription must be one of {_PRESCRIPTIONS}, got {self.prescription!r}"
            )
        if self.quantity <= 0:
            raise ValueError("quantity must be positive")

    def degree_for(self, set_size: int) -> int:
        """Number of tuples to select from a set of ``set_size`` members."""
        if self.unit == "tuple":
            return max(1, min(set_size, int(self.quantity)))
        return max(1, min(set_size, round(self.quantity / 100.0 * set_size)))


@dataclass(frozen=True)
class DependencySpec:
    """Third taxonomy dimension: dependency between candidate sets."""

    stateful: bool = False
    dependent_state: str = "reference-tuples"


@dataclass(frozen=True)
class FilterTaxonomy:
    """A filter's position in the Figure 5.1 taxonomy."""

    candidate_computation: CandidateComputation
    output_selection: OutputSelection = field(default_factory=OutputSelection)
    dependency: DependencySpec = field(default_factory=DependencySpec)


class GroupAwareFilter(ABC):
    """Base class for all group-aware data-selection filters.

    Required properties (section 2.2.2): filters do data selection only;
    candidates of an output are all chosen before the next output's; a
    filter can finish choosing candidates when asked (cuts); candidate
    sets are computed online and may be adjusted before closing.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("filter name must be non-empty")
        self.name = name

    # -- classification -------------------------------------------------
    @property
    @abstractmethod
    def taxonomy(self) -> FilterTaxonomy:
        """The filter's position in the Chapter-5 taxonomy."""

    @property
    def stateful(self) -> bool:
        return self.taxonomy.dependency.stateful

    # -- online protocol -------------------------------------------------
    @abstractmethod
    def process(self, item: StreamTuple, ctx: "FilterContext") -> None:
        """Admit/dismiss candidates for one arriving tuple."""

    @abstractmethod
    def flush(self, ctx: "FilterContext") -> None:
        """End of stream: settle the open candidate set."""

    def on_force_close(self, ctx: "FilterContext") -> None:
        """Timely cut: close the open candidate set immediately.

        The default closes whatever has been admitted.  Filters with
        tentative (pre-reference) members override this to dismiss them
        instead, preserving the one-output-per-reference correspondence
        that keeps cuts "never worse than self-interested filtering"
        (section 3.3).
        """
        ctx.close_set(cut=True)

    def on_output_decided(self, chosen: Sequence[StreamTuple]) -> None:
        """Decider callback; stateful filters update their base here."""

    @abstractmethod
    def make_self_interested(self) -> "SelfInterestedFilterProtocol":
        """A fresh uncoordinated counterpart (the paper's SI baseline)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
