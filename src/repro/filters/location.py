"""Location (Euclidean) delta-compression filter.

Section 5.1: "if a tuple contains two-dimension coordinates of a
location, the natural distance function will be Euclidean distance."
A location-tracking application (section 3.1's robot tracker) wants an
update whenever the tracked entity moved ``delta`` meters, tolerating
``slack`` meters of deviation.

The machinery is the DC core with a vector distance: the reference is
the first position at least ``delta`` from the previous reference, and
the candidate set holds contiguous positions within ``slack`` of it.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.engine import FilterContext
from repro.core.tuples import StreamTuple
from repro.filters.base import (
    CandidateComputation,
    DependencySpec,
    FilterTaxonomy,
    GroupAwareFilter,
    OutputSelection,
)
from repro.filters.functions import euclidean_distance

__all__ = ["LocationDeltaFilter", "SelfInterestedLocation"]


class _Phase(enum.Enum):
    SEED = "seed"
    PRE_REF = "pre_reference"
    POST_REF = "post_reference"


class LocationDeltaFilter(GroupAwareFilter):
    """DC over the Euclidean distance of an (x, y) position."""

    def __init__(
        self,
        name: str,
        x_attribute: str,
        y_attribute: str,
        delta: float,
        slack: float,
    ):
        super().__init__(name)
        if delta <= 0:
            raise ValueError("delta must be positive")
        if slack < 0 or slack > delta / 2.0 * (1.0 + 1e-4):
            raise ValueError("Axiom 1 requires 0 <= slack <= delta/2")
        self.x_attribute = x_attribute
        self.y_attribute = y_attribute
        self.delta = delta
        self.slack = slack
        self._phase = _Phase.SEED
        self._base: Optional[tuple[float, float]] = None
        self._reference: Optional[tuple[float, float]] = None
        self._tentative: list[StreamTuple] = []
        self._positions: dict[int, tuple[float, float]] = {}

    @property
    def taxonomy(self) -> FilterTaxonomy:
        return FilterTaxonomy(
            candidate_computation=CandidateComputation(
                attributes=(self.x_attribute, self.y_attribute),
                state_update="position",
                threshold="euclidean-distance",
            ),
            output_selection=OutputSelection(quantity=1, unit="tuple"),
            dependency=DependencySpec(stateful=False),
        )

    def _position(self, item: StreamTuple) -> tuple[float, float]:
        return (item.value(self.x_attribute), item.value(self.y_attribute))

    def process(self, item: StreamTuple, ctx: FilterContext) -> None:
        position = self._position(item)
        self._positions[item.seq] = position

        if self._phase is _Phase.SEED:
            ctx.admit(item)
            ctx.mark_reference(item)
            self._reference = position
            self._phase = _Phase.POST_REF
            return

        if self._phase is _Phase.POST_REF:
            assert self._reference is not None
            if euclidean_distance(position, self._reference) <= self.slack:
                ctx.admit(item)
                return
            self._base = self._reference
            self._reference = None
            ctx.close_set()
            self._phase = _Phase.PRE_REF
            self._tentative = []

        assert self._base is not None
        distance = euclidean_distance(position, self._base)
        if distance >= self.delta:
            ctx.admit(item)
            ctx.mark_reference(item)
            self._reference = position
            for tentative in self._tentative:
                if (
                    euclidean_distance(self._positions[tentative.seq], position)
                    > self.slack
                ):
                    ctx.dismiss(tentative)
            self._tentative = []
            self._phase = _Phase.POST_REF
        elif distance >= self.delta - self.slack:
            ctx.admit(item)
            self._tentative.append(item)
        else:
            for tentative in self._tentative:
                ctx.dismiss(tentative)
            self._tentative = []

    def flush(self, ctx: FilterContext) -> None:
        if self._phase is _Phase.POST_REF:
            ctx.close_set()
        else:
            for tentative in self._tentative:
                ctx.dismiss(tentative)
            self._tentative = []
            ctx.close_set()
        self._phase = _Phase.PRE_REF

    def on_force_close(self, ctx: FilterContext) -> None:
        if self._phase is _Phase.POST_REF:
            self._base = self._reference
            self._reference = None
            ctx.close_set(cut=True)
            self._phase = _Phase.PRE_REF
            self._tentative = []
        else:
            for tentative in self._tentative:
                ctx.dismiss(tentative)
            self._tentative = []

    def make_self_interested(self) -> "SelfInterestedLocation":
        return SelfInterestedLocation(self)


class SelfInterestedLocation:
    """Reference positions only (no coordination)."""

    def __init__(self, spec: LocationDeltaFilter):
        self.name = spec.name
        self._spec = spec
        self._base: Optional[tuple[float, float]] = None

    def process(self, item: StreamTuple) -> list[StreamTuple]:
        position = (
            item.value(self._spec.x_attribute),
            item.value(self._spec.y_attribute),
        )
        if self._base is None or (
            euclidean_distance(position, self._base) >= self._spec.delta
        ):
            self._base = position
            return [item]
        return []

    def flush(self) -> list[StreamTuple]:
        return []
