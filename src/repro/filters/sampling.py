"""SS: stratified sampling filters with multi-degree candidacy.

Table 5.1's ``SS(attrib, timeInterval, threshold, highSmplRt,
lowSmplRt)``: the time series is segmented into fixed ``timeInterval``
windows; each segment is one candidate set whose *sample range*
(max - min of the attribute) decides its stratum.  High-dynamics
segments (range >= threshold) need ``highSmplRt`` percent of their
tuples, others ``lowSmplRt`` percent - the multi-degree hitting-set
generalization of Chapter 5 (Definition 6).

Output prescriptions (section 5.2) are supported: ``random`` (default)
leaves every member eligible; ``top``/``bottom`` restrict eligibility to
the k highest/lowest values of the attribute.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.core.engine import FilterContext
from repro.core.tuples import StreamTuple
from repro.filters.base import (
    CandidateComputation,
    DependencySpec,
    FilterTaxonomy,
    GroupAwareFilter,
    OutputSelection,
)

__all__ = ["StratifiedSamplingFilter", "SelfInterestedSampler"]


class StratifiedSamplingFilter(GroupAwareFilter):
    """SS(attrib, timeInterval, threshold, highSmplRt, lowSmplRt)."""

    def __init__(
        self,
        name: str,
        attribute: str,
        interval_ms: float,
        threshold: float,
        high_rate_percent: float,
        low_rate_percent: float,
        prescription: str = "random",
        seed: int = 0,
    ):
        super().__init__(name)
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if not (0 < low_rate_percent <= 100 and 0 < high_rate_percent <= 100):
            raise ValueError("sample rates must be in (0, 100]")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.attribute = attribute
        self.interval_ms = interval_ms
        self.threshold = threshold
        self.high_rate_percent = high_rate_percent
        self.low_rate_percent = low_rate_percent
        self.prescription = prescription
        self.seed = seed
        self._origin_ts: Optional[float] = None
        self._segment_index: Optional[int] = None
        self._members: list[StreamTuple] = []

    # ------------------------------------------------------------------
    @property
    def taxonomy(self) -> FilterTaxonomy:
        return FilterTaxonomy(
            candidate_computation=CandidateComputation(
                attributes=(self.attribute,),
                state_update="sample-range",
                threshold="time-interval",
            ),
            output_selection=OutputSelection(
                quantity=self.high_rate_percent,
                unit="percent",
                prescription=self.prescription,
            ),
            dependency=DependencySpec(stateful=False),
        )

    def degree_for(self, members: list[StreamTuple]) -> int:
        """Number of samples this segment owes (Definition 6 degree)."""
        values = [item.value(self.attribute) for item in members]
        dynamic = (max(values) - min(values)) >= self.threshold
        rate = self.high_rate_percent if dynamic else self.low_rate_percent
        return max(1, min(len(members), math.ceil(rate / 100.0 * len(members))))

    # ------------------------------------------------------------------
    def process(self, item: StreamTuple, ctx: FilterContext) -> None:
        if self._origin_ts is None:
            self._origin_ts = item.timestamp
        segment = int((item.timestamp - self._origin_ts) // self.interval_ms)
        if self._segment_index is not None and segment != self._segment_index:
            self._close_segment(ctx)
        self._segment_index = segment
        ctx.admit(item)
        self._members.append(item)

    def _close_segment(self, ctx: FilterContext, cut: bool = False) -> None:
        if not self._members:
            return
        degree = self.degree_for(self._members)
        ctx.set_degree(degree)
        if self.prescription in ("top", "bottom"):
            ranked = sorted(
                self._members,
                key=lambda t: (t.value(self.attribute), t.timestamp),
                reverse=(self.prescription == "top"),
            )
            ctx.restrict_eligible(ranked[:degree])
        ctx.close_set(cut=cut)
        self._members = []

    def flush(self, ctx: FilterContext) -> None:
        self._close_segment(ctx)
        self._segment_index = None

    def on_force_close(self, ctx: FilterContext) -> None:
        """A cut closes the partial segment with a proportional degree."""
        self._close_segment(ctx, cut=True)

    def make_self_interested(self) -> "SelfInterestedSampler":
        return SelfInterestedSampler(self)


class SelfInterestedSampler:
    """Uncoordinated baseline: samples each segment independently.

    "Self-interested" stratified samplers pick their per-segment samples
    at random with a private generator, so two samplers over the same
    source rarely agree - exactly the redundancy group-aware filtering
    removes.
    """

    def __init__(self, spec: StratifiedSamplingFilter):
        self.name = spec.name
        self._spec = spec
        self._rng = random.Random(spec.seed ^ hash(spec.name) & 0xFFFFFFFF)
        self._origin_ts: Optional[float] = None
        self._segment_index: Optional[int] = None
        self._members: list[StreamTuple] = []

    def process(self, item: StreamTuple) -> list[StreamTuple]:
        outputs: list[StreamTuple] = []
        if self._origin_ts is None:
            self._origin_ts = item.timestamp
        segment = int((item.timestamp - self._origin_ts) // self._spec.interval_ms)
        if self._segment_index is not None and segment != self._segment_index:
            outputs = self._sample()
        self._segment_index = segment
        self._members.append(item)
        return outputs

    def flush(self) -> list[StreamTuple]:
        return self._sample()

    def _sample(self) -> list[StreamTuple]:
        if not self._members:
            return []
        degree = self._spec.degree_for(self._members)
        if self._spec.prescription in ("top", "bottom"):
            ranked = sorted(
                self._members,
                key=lambda t: (t.value(self._spec.attribute), t.timestamp),
                reverse=(self._spec.prescription == "top"),
            )
            chosen = ranked[:degree]
        else:
            chosen = self._rng.sample(self._members, degree)
        self._members = []
        return sorted(chosen, key=lambda t: t.timestamp)
