"""Membership (classification) based filter.

Section 5.1: "for classification-based candidate admission,
domain-specific membership functions, such as fuzzy rules for 'safe'
zones, may be used", and section 5.1's quality-equivalence rules: "the
application may treat as equivalent in quality any tuples" in the same
class.

:class:`BandTransitionFilter` watches which *band* (named value range) a
reading falls into and reports band transitions: each maximal run of
tuples inside the new band's entry window forms a candidate set - any of
those tuples is an equally good witness that the state changed (e.g.
"chlorine entered the DANGER zone").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.engine import FilterContext
from repro.core.tuples import StreamTuple
from repro.filters.base import (
    CandidateComputation,
    DependencySpec,
    FilterTaxonomy,
    GroupAwareFilter,
    OutputSelection,
)

__all__ = ["Band", "BandTransitionFilter", "SelfInterestedBandWatcher"]


class Band:
    """A named, inclusive value range."""

    __slots__ = ("name", "low", "high")

    def __init__(self, name: str, low: float, high: float):
        if low > high:
            raise ValueError(f"band {name!r}: low must not exceed high")
        self.name = name
        self.low = low
        self.high = high

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Band({self.name!r}, [{self.low}, {self.high}])"


class BandTransitionFilter(GroupAwareFilter):
    """Report each transition into a different band.

    ``witness_window`` bounds how many consecutive same-band tuples join
    the transition's candidate set (all are quality-equivalent witnesses
    of the transition; a bounded window keeps timeliness in check).
    """

    def __init__(
        self,
        name: str,
        attribute: str,
        bands: Sequence[Band],
        witness_window: int = 5,
    ):
        super().__init__(name)
        if not bands:
            raise ValueError("at least one band required")
        if witness_window < 1:
            raise ValueError("witness_window must be at least 1")
        names = [band.name for band in bands]
        if len(set(names)) != len(names):
            raise ValueError("band names must be unique")
        self.attribute = attribute
        self.bands = list(bands)
        self.witness_window = witness_window
        self._current_band: Optional[str] = None
        self._witnesses = 0

    @property
    def taxonomy(self) -> FilterTaxonomy:
        return FilterTaxonomy(
            candidate_computation=CandidateComputation(
                attributes=(self.attribute,),
                state_update="band-classification",
                threshold="membership",
            ),
            output_selection=OutputSelection(quantity=1, unit="tuple"),
            dependency=DependencySpec(stateful=False),
        )

    def classify(self, value: float) -> Optional[str]:
        for band in self.bands:
            if band.contains(value):
                return band.name
        return None

    def process(self, item: StreamTuple, ctx: FilterContext) -> None:
        band = self.classify(item.value(self.attribute))
        if band is None:
            # Outside every band: any running witness window ends.
            if ctx.has_open_candidates():
                ctx.close_set()
            self._witnesses = 0
            return
        if band == self._current_band:
            # Same band: extend the open witness window, if any.
            if ctx.has_open_candidates():
                ctx.admit(item)
                self._witnesses += 1
                if self._witnesses >= self.witness_window:
                    ctx.close_set()
                    self._witnesses = 0
            return
        # Transition into a new band: start a fresh witness set.
        if ctx.has_open_candidates():
            ctx.close_set()
        self._current_band = band
        self._witnesses = 1
        ctx.admit(item)
        ctx.mark_reference(item)
        if self.witness_window == 1:
            ctx.close_set()
            self._witnesses = 0

    def flush(self, ctx: FilterContext) -> None:
        ctx.close_set()
        self._witnesses = 0

    def on_force_close(self, ctx: FilterContext) -> None:
        ctx.close_set(cut=True)
        self._witnesses = 0

    def make_self_interested(self) -> "SelfInterestedBandWatcher":
        return SelfInterestedBandWatcher(self)


class SelfInterestedBandWatcher:
    """Emits the first tuple of every band transition."""

    def __init__(self, spec: BandTransitionFilter):
        self.name = spec.name
        self._spec = spec
        self._current_band: Optional[str] = None

    def process(self, item: StreamTuple) -> list[StreamTuple]:
        band = self._spec.classify(item.value(self._spec.attribute))
        if band is not None and band != self._current_band:
            self._current_band = band
            return [item]
        return []

    def flush(self) -> list[StreamTuple]:
        return []
