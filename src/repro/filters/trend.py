"""DC2: delta compression on the *trend* of an attribute.

Section 5.1: "if an application is interested in the changing rates or
the 'trends' of temperature values, the filter may want to compute the
ratio of the temperature change over a time span for each tuple" and run
delta compression on that derived state.  The trend of tuple *i* is
``(v_i - v_{i-1}) / (t_i - t_{i-1})`` in units per second; the first
tuple's trend is defined as zero (no change yet), making it the seed
reference exactly as for DC1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.tuples import StreamTuple
from repro.filters.delta import DeltaFilterBase, SelfInterestedDelta
from repro.filters.functions import rate_of_change

__all__ = ["TrendDeltaFilter"]


class _TrendState:
    """Streaming computation of the rate of change per second."""

    def __init__(self, attribute: str):
        self.attribute = attribute
        self._previous_value: Optional[float] = None
        self._previous_ts: Optional[float] = None

    def derive(self, item: StreamTuple) -> float:
        value = item.value(self.attribute)
        if self._previous_value is None:
            trend = 0.0
        else:
            assert self._previous_ts is not None
            trend = rate_of_change(
                value, self._previous_value, item.timestamp - self._previous_ts
            )
        self._previous_value = value
        self._previous_ts = item.timestamp
        return trend


class TrendDeltaFilter(DeltaFilterBase):
    """DC2(attrib, delta, slack): monitors changes of trend(attrib)."""

    state_update = "trend"

    def __init__(
        self,
        name: str,
        attribute: str,
        delta: float,
        slack: float,
        stateful: bool = False,
    ):
        super().__init__(name, delta, slack, stateful=stateful)
        self.attribute = attribute
        self._trend = _TrendState(attribute)

    def _attributes(self) -> tuple[str, ...]:
        return (self.attribute,)

    def _derive(self, item: StreamTuple) -> Optional[float]:
        return self._trend.derive(item)

    def make_self_interested(self) -> SelfInterestedDelta:
        state = _TrendState(self.attribute)
        return SelfInterestedDelta(self.name, self.delta, state.derive)
