"""DC3: delta compression on the average of several attributes.

Section 5.1: "if a data stream consists of readings from multiple sensors
of similar sensing capacities deployed in close vicinity, a filter may
compute the 'averaged' readings over multiple attributes of the source
data" and run delta compression on the average.  Table 5.1's
``DC3(attrib1, attrib2, attrib3, delta, slack)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.tuples import StreamTuple
from repro.filters.delta import DeltaFilterBase, SelfInterestedDelta
from repro.filters.functions import mean_of

__all__ = ["AveragedDeltaFilter"]


class AveragedDeltaFilter(DeltaFilterBase):
    """DC3: monitors the change of ``average(attributes)``."""

    state_update = "average"

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        delta: float,
        slack: float,
        stateful: bool = False,
    ):
        super().__init__(name, delta, slack, stateful=stateful)
        if len(attributes) < 2:
            raise ValueError("DC3 averages at least two attributes")
        self.attributes = tuple(attributes)
        self._mean = mean_of(self.attributes)

    def _attributes(self) -> tuple[str, ...]:
        return self.attributes

    def _derive(self, item: StreamTuple) -> Optional[float]:
        return self._mean(item)

    def make_self_interested(self) -> SelfInterestedDelta:
        return SelfInterestedDelta(self.name, self.delta, mean_of(self.attributes))
