"""Server-initiated degradation control (closing section 3.1's loop).

The paper models graceful degradation as an ordered list of fallback
quality levels (:class:`~repro.qos.spec.DegradationPolicy`), but the
live broker never *drove* it: overload ended in queue-overflow drops or
a ``disconnect`` reap.  :class:`DegradationController` closes that loop
per session.  The broker feeds it the session's stress signals — queue
depth against its bound, overflow-drop rate, measured egress bandwidth
and batch-flush wait — and the controller answers with at most one
:class:`DegradationDecision` per evaluation: step *down* one quality
level when any signal crosses its threshold, step *up* one level after
a sustained healthy window.

Recovery is AIMD-shaped, mirroring the ingest side's
:class:`~repro.transport.client.AdaptiveIngest`: probing back toward
the preferred level is additive (one level at a time after
``healthy_window_s`` of calm), and a probe that re-trips multiplies the
next probe wait by ``probe_backoff`` (halving the probe cadence), so a
persistently saturated link settles at the coarse level instead of
oscillating.  The probe wait resets once the session sits at level 0
through a full healthy window.

Everything here is pure synchronous bookkeeping — no clocks, no I/O —
so the broker can evaluate it under the source lock and the cluster can
reconstruct a controller at the session's current level after a
migration or failover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.qos.spec import DegradationPolicy, QualitySpec

__all__ = [
    "DegradationConfig",
    "DegradationController",
    "DegradationDecision",
    "policy_from_profile",
    "policy_to_profile",
]


@dataclass(frozen=True)
class DegradationConfig:
    """Thresholds and cadence for one session's degradation control."""

    #: Queue depth as a fraction of capacity that counts as stressed.
    queue_high_ratio: float = 0.85
    #: Overflow-dropped tuples per second that counts as stressed.
    drop_rate_per_s: float = 1.0
    #: Broker-side wait (ms) shipping one batch into the session queue
    #: that counts as stressed (a blocking put that long means the
    #: consumer is pacing the broker).  ``None`` disables the signal.
    flush_wait_ms: Optional[float] = 200.0
    #: Minimum seconds between controller evaluations.
    interval_s: float = 0.25
    #: Minimum seconds between successive degrade steps.
    cooldown_s: float = 1.0
    #: Base healthy window before probing one level back up.
    healthy_window_s: float = 2.0
    #: Probe-wait multiplier applied when a probe re-trips.
    probe_backoff: float = 2.0
    #: Upper bound on the probe wait, however often probes fail.
    max_probe_wait_s: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.queue_high_ratio <= 1.0:
            raise ValueError("queue_high_ratio must be within [0, 1]")
        if self.drop_rate_per_s < 0:
            raise ValueError("drop_rate_per_s must be non-negative")
        if self.flush_wait_ms is not None and self.flush_wait_ms <= 0:
            raise ValueError("flush_wait_ms must be positive (or None)")
        if self.interval_s <= 0 or self.cooldown_s < 0:
            raise ValueError("interval_s must be positive, cooldown_s >= 0")
        if self.healthy_window_s <= 0:
            raise ValueError("healthy_window_s must be positive")
        if self.probe_backoff < 1.0:
            raise ValueError("probe_backoff must be at least 1")
        if self.max_probe_wait_s < self.healthy_window_s:
            raise ValueError("max_probe_wait_s must cover healthy_window_s")


@dataclass(frozen=True)
class DegradationDecision:
    """One level transition, with the signal that triggered it as evidence."""

    action: str  #: ``"degrade"`` or ``"recover"``
    from_level: int
    to_level: int
    spec: str  #: the new level's filter spec
    signal: str  #: ``queue_depth`` / ``drop_rate`` / ``bandwidth`` / ``flush_wait`` / ``healthy``
    value: float
    threshold: float


class DegradationController:
    """Per-session level controller over one :class:`DegradationPolicy`."""

    def __init__(
        self,
        policy: DegradationPolicy,
        config: Optional[DegradationConfig] = None,
        *,
        level: int = 0,
    ):
        if not 0 <= level < len(policy.levels):
            raise ValueError(
                f"level {level} outside policy's {len(policy.levels)} levels"
            )
        self.policy = policy
        self.config = config if config is not None else DegradationConfig()
        self.level = level
        self._last_eval_s: Optional[float] = None
        self._last_step_s: Optional[float] = None
        self._healthy_since: Optional[float] = None
        self._probe_wait_s = self.config.healthy_window_s
        #: Set while the most recent transition was an upward probe whose
        #: outcome (calm vs re-trip) is still being judged.
        self._probing = False
        self._last_dropped = 0
        self._last_egress_bytes = 0
        #: Worst broker-side flush wait observed since the last evaluation.
        self._flush_wait_ms = 0.0
        #: Level transitions as ``(action, to_level)`` — the recovery
        #: analogue of ``AdaptiveIngest.trajectory``.
        self.trajectory: list[tuple[str, int]] = [("start", level)]

    # ------------------------------------------------------------------
    @property
    def max_level(self) -> int:
        return len(self.policy.levels) - 1

    @property
    def spec(self) -> str:
        """The active level's filter spec."""
        return self.policy.levels[self.level].filter_spec

    def note_flush_wait(self, wait_ms: float) -> None:
        """Record one batch-ship wait (the broker calls this per flush)."""
        if wait_ms > self._flush_wait_ms:
            self._flush_wait_ms = wait_ms

    # ------------------------------------------------------------------
    def observe(
        self,
        now_s: float,
        *,
        queue_depth: int,
        queue_capacity: int,
        dropped_tuples: int,
        egress_bytes: int,
    ) -> Optional[DegradationDecision]:
        """Evaluate the session's signals; at most one step per call.

        ``dropped_tuples`` and ``egress_bytes`` are cumulative session
        counters; the controller differentiates them against the
        previous evaluation to get rates.  Calls arriving faster than
        ``interval_s`` are absorbed (rate bookkeeping still advances on
        the evaluated calls only).
        """
        cfg = self.config
        if self._last_eval_s is None:
            # First sight: baseline the cumulative counters, no verdict.
            self._last_eval_s = now_s
            self._last_dropped = dropped_tuples
            self._last_egress_bytes = egress_bytes
            return None
        dt = now_s - self._last_eval_s
        if dt < cfg.interval_s:
            return None
        drop_rate = max(0, dropped_tuples - self._last_dropped) / dt
        egress_kbps = (
            max(0, egress_bytes - self._last_egress_bytes) * 8.0 / 1000.0 / dt
        )
        flush_wait = self._flush_wait_ms
        self._last_eval_s = now_s
        self._last_dropped = dropped_tuples
        self._last_egress_bytes = egress_bytes
        self._flush_wait_ms = 0.0

        stress = self._stress_signal(
            queue_depth, queue_capacity, drop_rate, egress_kbps, flush_wait
        )
        if stress is not None:
            self._healthy_since = None
            if self._probing:
                # The upward probe re-tripped: halve the probe cadence.
                self._probing = False
                self._probe_wait_s = min(
                    self._probe_wait_s * cfg.probe_backoff,
                    cfg.max_probe_wait_s,
                )
            if self.level >= self.max_level:
                return None
            if (
                self._last_step_s is not None
                and now_s - self._last_step_s < cfg.cooldown_s
            ):
                return None
            return self._step(now_s, "degrade", self.level + 1, *stress)

        # Healthy: the last probe (if any) survived contact.
        self._probing = False
        if self._healthy_since is None:
            self._healthy_since = now_s
        calm = now_s - self._healthy_since
        if self.level == 0:
            if calm >= cfg.healthy_window_s:
                self._probe_wait_s = cfg.healthy_window_s
            return None
        if calm < self._probe_wait_s:
            return None
        decision = self._step(
            now_s, "recover", self.level - 1, "healthy", calm, self._probe_wait_s
        )
        self._probing = True
        self._healthy_since = now_s
        return decision

    def _stress_signal(
        self,
        queue_depth: int,
        queue_capacity: int,
        drop_rate: float,
        egress_kbps: float,
        flush_wait_ms: float,
    ) -> Optional[tuple[str, float, float]]:
        cfg = self.config
        ratio = queue_depth / queue_capacity if queue_capacity > 0 else 0.0
        if ratio >= cfg.queue_high_ratio:
            return ("queue_depth", ratio, cfg.queue_high_ratio)
        if cfg.drop_rate_per_s > 0 and drop_rate >= cfg.drop_rate_per_s:
            return ("drop_rate", drop_rate, cfg.drop_rate_per_s)
        if cfg.flush_wait_ms is not None and flush_wait_ms >= cfg.flush_wait_ms:
            return ("flush_wait", flush_wait_ms, cfg.flush_wait_ms)
        floors = self.policy.bandwidth_floors_kbps
        if floors and queue_depth > 0:
            # Data is waiting yet measured egress sits below the active
            # level's floor: the link cannot sustain this granularity.
            # (Without backlog a low egress just means a quiet stream.)
            floor = floors[self.level]
            if floor > 0 and egress_kbps < floor:
                return ("bandwidth", egress_kbps, floor)
        return None

    def _step(
        self,
        now_s: float,
        action: str,
        to_level: int,
        signal: str,
        value: float,
        threshold: float,
    ) -> DegradationDecision:
        decision = DegradationDecision(
            action=action,
            from_level=self.level,
            to_level=to_level,
            spec=self.policy.levels[to_level].filter_spec,
            signal=signal,
            value=value,
            threshold=threshold,
        )
        self.level = to_level
        self._last_step_s = now_s
        self.trajectory.append((action, to_level))
        return decision


# ----------------------------------------------------------------------
# Wire-profile serialization: the subscribe handshake carries the whole
# policy (so the server can drive it) and the cluster re-subscribe paths
# carry it *at the session's current level* (so degradation state
# survives worker respawn, migration and standby adoption).


def policy_to_profile(
    policy: DegradationPolicy,
    *,
    level: int = 0,
    config: Optional[DegradationConfig] = None,
) -> dict:
    """Portable JSON shape of a policy (+ current level and thresholds)."""
    profile: dict = {
        "levels": [
            {
                "spec": spec.filter_spec,
                "latency_tolerance_ms": spec.latency_tolerance_ms,
                "priority": spec.priority,
            }
            for spec in policy.levels
        ],
    }
    if policy.bandwidth_floors_kbps:
        profile["bandwidth_floors_kbps"] = list(policy.bandwidth_floors_kbps)
    if level:
        profile["level"] = level
    if config is not None:
        profile["config"] = {
            "queue_high_ratio": config.queue_high_ratio,
            "drop_rate_per_s": config.drop_rate_per_s,
            # Carried even when None: omitting it would silently
            # re-enable the signal at the default threshold after a
            # respawn/migration round trip.
            "flush_wait_ms": config.flush_wait_ms,
            "interval_s": config.interval_s,
            "cooldown_s": config.cooldown_s,
            "healthy_window_s": config.healthy_window_s,
            "probe_backoff": config.probe_backoff,
            "max_probe_wait_s": config.max_probe_wait_s,
        }
    return profile


def policy_from_profile(
    profile: Mapping, app_name: str
) -> tuple[DegradationPolicy, int, Optional[DegradationConfig]]:
    """Parse a wire profile back into ``(policy, level, config)``.

    Raises ``ValueError`` on malformed profiles — the transport maps
    that onto a subscribe error frame, mirroring spec validation.
    """
    raw_levels = profile.get("levels")
    if not isinstance(raw_levels, (list, tuple)) or not raw_levels:
        raise ValueError("degradation profile needs a non-empty 'levels' list")
    levels = []
    for entry in raw_levels:
        if isinstance(entry, str):
            entry = {"spec": entry}
        if not isinstance(entry, Mapping) or "spec" not in entry:
            raise ValueError(
                "each degradation level must be a spec string or a "
                "mapping with a 'spec' key"
            )
        tolerance = entry.get("latency_tolerance_ms")
        levels.append(
            QualitySpec(
                app_name=app_name,
                filter_spec=str(entry["spec"]),
                latency_tolerance_ms=(
                    float(tolerance) if tolerance is not None else None
                ),
                priority=int(entry.get("priority", 0)),
            )
        )
    floors = tuple(
        float(f) for f in profile.get("bandwidth_floors_kbps", ())
    )
    policy = DegradationPolicy(
        app_name=app_name,
        levels=tuple(levels),
        bandwidth_floors_kbps=floors,
    )
    level = int(profile.get("level", 0))
    if not 0 <= level < len(policy.levels):
        raise ValueError(
            f"degradation level {level} outside the policy's "
            f"{len(policy.levels)} levels"
        )
    raw_cfg = profile.get("config")
    config: Optional[DegradationConfig] = None
    if raw_cfg is not None:
        if not isinstance(raw_cfg, Mapping):
            raise ValueError("degradation 'config' must be a mapping")
        known = {
            "queue_high_ratio",
            "drop_rate_per_s",
            "flush_wait_ms",
            "interval_s",
            "cooldown_s",
            "healthy_window_s",
            "probe_backoff",
            "max_probe_wait_s",
        }
        unknown = set(raw_cfg) - known
        if unknown:
            raise ValueError(
                f"unknown degradation config keys: {sorted(unknown)}"
            )
        config = DegradationConfig(**{k: raw_cfg[k] for k in raw_cfg})
    return policy, level, config
