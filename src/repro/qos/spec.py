"""Data-quality specifications.

Section 2.1: "Data quality is normally measured as the accuracy,
granularity, timeliness, and completeness of the data."  Applications
declare their needs as a :class:`QualitySpec` - a filter specification
(granularity + slack, in the paper's textual notation) plus a latency
tolerance ("an application needs to choose a filter function and specify
its parameters, along with a latency-tolerance parameter", section
2.2.2).  Degradation policies (section 3.1's robot-tracking example:
"in times of severe network conditions ... it may be willing to degrade
requirements") are expressed as ordered fallback levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cuts import TimeConstraint
from repro.filters.base import GroupAwareFilter
from repro.filters.spec import parse_filter

__all__ = ["QualitySpec", "DegradationPolicy", "SessionLimits", "session_limits"]


@dataclass(frozen=True)
class QualitySpec:
    """One application's data-quality requirement.

    ``filter_spec`` uses the paper's notation (``DC1(attr, delta,
    slack)`` etc.); ``latency_tolerance_ms`` bounds the delay the
    filtering stage may add (None = best effort); ``priority`` orders
    conflicting requirements during negotiation (section 3.5.1's win-win
    integration).
    """

    app_name: str
    filter_spec: str
    latency_tolerance_ms: Optional[float] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.app_name:
            raise ValueError("app_name must be non-empty")
        if self.latency_tolerance_ms is not None and self.latency_tolerance_ms <= 0:
            raise ValueError("latency_tolerance_ms must be positive")
        parse_filter(self.filter_spec, name="validation")  # must parse

    def instantiate(self) -> GroupAwareFilter:
        """Build the filter named after the application."""
        return parse_filter(self.filter_spec, name=self.app_name)

    def group_time_constraint(self, *others: "QualitySpec") -> Optional[TimeConstraint]:
        """The group requirement: "a conjunction of the time requirements
        of all the filters in the group" (section 3.5.1) = the minimum."""
        tolerances = [
            spec.latency_tolerance_ms
            for spec in (self, *others)
            if spec.latency_tolerance_ms is not None
        ]
        if not tolerances:
            return None
        return TimeConstraint(min(tolerances))


@dataclass(frozen=True)
class SessionLimits:
    """Fully-resolved delivery bounds for one subscriber session.

    The live broker's per-session knobs (queue capacity, overflow policy
    and micro-batch bounds) resolved from a :class:`QualitySpec` against
    broker-wide defaults — the "Session QoS" wiring: an application's
    declared quality requirement, not a broker operator's global knob,
    shapes how its session queues and batches.
    """

    queue_capacity: int
    overflow: str
    batch_max_items: int
    batch_max_delay_ms: float


def session_limits(
    spec: QualitySpec,
    *,
    queue_capacity: int = 16,
    overflow: str = "block",
    batch_max_items: int = 8,
    batch_max_delay_ms: float = 50.0,
) -> SessionLimits:
    """Map one application's quality spec onto session delivery bounds.

    The keyword arguments are the broker-wide defaults, which remain the
    fallback for anything the spec does not constrain:

    * ``latency_tolerance_ms`` bounds the *total* delay the dissemination
      stage may add, so micro-batching may consume at most a quarter of
      it: ``batch_max_delay_ms = min(default, tolerance / 4)``.  A
      latency-bounded application also prefers fresh data with holes to
      a stalled source (the paper's timeliness-over-completeness stance),
      so its overflow policy becomes ``drop_oldest`` unless the broker
      default is already stricter (``disconnect`` stays).
    * ``priority`` scales the queue bound: each level above zero doubles
      the capacity (a negotiation winner may lag further before losing
      data), each level below zero halves it, floored at one batch.
      Priorities are clamped to ±10 doublings — profiles arrive over the
      wire, and an unclamped shift would let one subscriber demand an
      effectively unbounded queue and defeat the backpressure design.
    """
    priority = max(-10, min(10, spec.priority))
    if priority >= 0:
        capacity = queue_capacity << priority
    else:
        capacity = max(1, queue_capacity >> -priority)
    delay = batch_max_delay_ms
    policy = overflow
    if spec.latency_tolerance_ms is not None:
        delay = min(batch_max_delay_ms, spec.latency_tolerance_ms / 4.0)
        if policy == "block":
            policy = "drop_oldest"
    return SessionLimits(
        queue_capacity=capacity,
        overflow=policy,
        batch_max_items=batch_max_items,
        batch_max_delay_ms=delay,
    )


@dataclass(frozen=True)
class DegradationPolicy:
    """Ordered fallback quality levels for bandwidth adaptation.

    ``levels[0]`` is the preferred specification; later entries trade
    granularity for bandwidth (section 3.1's 1 s -> 5 s location-update
    example).  ``bandwidth_floor_kbps`` gives the trigger per level: use
    level *i* while available bandwidth stays above its floor.
    """

    app_name: str
    levels: tuple[QualitySpec, ...]
    bandwidth_floors_kbps: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a degradation policy needs at least one level")
        if any(level.app_name != self.app_name for level in self.levels):
            raise ValueError("every level must belong to the same application")
        if self.bandwidth_floors_kbps and len(self.bandwidth_floors_kbps) != len(
            self.levels
        ):
            raise ValueError("one bandwidth floor per level (or none)")
        floors = self.bandwidth_floors_kbps
        if floors and list(floors) != sorted(floors, reverse=True):
            raise ValueError("bandwidth floors must be non-increasing")

    def level_for_bandwidth(self, available_kbps: float) -> QualitySpec:
        """The best quality level the available bandwidth supports."""
        if not self.bandwidth_floors_kbps:
            return self.levels[0]
        for spec, floor in zip(self.levels, self.bandwidth_floors_kbps):
            if available_kbps >= floor:
                return spec
        return self.levels[-1]
