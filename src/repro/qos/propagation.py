"""Quality-requirement propagation through the operator graph.

Figure 2.2: "Data quality specifications propagates from applications to
the sources"; Figure 3.1 shows the propagated *group* requirement
arriving at the shared operator, where a group-aware filter serves all
downstream operators.  "Each operator knows about the data-quality
requirements of all its downstream operators" (section 3.1).

:func:`propagate` walks a work-flow graph from the applications back to
the sources, accumulating at every node the set of quality specs it must
serve.  Nodes serving more than one downstream requirement are the
*data-sharing junctures* where group-aware filters are deployed
(section 1.1: "we consider any data-sharing junctures in a
stream-processing work flow 'data sources'").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qos.spec import QualitySpec
from repro.workflow.graph import WorkflowGraph

__all__ = ["PropagatedRequirements", "propagate"]


@dataclass
class PropagatedRequirements:
    """Quality specs accumulated at each work-flow node."""

    #: node name -> specs of every application reachable downstream
    at_node: dict[str, list[QualitySpec]] = field(default_factory=dict)

    def specs_at(self, node: str) -> list[QualitySpec]:
        return list(self.at_node.get(node, ()))

    def group_junctures(self) -> list[str]:
        """Nodes serving two or more applications - where group-aware
        filtering applies."""
        return sorted(
            node for node, specs in self.at_node.items() if len(specs) >= 2
        )


def propagate(
    graph: WorkflowGraph, specs: dict[str, QualitySpec]
) -> PropagatedRequirements:
    """Push application specs source-ward along reverse edges.

    ``specs`` maps application node names to their requirements; every
    application in the graph must have one.  Returns the accumulated
    requirements at every node (applications excluded).
    """
    missing = [app for app in graph.applications() if app not in specs]
    if missing:
        raise ValueError(f"applications without quality specs: {missing}")
    unknown = [name for name in specs if name not in graph.applications()]
    if unknown:
        raise ValueError(f"specs for unknown applications: {unknown}")

    result = PropagatedRequirements()
    # Walk nodes in reverse topological order so each node sees its
    # downstream nodes' accumulated specs.
    for node in reversed(graph.topological_order()):
        if node in graph.applications():
            continue
        gathered: dict[str, QualitySpec] = {}
        for downstream in graph.downstream(node):
            if downstream in specs:
                gathered[specs[downstream].app_name] = specs[downstream]
            else:
                for spec in result.at_node.get(downstream, ()):
                    gathered[spec.app_name] = spec
        result.at_node[node] = sorted(
            gathered.values(), key=lambda spec: spec.app_name
        )
    return result
