"""Quality specification management and propagation
(Figures 2.2, 3.1 and 4.1; sections 3.1 and 3.5.1)."""

from repro.qos.propagation import PropagatedRequirements, propagate
from repro.qos.spec import (
    DegradationPolicy,
    QualitySpec,
    SessionLimits,
    session_limits,
)

__all__ = [
    "DegradationPolicy",
    "PropagatedRequirements",
    "QualitySpec",
    "SessionLimits",
    "propagate",
    "session_limits",
]
