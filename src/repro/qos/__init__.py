"""Quality specification management and propagation
(Figures 2.2, 3.1 and 4.1; sections 3.1 and 3.5.1)."""

from repro.qos.controller import (
    DegradationConfig,
    DegradationController,
    DegradationDecision,
    policy_from_profile,
    policy_to_profile,
)
from repro.qos.propagation import PropagatedRequirements, propagate
from repro.qos.spec import (
    DegradationPolicy,
    QualitySpec,
    SessionLimits,
    session_limits,
)

__all__ = [
    "DegradationConfig",
    "DegradationController",
    "DegradationDecision",
    "DegradationPolicy",
    "PropagatedRequirements",
    "QualitySpec",
    "SessionLimits",
    "policy_from_profile",
    "policy_to_profile",
    "propagate",
    "session_limits",
]
