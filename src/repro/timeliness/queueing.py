"""Input-buffer queueing model.

"The bottom-line requirement for group-aware filtering is that its
processing rate, compared with incoming data rate, should be fast enough
not to cause congestion in the input queue" (section 3.2).  This module
computes the FIFO single-server queueing delay each tuple would suffer
given measured per-tuple service times, so experiments can check the
no-congestion requirement and study what happens when group size pushes
service time past the arrival interval (section 4.8).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["input_buffer_delays"]


def input_buffer_delays(
    arrival_ts_ms: Sequence[float],
    service_ms: Sequence[float],
) -> list[float]:
    """Per-tuple waiting time in the filter's input buffer.

    ``arrival_ts_ms`` are tuple arrival times; ``service_ms`` the time
    the filter spends on each.  Standard Lindley recursion: tuple *i*
    starts at ``max(arrival_i, finish_{i-1})``.
    """
    if len(arrival_ts_ms) != len(service_ms):
        raise ValueError("arrival and service sequences must align")
    delays: list[float] = []
    previous_finish = float("-inf")
    for arrival, service in zip(arrival_ts_ms, service_ms):
        if service < 0:
            raise ValueError("service times must be non-negative")
        start = max(arrival, previous_finish)
        delays.append(start - arrival)
        previous_finish = start + service
    return delays
