"""Delay decomposition for group-aware filtering (section 3.2).

``D = D_input_buffer + D_filter + D_output_buffer + D_multicast``
(Figure 3.2).  In the simulated system:

* ``D_filter`` is the wait from a tuple's arrival until its candidate
  set (PS) or region (RG) is decided - the dominant, batching-induced
  term the paper's Figures 4.6-4.8 measure;
* ``D_output_buffer`` is the extra wait the output strategy imposes
  between decision and emission;
* ``D_multicast`` is the application-level multicast cost, dominated by
  the software invocation overhead ("about 130 ms" on the Emulab
  overlay, section 4.1.2) rather than transmission;
* ``D_input_buffer`` appears when the processing rate cannot keep up
  with the arrival rate (see :mod:`repro.timeliness.queueing`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineResult

__all__ = ["DelayBreakdown", "decompose_delays"]


@dataclass(frozen=True)
class DelayBreakdown:
    """Average per-tuple delay contributions, in milliseconds."""

    input_buffer_ms: float
    filter_ms: float
    output_buffer_ms: float
    multicast_ms: float

    @property
    def total_ms(self) -> float:
        return (
            self.input_buffer_ms
            + self.filter_ms
            + self.output_buffer_ms
            + self.multicast_ms
        )


def decompose_delays(
    result: EngineResult,
    multicast_overhead_ms: float = 0.0,
    input_buffer_ms: float = 0.0,
) -> DelayBreakdown:
    """Split an engine run's mean latency into the section-3.2 terms.

    ``filter`` covers arrival to decision; ``output buffer`` covers
    decision to emission (zero for the earliest-possible strategies,
    large for batched output).
    """
    if not result.emissions:
        return DelayBreakdown(input_buffer_ms, 0.0, 0.0, multicast_overhead_ms)
    filter_delays = [e.decide_ts - e.item.timestamp for e in result.emissions]
    output_delays = [e.emit_ts - e.decide_ts for e in result.emissions]
    n = len(result.emissions)
    return DelayBreakdown(
        input_buffer_ms=input_buffer_ms,
        filter_ms=sum(filter_delays) / n,
        output_buffer_ms=sum(output_delays) / n,
        multicast_ms=multicast_overhead_ms,
    )
