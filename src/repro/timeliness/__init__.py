"""Data-timeliness models (Chapter 3).

Re-exports the cut machinery from :mod:`repro.core.cuts` and adds the
delay decomposition of section 3.2 and the input-buffer queueing model.
"""

from repro.core.cuts import RuntimePredictor, TimeConstraint
from repro.timeliness.model import DelayBreakdown, decompose_delays
from repro.timeliness.queueing import input_buffer_delays

__all__ = [
    "DelayBreakdown",
    "RuntimePredictor",
    "TimeConstraint",
    "decompose_delays",
    "input_buffer_delays",
]
