"""Adaptive control extensions (the paper's sections 4.8 and 6.2).

Selectivity monitoring, filter (re)grouping strategies and dynamic
enabling/disabling of group-awareness - the future-work directions the
dissertation sketches for production deployments.
"""

from repro.adaptive.controller import AdaptiveController, AdaptiveOutcome, WindowOutcome
from repro.adaptive.regroup import (
    cap_group_size,
    isolate_greedy_filters,
    partition_by_attribute,
)
from repro.adaptive.selectivity import SelectivityMonitor, selectivity_from_result

__all__ = [
    "AdaptiveController",
    "AdaptiveOutcome",
    "SelectivityMonitor",
    "WindowOutcome",
    "cap_group_size",
    "isolate_greedy_filters",
    "partition_by_attribute",
    "selectivity_from_result",
]
