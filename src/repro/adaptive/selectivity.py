"""Online selectivity monitoring.

Section 4.8: "when a group has a filter that requires most of the data
from the source, group-aware filtering will not save much bandwidth ...
It is desirable to isolate those 'bad' filters from the rest ... It is
thus important to monitor the selectivity of each filter."

:class:`SelectivityMonitor` tracks, per filter, the fraction of input
tuples selected over a sliding window of recent inputs, from the
engine's decision log.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.engine import EngineResult

__all__ = ["SelectivityMonitor", "selectivity_from_result"]


class SelectivityMonitor:
    """Sliding-window output/input fraction per filter."""

    def __init__(self, filter_names: Iterable[str], window: int = 500):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._selected: dict[str, deque[bool]] = {
            name: deque(maxlen=window) for name in filter_names
        }
        if not self._selected:
            raise ValueError("monitor needs at least one filter")

    def observe(self, selected_by: set[str]) -> None:
        """Record one input tuple and the filters that selected it."""
        for name, history in self._selected.items():
            history.append(name in selected_by)

    def selectivity(self, name: str) -> float:
        history = self._selected[name]
        if not history:
            return 0.0
        return sum(history) / len(history)

    def greedy_filters(self, threshold: float = 0.8) -> list[str]:
        """Filters selecting more than ``threshold`` of the input - the
        'bad' filters section 4.8 suggests isolating."""
        return sorted(
            name
            for name in self._selected
            if self.selectivity(name) > threshold
        )

    def observations(self, name: str) -> int:
        return len(self._selected[name])


def selectivity_from_result(result: EngineResult) -> dict[str, float]:
    """Per-filter selectivity of a finished engine run."""
    if result.input_count == 0:
        return {name: 0.0 for name in result.decisions}
    return {
        name: len(result.outputs_for(name)) / result.input_count
        for name in result.decisions
    }
