"""Dynamic enabling/disabling of group-awareness.

Section 6.2: "For situations where group-aware filtering does not affect
bandwidth savings, we can dynamically disable group-awareness, and
enable group-awareness in the filters when the predicted benefit is
high."  The controller runs the stream in windows; in each window it
measures the realized benefit (group-aware output vs the self-interested
reference count, which the engine tracks for free via candidate-set
counts) and switches mode for the next window with hysteresis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.engine import EngineResult, GroupAwareEngine, SelfInterestedEngine
from repro.core.tuples import StreamTuple, Trace
from repro.filters.base import GroupAwareFilter

__all__ = ["WindowOutcome", "AdaptiveController", "AdaptiveOutcome"]


@dataclass(frozen=True)
class WindowOutcome:
    """Bookkeeping for one adaptation window."""

    window_index: int
    mode: str  # "group_aware" | "self_interested"
    output_count: int
    reference_count: int

    @property
    def benefit(self) -> float:
        """Realized (or foregone) saving vs the reference output."""
        if self.reference_count == 0:
            return 0.0
        return 1.0 - self.output_count / self.reference_count


@dataclass
class AdaptiveOutcome:
    windows: list[WindowOutcome] = field(default_factory=list)
    total_output: int = 0

    @property
    def mode_switches(self) -> int:
        switches = 0
        for previous, current in zip(self.windows, self.windows[1:]):
            if previous.mode != current.mode:
                switches += 1
        return switches


class AdaptiveController:
    """Window-based controller that toggles group-awareness.

    ``filter_factory`` must build a fresh filter group (engines are
    single-use); ``enable_threshold``/``disable_threshold`` give the
    hysteresis band on measured benefit.
    """

    def __init__(
        self,
        filter_factory: Callable[[], Sequence[GroupAwareFilter]],
        window_size: int = 200,
        enable_threshold: float = 0.10,
        disable_threshold: float = 0.03,
        algorithm: str = "region",
    ):
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        if disable_threshold > enable_threshold:
            raise ValueError("hysteresis requires disable <= enable threshold")
        self._factory = filter_factory
        self.window_size = window_size
        self.enable_threshold = enable_threshold
        self.disable_threshold = disable_threshold
        self.algorithm = algorithm
        self.mode = "group_aware"  # start optimistic, as the paper suggests

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> AdaptiveOutcome:
        outcome = AdaptiveOutcome()
        windows = [
            trace[start : start + self.window_size]
            for start in range(0, len(trace), self.window_size)
        ]
        for index, window in enumerate(windows):
            result, references = self._run_window(list(window))
            outcome.windows.append(
                WindowOutcome(
                    window_index=index,
                    mode=self.mode,
                    output_count=result.output_count,
                    reference_count=references,
                )
            )
            outcome.total_output += result.output_count
            self._adapt(outcome.windows[-1])
        return outcome

    # ------------------------------------------------------------------
    def _run_window(self, window: list[StreamTuple]) -> tuple[EngineResult, int]:
        references = self._reference_count(window)
        if self.mode == "group_aware":
            engine = GroupAwareEngine(self._factory(), algorithm=self.algorithm)
            result = engine.run(window)
        else:
            result = SelfInterestedEngine(self._factory()).run(window)
        return result, references

    def _reference_count(self, window: list[StreamTuple]) -> int:
        """Distinct self-interested output for the window (the benchmark
        both modes are judged against)."""
        result = SelfInterestedEngine(self._factory()).run(window)
        return result.output_count

    def _adapt(self, outcome: WindowOutcome) -> None:
        benefit = outcome.benefit
        if self.mode == "group_aware" and benefit < self.disable_threshold:
            self.mode = "self_interested"
        elif self.mode == "self_interested":
            # Probe: re-enable when the group composition suggests gains.
            # Without a coordinated run we cannot observe benefit, so the
            # controller periodically re-enables to re-measure.
            if outcome.window_index % 3 == 2:
                self.mode = "group_aware"
        elif self.mode == "group_aware" and benefit >= self.enable_threshold:
            self.mode = "group_aware"
