"""Filter (re)grouping strategies.

Section 4.8: "Another way to alleviate the congestion-causing effect of
group-aware filtering is to reduce the group size.  Large groups increase
CPU overhead and, in some cases, may violate the latency constraints ...
We thus need to develop strategies for (re)grouping the filters."

Two strategies are provided:

* :func:`isolate_greedy_filters` - split out filters whose selectivity
  is so high that coordination cannot help (they need nearly all data
  anyway);
* :func:`partition_by_attribute` - group filters that read overlapping
  attribute sets, since candidate-set overlap requires shared inputs;
* :func:`cap_group_size` - bound group size to bound coordination cost
  (the CPU-per-batch growth of Figure 4.18).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.filters.base import GroupAwareFilter

__all__ = ["isolate_greedy_filters", "partition_by_attribute", "cap_group_size"]


def isolate_greedy_filters(
    filters: Sequence[GroupAwareFilter],
    selectivity: Mapping[str, float],
    threshold: float = 0.8,
) -> tuple[list[GroupAwareFilter], list[GroupAwareFilter]]:
    """Split into (coordinated, self-interested) by selectivity.

    Filters above ``threshold`` go to the self-interested side: their
    output dominates the union regardless of coordination, so spending
    CPU on them is wasted (section 4.8's "bad" filters).
    """
    coordinated: list[GroupAwareFilter] = []
    isolated: list[GroupAwareFilter] = []
    for flt in filters:
        if selectivity.get(flt.name, 0.0) > threshold:
            isolated.append(flt)
        else:
            coordinated.append(flt)
    return coordinated, isolated


def partition_by_attribute(
    filters: Sequence[GroupAwareFilter],
) -> list[list[GroupAwareFilter]]:
    """Partition into groups whose attribute sets transitively overlap.

    Filters reading disjoint attributes can never share candidate sets,
    so splitting them reduces region sizes (and hence latency and CPU)
    at zero bandwidth cost.
    """
    remaining = list(filters)
    groups: list[list[GroupAwareFilter]] = []
    while remaining:
        seed = remaining.pop(0)
        group = [seed]
        attributes = set(seed.taxonomy.candidate_computation.attributes)
        changed = True
        while changed:
            changed = False
            for flt in list(remaining):
                flt_attributes = set(flt.taxonomy.candidate_computation.attributes)
                if flt_attributes & attributes:
                    group.append(flt)
                    remaining.remove(flt)
                    attributes |= flt_attributes
                    changed = True
        groups.append(group)
    return groups


def cap_group_size(
    filters: Sequence[GroupAwareFilter], max_size: int
) -> list[list[GroupAwareFilter]]:
    """Chunk a group to at most ``max_size`` filters each.

    A blunt instrument for bounding coordination cost; attribute-aware
    partitioning should run first so related filters stay together.
    """
    if max_size < 1:
        raise ValueError("max_size must be at least 1")
    return [
        list(filters[start : start + max_size])
        for start in range(0, len(filters), max_size)
    ]
