"""Region-based segmentation of the candidate-set stream.

Definitions 2-5 of the paper: candidate sets whose time covers intersect
are *connected*; connectivity is transitive; a *region* is a maximal
family of mutually connected candidate sets.  Axiom 2 shows regions'
time covers do not intersect, and Theorems 2-3 show that solving the
hitting-set problem per region preserves both optimality and the
approximation ratio of heuristics.

:class:`RegionTracker` detects region closure online.  A region is ready
to be solved once every candidate set in its connected component is
closed and no still-open candidate set can join the component.  Because
tuples arrive in strict timestamp order, an open set can only extend to
*later* timestamps, so a component whose sets are all closed and whose
cover ends before the earliest open set's cover is final.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.candidates import CandidateSet, TimeCover, TupleInterner

__all__ = ["Region", "RegionTracker"]

_region_ids = itertools.count()


@dataclass
class Region:
    """A maximal family of connected candidate sets (Definition 4)."""

    sets: list[CandidateSet]
    cut: bool = False
    region_id: int = field(default_factory=lambda: next(_region_ids))

    @property
    def time_cover(self) -> TimeCover:
        """Union of the member sets' time covers (Definition 5)."""
        covers = [s.time_cover for s in self.sets if s.time_cover is not None]
        if not covers:
            raise ValueError("region has no tuples")
        cover = covers[0]
        for other in covers[1:]:
            cover = cover.union(other)
        return cover

    @property
    def tuple_seqs(self) -> set[int]:
        seqs: set[int] = set()
        for candidate_set in self.sets:
            seqs.update(candidate_set.seqs)
        return seqs

    @property
    def size(self) -> int:
        """Number of distinct tuples covered by the region."""
        return len(self.tuple_seqs)

    def __len__(self) -> int:
        return len(self.sets)


class RegionTracker:
    """Online detection of closed regions.

    Candidate sets register as soon as they hold at least one tuple, are
    updated in place by their filters, and are marked closed by the
    engine.  :meth:`poll` sweeps the active sets (sorted by cover start)
    into connected components and returns every component that is final.
    """

    def __init__(self) -> None:
        self._active: dict[int, CandidateSet] = {}
        self.regions_emitted = 0
        self.regions_cut = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def watch(self, candidate_set: CandidateSet) -> None:
        self._active[candidate_set.set_id] = candidate_set

    def discard(self, candidate_set: CandidateSet) -> None:
        self._active.pop(candidate_set.set_id, None)

    # ------------------------------------------------------------------
    # Queries used by the cut machinery
    # ------------------------------------------------------------------
    def active_sets(self) -> list[CandidateSet]:
        return [s for s in self._active.values() if len(s) > 0]

    def active_span(self, now: float) -> float:
        """Elapsed time since the oldest un-emitted tuple arrived.

        This is the ``getRegionSpan`` used by the timely-cut test
        (Figure 3.3, line 8).
        """
        oldest: Optional[float] = None
        for candidate_set in self._active.values():
            cover = candidate_set.time_cover
            if cover is not None and (oldest is None or cover.min_ts < oldest):
                oldest = cover.min_ts
        if oldest is None:
            return 0.0
        return now - oldest

    def active_tuple_count(self, interner: Optional[TupleInterner] = None) -> int:
        """Distinct tuples across the active sets.

        With an ``interner`` the count is one OR/popcount over the sets'
        cached membership bitsets (see ``CandidateSet.member_mask``) —
        the timely-cut test calls this on *every* arrival, so the
        set-union fallback's per-call allocation is the difference
        between O(live tuples) and O(active sets) on the hot path.
        """
        if interner is not None:
            mask = 0
            for candidate_set in self._active.values():
                mask |= candidate_set.member_mask(interner)
            return mask.bit_count()
        seqs: set[int] = set()
        for candidate_set in self._active.values():
            seqs.update(candidate_set.seqs)
        return len(seqs)

    def has_open_sets(self) -> bool:
        return any(not s.closed for s in self._active.values() if len(s) > 0)

    def contains_tuple(self, seq: int) -> bool:
        """Is ``seq`` still a member of any active set?

        The engine uses this to recycle a dismissed tuple's interner bit
        the moment no live set references it (region closure handles the
        common case; this handles tuples dismissed before ever reaching
        a closed region)."""
        return any(s.contains_seq(seq) for s in self._active.values())

    # ------------------------------------------------------------------
    # Region closure
    # ------------------------------------------------------------------
    def poll(self, now: float, final: bool = False, cut: bool = False) -> list[Region]:
        """Return every region that is now final, removing its sets.

        ``final`` forces all components out (end-of-stream flush); the
        caller must have closed every open set first.  ``cut`` marks the
        returned regions as produced by a timely cut, for the
        percent-of-regions-cut metric (Figure 4.11).
        """
        # This sweep runs on *every* arrival and tick.  Covers are read
        # once per set (they are cached on the set, but the property call
        # itself shows up at this call rate), and when no populated set
        # is closed there is nothing to emit — skip the sort and the
        # component build entirely, which is the common case between
        # set closures.
        populated: list[tuple[CandidateSet, TimeCover]] = []
        any_closed = False
        stale: Optional[list[CandidateSet]] = None
        for s in self._active.values():
            if len(s) > 0:
                populated.append((s, s.time_cover))  # type: ignore[arg-type]
                any_closed = any_closed or s.closed
            elif s.closed:
                # Empty closed sets (all tuples dismissed) carry no
                # information; purge them on every exit path so they
                # never linger in the per-arrival scans.
                if stale is None:
                    stale = []
                stale.append(s)
        if stale:
            for s in stale:
                self.discard(s)
        if not populated:
            return []
        if not any_closed:
            return []
        populated.sort(key=lambda pair: pair[1].min_ts)

        components: list[list[tuple[CandidateSet, TimeCover]]] = []
        current = [populated[0]]
        current_max = populated[0][1].max_ts
        for pair in populated[1:]:
            cover = pair[1]
            if cover.min_ts <= current_max:
                current.append(pair)
                if cover.max_ts > current_max:
                    current_max = cover.max_ts
            else:
                components.append(current)
                current = [pair]
                current_max = cover.max_ts
        components.append(current)

        closed_regions: list[Region] = []
        for component in components:
            if not all(s.closed for s, _ in component):
                continue
            component_max = max(cover.max_ts for _, cover in component)
            if not final and component_max >= now:
                # A tuple arriving right now could still connect; wait.
                continue
            sets = [s for s, _ in component]
            region = Region(sets=sets, cut=cut or any(s.cut for s in sets))
            closed_regions.append(region)
            for candidate_set in sets:
                self.discard(candidate_set)

        self.regions_emitted += len(closed_regions)
        self.regions_cut += sum(1 for region in closed_regions if region.cut)
        return closed_regions

    @staticmethod
    def partition(sets: Iterable[CandidateSet]) -> list[list[CandidateSet]]:
        """Offline partition of candidate sets into regions (for tests).

        Implements Definitions 2-4 directly over a finished collection.
        """
        populated = sorted(
            (s for s in sets if len(s) > 0),
            key=lambda s: s.time_cover.min_ts,  # type: ignore[union-attr]
        )
        if not populated:
            return []
        components: list[list[CandidateSet]] = [[populated[0]]]
        current_max = populated[0].time_cover.max_ts  # type: ignore[union-attr]
        for candidate_set in populated[1:]:
            cover = candidate_set.time_cover
            assert cover is not None
            if cover.min_ts <= current_max:
                components[-1].append(candidate_set)
                current_max = max(current_max, cover.max_ts)
            else:
                components.append([candidate_set])
                current_max = cover.max_ts
        return components
