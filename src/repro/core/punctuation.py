"""Stream punctuations and downstream reordering.

Section 3.4: the per-candidate-set output pattern "may cause disorder in
the output for the candidate sets in a region.  Such data disorder can be
communicated to the downstream operators via stream 'punctuations',
control information mixed in the output stream."

:class:`PunctuatedStream` wraps an emission sequence, inserting a
:class:`Punctuation` whenever a region closes - the promise that no
further tuple with an earlier timestamp will ever appear.  Downstream,
an :class:`OrderingBuffer` uses those promises to release tuples in
timestamp order with the minimum possible extra delay, and
:func:`measure_disorder` quantifies how out-of-order a stream was
(the "quantifying the data disorder" future work of section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union

from repro.core.output import Emission

__all__ = [
    "Punctuation",
    "PunctuatedStream",
    "OrderingBuffer",
    "measure_disorder",
]


@dataclass(frozen=True)
class Punctuation:
    """A promise: every future tuple has ``timestamp > low_watermark``."""

    low_watermark: float
    emit_ts: float


StreamElement = Union[Emission, Punctuation]


class PunctuatedStream:
    """Interleaves punctuations into an emission stream at region closes."""

    def __init__(self) -> None:
        self._elements: list[StreamElement] = []

    def emit(self, emission: Emission) -> None:
        self._elements.append(emission)

    def punctuate(self, low_watermark: float, now: float) -> None:
        self._elements.append(Punctuation(low_watermark=low_watermark, emit_ts=now))

    @property
    def elements(self) -> list[StreamElement]:
        return list(self._elements)

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)


class OrderingBuffer:
    """Downstream reorder buffer driven by punctuations.

    Buffers emissions until a punctuation guarantees no earlier tuple can
    still arrive, then releases everything at or below the watermark in
    timestamp order.  ``flush`` releases the remainder at end of stream.
    """

    def __init__(self) -> None:
        self._pending: list[Emission] = []
        self.released: list[Emission] = []

    def offer(self, element: StreamElement) -> list[Emission]:
        if isinstance(element, Punctuation):
            return self._release(element.low_watermark)
        self._pending.append(element)
        return []

    def _release(self, watermark: float) -> list[Emission]:
        ready = [e for e in self._pending if e.item.timestamp <= watermark]
        self._pending = [e for e in self._pending if e.item.timestamp > watermark]
        ready.sort(key=lambda e: (e.item.timestamp, e.item.seq))
        self.released.extend(ready)
        return ready

    def flush(self) -> list[Emission]:
        remainder = sorted(
            self._pending, key=lambda e: (e.item.timestamp, e.item.seq)
        )
        self._pending = []
        self.released.extend(remainder)
        return remainder

    def assert_ordered(self) -> None:
        timestamps = [e.item.timestamp for e in self.released]
        if timestamps != sorted(timestamps):
            raise AssertionError("ordering buffer released tuples out of order")


def measure_disorder(emissions: Iterable[Emission]) -> int:
    """Count inversions in emission order relative to tuple timestamps.

    Zero means perfectly ordered; each unit is a pair of emissions whose
    wire order contradicts their source order.  Quadratic, intended for
    analysis and tests.
    """
    sequence = [e.item.timestamp for e in emissions]
    inversions = 0
    for i in range(len(sequence)):
        for j in range(i + 1, len(sequence)):
            if sequence[i] > sequence[j]:
                inversions += 1
    return inversions
