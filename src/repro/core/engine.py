"""Group-aware filtering engines.

This module implements the paper's two-stage process (Figure 2.4): each
filter *admits candidates* online, and an *output decider* selects one
(or ``degree`` many) tuples per candidate set so that the multiplexed
output is small.  Two deciders are provided, matching the paper's two
heuristics-based algorithms:

* ``algorithm="region"`` - REGION-BASED-GREEDY-FILTERING (Figure 2.6):
  wait for a region of connected candidate sets to close, then run the
  greedy hitting-set over the region;
* ``algorithm="per_candidate_set"`` - PER-CANDIDATE-SET-GREEDY-FILTERING
  (Figure 2.10): each filter decides as soon as its candidate set closes,
  preferring tuples already chosen by other filters, then tuples of
  highest group utility.  Stateful filters always decide this way, even
  under the region algorithm (section 2.3.3).

Passing a :class:`~repro.core.cuts.TimeConstraint` enables *timely cuts*
(Figure 3.3): open candidate sets are force-closed when the accumulated
span plus the predicted greedy run time would violate the constraint.

:class:`SelfInterestedEngine` is the paper's baseline: every filter picks
its reference tuples with no group coordination.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Sequence, runtime_checkable

from repro.core.accumulators import BoundedSamples
from repro.core.candidates import CandidateSet, TupleInterner
from repro.core.cuts import RuntimePredictor, TimeConstraint
from repro.core.hitting_set import greedy_hitting_set
from repro.core.output import (
    Decision,
    Emission,
    OutputStrategy,
    RegionOutput,
    merge_decisions,
)
from repro.core.regions import RegionTracker
from repro.core.state import DecidedOutputs, GroupUtility
from repro.core.tuples import StreamTuple

__all__ = [
    "GroupFilterProtocol",
    "SelfInterestedFilterProtocol",
    "FilterContext",
    "EngineResult",
    "GroupAwareEngine",
    "SelfInterestedEngine",
]


@runtime_checkable
class GroupFilterProtocol(Protocol):
    """What the engine requires of a group-aware filter (section 2.2.2)."""

    name: str
    stateful: bool

    def process(self, item: StreamTuple, ctx: "FilterContext") -> None:
        """Admit/dismiss candidates for ``item``; close sets as needed."""

    def flush(self, ctx: "FilterContext") -> None:
        """End of stream: close any open candidate set."""

    def on_force_close(self, ctx: "FilterContext") -> None:
        """A timely cut demands the open candidate set be closed now."""

    def on_output_decided(self, chosen: Sequence[StreamTuple]) -> None:
        """The decider chose ``chosen`` for this filter's last closed set."""

    def make_self_interested(self) -> "SelfInterestedFilterProtocol":
        """A fresh, uncoordinated instance for the SI baseline."""


class SelfInterestedFilterProtocol(Protocol):
    """Baseline filter: emits its own preferred outputs immediately."""

    name: str

    def process(self, item: StreamTuple) -> list[StreamTuple]: ...

    def flush(self) -> list[StreamTuple]: ...


class FilterContext:
    """Per-filter view of the shared global state (Figure 4.1).

    Filters never touch the group state directly; they admit, dismiss and
    close through this context, which keeps group utilities, the region
    tracker and the decided-output log consistent.
    """

    def __init__(self, engine: "GroupAwareEngine", flt: GroupFilterProtocol):
        self._engine = engine
        self.filter = flt
        self._current: Optional[CandidateSet] = None
        self.last_decided: tuple[StreamTuple, ...] = ()
        #: Snapshot of the filter's taxonomy statefulness.  The property
        #: on filter classes derives it from a freshly built taxonomy
        #: object; reading it per set closure is measurable, and a
        #: filter's dependency class cannot change mid-run.
        self.stateful = bool(flt.stateful)

    # ------------------------------------------------------------------
    @property
    def current_set(self) -> Optional[CandidateSet]:
        return self._current

    @property
    def now(self) -> float:
        return self._engine.now

    def admit(self, item: StreamTuple) -> None:
        """First stage: add ``item`` to the filter's current candidate set."""
        current = self._current
        if current is None or current.closed:
            current = self._current = CandidateSet(self.filter.name)
            self._engine._tracker.watch(current)
        if current.add(item):
            self._engine._utility.increment(item)

    def dismiss(self, item: StreamTuple) -> None:
        """Retract a tentatively admitted candidate (section 2.3.3)."""
        if self._current is None or item not in self._current:
            return
        self._current.remove(item)
        self._engine._utility.decrement(item)
        self._engine._release_orphaned_bit(item.seq)

    def mark_reference(self, item: StreamTuple) -> None:
        """Record the reference tuple of the current candidate set."""
        if self._current is None or item not in self._current:
            raise ValueError("reference tuple must be an admitted candidate")
        self._current.reference = item

    def set_degree(self, degree: int) -> None:
        """Multi-degree candidacy (Chapter 5): pick ``degree`` tuples."""
        if self._current is None:
            raise ValueError("no open candidate set")
        if degree < 1:
            raise ValueError("degree must be at least 1")
        self._current.degree = degree

    def restrict_eligible(self, members: Iterable[StreamTuple]) -> None:
        """Apply a top/bottom output prescription to the current set."""
        if self._current is None:
            raise ValueError("no open candidate set")
        self._current.restrict_eligible(members)

    def close_set(self, cut: bool = False) -> None:
        """Second stage trigger: the current candidate set is complete."""
        if self._current is None:
            return
        if len(self._current) == 0:
            # Nothing was admitted; recycle the set silently.
            self._engine._tracker.discard(self._current)
            self._current = None
            return
        self._current.close(cut=cut)
        self._engine._on_set_closed(self, self._current)
        self._current = None

    def has_open_candidates(self) -> bool:
        return self._current is not None and not self._current.closed and len(self._current) > 0


@dataclass
class EngineResult:
    """Everything measured during one engine run."""

    input_count: int = 0
    emissions: list[Emission] = field(default_factory=list)
    decisions: dict[str, list[Decision]] = field(default_factory=dict)
    #: Per-tuple processing cost.  A bounded accumulator, not a list: on
    #: an infinite live stream the count/total stay exact (so every mean
    #: is exact) while the distribution is a fixed-size reservoir.
    cpu_ns_per_tuple: BoundedSamples = field(default_factory=BoundedSamples)
    greedy_runtimes_ms: list[float] = field(default_factory=list)
    regions_emitted: int = 0
    regions_cut: int = 0
    cuts_triggered: int = 0
    algorithm: str = ""

    # ------------------------------------------------------------------
    @property
    def distinct_output_seqs(self) -> set[int]:
        """Distinct tuples in the multiplexed output stream."""
        return {e.item.seq for e in self.emissions}

    @property
    def output_count(self) -> int:
        return len(self.distinct_output_seqs)

    @property
    def oi_ratio(self) -> float:
        """Output/input ratio: "total number of output tuples over the
        number of input tuples" (section 4.4)."""
        if self.input_count == 0:
            return 0.0
        return self.output_count / self.input_count

    @property
    def transmissions(self) -> int:
        """Emission events, counting re-sends of an already-sent tuple."""
        return len(self.emissions)

    def outputs_for(self, filter_name: str) -> list[StreamTuple]:
        """The tuples delivered to one application, in timestamp order."""
        items: dict[int, StreamTuple] = {}
        for decision in self.decisions.get(filter_name, []):
            for item in decision.tuples:
                items[item.seq] = item
        return sorted(items.values(), key=lambda t: t.timestamp)

    @property
    def total_cpu_ms(self) -> float:
        return self.cpu_ns_per_tuple.total / 1e6

    @property
    def mean_cpu_ms_per_tuple(self) -> float:
        if not self.cpu_ns_per_tuple:
            return 0.0
        return self.total_cpu_ms / len(self.cpu_ns_per_tuple)

    @property
    def latencies_ms(self) -> list[float]:
        """Per-emitted-tuple delay from source timestamp to emission."""
        return [e.delay_ms for e in self.emissions]

    @property
    def mean_latency_ms(self) -> float:
        delays = self.latencies_ms
        if not delays:
            return 0.0
        return sum(delays) / len(delays)

    @property
    def percent_regions_cut(self) -> float:
        if self.regions_emitted == 0:
            return 0.0
        return 100.0 * self.regions_cut / self.regions_emitted


class GroupAwareEngine:
    """Coordinator for a group of filters sharing one data source."""

    def __init__(
        self,
        filters: Sequence[GroupFilterProtocol],
        algorithm: str = "region",
        output_strategy: Optional[OutputStrategy] = None,
        time_constraint: Optional[TimeConstraint] = None,
        predictor: Optional[RuntimePredictor] = None,
    ):
        if algorithm not in ("region", "per_candidate_set"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        names = [f.name for f in filters]
        if len(set(names)) != len(names):
            raise ValueError(f"filter names must be unique, got {names}")
        if not filters:
            raise ValueError("a group needs at least one filter")

        self.algorithm = algorithm
        self._contexts = [FilterContext(self, f) for f in filters]
        self._strategy = output_strategy if output_strategy is not None else RegionOutput()
        self._constraint = time_constraint
        self._predictor = predictor if predictor is not None else RuntimePredictor()

        self._utility = GroupUtility()
        self._decided = DecidedOutputs()
        self._tracker = RegionTracker()
        self._interner = TupleInterner()
        self._early_decided_sets: set[int] = set()
        self.now = 0.0
        self._result = EngineResult(algorithm=algorithm)
        for name in names:
            self._result.decisions[name] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def filters(self) -> list[GroupFilterProtocol]:
        return [ctx.filter for ctx in self._contexts]

    @property
    def cuts_triggered(self) -> int:
        """Timely cuts fired so far (grows live; final in ``finish()``)."""
        return self._result.cuts_triggered

    def run(self, trace: Iterable[StreamTuple]) -> EngineResult:
        """Process a whole trace and return the measurements."""
        for item in trace:
            self.process(item)
        return self.finish()

    def process(self, item: StreamTuple) -> list[Emission]:
        """Process one input tuple; return any emissions it triggered."""
        if self._finished:
            raise RuntimeError("engine already finished")
        started = time.perf_counter_ns()
        self.now = item.timestamp
        self._result.input_count += 1
        emissions: list[Emission] = []

        for ctx in self._contexts:
            ctx.filter.process(item, ctx)

        if self._constraint is not None:
            emissions.extend(self._check_cut())

        emissions.extend(self._poll_regions())
        emissions.extend(self._strategy.on_input(self.now))

        self._result.cpu_ns_per_tuple.append(time.perf_counter_ns() - started)
        self._result.emissions.extend(emissions)
        return emissions

    def tick(self, now: float, *, cuts: bool = True) -> list[Emission]:
        """Timer-driven pass with no input tuple (live-service clock tick).

        Advances the engine clock to ``now`` (never backwards), applies the
        timely-cut test, and sweeps finished regions.  As long as ``now``
        does not exceed the timestamp of the next tuple that will arrive,
        a tick (with no time constraint) can only close regions that the
        next ``process`` call would have closed anyway, so decided outputs
        equal those of an untick-ed run; only emission timestamps may be
        earlier.  Ticking *past* the next arrival closes regions that a
        still-in-span tuple could have joined — valid live behaviour, but
        no longer batch-identical; callers that need equivalence must
        bound the tick clock (the load generator clamps its extrapolated
        stream clock to one inter-arrival interval past the last tuple
        the service has actually processed).

        With a time constraint that bounding is *not* sufficient: a tick
        landing strictly between two arrivals can fire a timely cut whose
        region excludes the next tuple, while a batch run (which tests
        cuts only on arrival) would have included it.  ``cuts=False``
        restricts the timely-cut test to arrivals, restoring determinism
        against a batch reference at the cost of slightly later cuts.
        """
        if self._finished:
            raise RuntimeError("engine already finished")
        if now > self.now:
            self.now = now
        emissions: list[Emission] = []
        if cuts and self._constraint is not None:
            emissions.extend(self._check_cut())
        emissions.extend(self._poll_regions())
        self._result.emissions.extend(emissions)
        return emissions

    def finish(self) -> EngineResult:
        """End of stream: flush all filters and release buffered output."""
        if self._finished:
            return self._result
        emissions: list[Emission] = []
        for ctx in self._contexts:
            ctx.filter.flush(ctx)
        emissions.extend(self._poll_regions(final=True))
        emissions.extend(self._strategy.flush(self.now))
        self._result.emissions.extend(emissions)
        self._result.regions_emitted = self._tracker.regions_emitted
        self._result.regions_cut = self._tracker.regions_cut
        self._finished = True
        return self._result

    # ------------------------------------------------------------------
    # Second stage: deciding outputs
    # ------------------------------------------------------------------
    def _on_set_closed(self, ctx: FilterContext, candidate_set: CandidateSet) -> None:
        decide_early = self.algorithm == "per_candidate_set" or ctx.stateful
        if decide_early:
            self._decide_per_candidate_set(ctx, candidate_set)

    def _decide_per_candidate_set(
        self, ctx: FilterContext, candidate_set: CandidateSet
    ) -> None:
        """Figure 2.10 second stage: the filter decides its own output.

        Heuristic 1: prefer tuples already chosen by other filters.
        Heuristic 2: otherwise take the highest group utility.  Both are
        subject to the freshest-timestamp tie-break.
        """
        eligible = candidate_set.eligible_tuples
        degree = min(candidate_set.degree, len(eligible))
        picks: list[StreamTuple] = []
        pool = list(eligible)
        while len(picks) < degree:
            already = self._decided.chosen_by_others(pool, ctx.filter.name)
            source = already if already else pool
            best = self._utility.best(source)
            assert best is not None
            picks.append(best)
            pool.remove(best)

        for member in candidate_set.tuples:
            self._utility.decrement(member)
        for item in picks:
            self._decided.record(item, ctx.filter.name)

        decision = Decision(
            filter_name=ctx.filter.name,
            set_id=candidate_set.set_id,
            tuples=tuple(picks),
            decide_ts=self.now,
        )
        self._early_decided_sets.add(candidate_set.set_id)
        self._result.decisions[ctx.filter.name].append(decision)
        ctx.last_decided = tuple(picks)
        ctx.filter.on_output_decided(picks)
        emitted = self._strategy.on_decisions([decision], self.now)
        self._result.emissions.extend(emitted)

    def _release_orphaned_bit(self, seq: int) -> None:
        """Recycle a dismissed tuple's interner bit once no set holds it.

        The cut test's mask-based tuple counting interns tuples eagerly,
        so a tuple dismissed from every set before its region closes
        would otherwise keep its bit forever on an infinite stream
        (region closure only releases *member* seqs)."""
        if self._interner.bit_of(seq) is None:
            return
        if not self._tracker.contains_tuple(seq):
            self._interner.release((seq,))

    def _poll_regions(self, final: bool = False, cut: bool = False) -> list[Emission]:
        if final:
            for ctx in self._contexts:
                ctx.close_set()
        regions = self._tracker.poll(self.now, final=final, cut=cut)
        emissions: list[Emission] = []
        for region in regions:
            undecided = [
                s for s in region.sets if s.set_id not in self._early_decided_sets
            ]
            if undecided:
                started = time.perf_counter_ns()
                selection = greedy_hitting_set(undecided, interner=self._interner)
                elapsed_ms = (time.perf_counter_ns() - started) / 1e6
                self._result.greedy_runtimes_ms.append(elapsed_ms)
                self._predictor.observe(region.size, elapsed_ms)
                decisions = []
                for candidate_set in undecided:
                    picks = tuple(selection.assignments[candidate_set.set_id])
                    decision = Decision(
                        filter_name=candidate_set.filter_name,
                        set_id=candidate_set.set_id,
                        tuples=picks,
                        decide_ts=self.now,
                    )
                    decisions.append(decision)
                    self._result.decisions[candidate_set.filter_name].append(decision)
                    for item in picks:
                        self._decided.record(item, candidate_set.filter_name)
                emissions.extend(self._strategy.on_decisions(decisions, self.now))
            emissions.extend(self._strategy.on_region_close(region, self.now))
            seqs = region.tuple_seqs
            self._utility.forget(seqs)
            self._decided.forget(seqs)
            self._interner.release(seqs)
            self._early_decided_sets.difference_update(
                s.set_id for s in region.sets
            )
        return emissions

    # ------------------------------------------------------------------
    # Timely cuts (Chapter 3)
    # ------------------------------------------------------------------
    def _check_cut(self) -> list[Emission]:
        assert self._constraint is not None
        if self.algorithm == "region":
            return self._check_region_cut()
        return self._check_per_set_cut()

    def _check_region_cut(self) -> list[Emission]:
        """Figure 3.3 line 8: cut when span exceeds the remaining budget."""
        assert self._constraint is not None
        if not self._tracker.has_open_sets():
            return []
        span = self._tracker.active_span(self.now)
        predicted = (
            self._predictor.predict(
                self._tracker.active_tuple_count(self._interner) + 1
            )
            + self._constraint.overestimate_ms
        )
        if span < self._constraint.max_delay_ms - predicted:
            return []
        self._result.cuts_triggered += 1
        for ctx in self._contexts:
            if ctx.has_open_candidates():
                ctx.filter.on_force_close(ctx)
        return self._poll_regions(cut=True)

    def _check_per_set_cut(self) -> list[Emission]:
        """Per-candidate-set cut: close any set older than the constraint."""
        assert self._constraint is not None
        emissions: list[Emission] = []
        any_cut = False
        for ctx in self._contexts:
            if not ctx.has_open_candidates():
                continue
            cover = ctx.current_set.time_cover  # type: ignore[union-attr]
            assert cover is not None
            if self.now - cover.min_ts >= self._constraint.max_delay_ms:
                self._result.cuts_triggered += 1
                any_cut = True
                ctx.filter.on_force_close(ctx)
        if any_cut:
            emissions.extend(self._poll_regions())
        return emissions


class SelfInterestedEngine:
    """The paper's baseline: uncoordinated filters, immediate output.

    Each filter emits exactly its reference tuples (or its own samples,
    for sampling filters) the moment they are recognized; the multiplexer
    merges same-instant outputs of different filters into one emission.
    """

    def __init__(self, filters: Sequence[GroupFilterProtocol]):
        if not filters:
            raise ValueError("a group needs at least one filter")
        self._filters = [f.make_self_interested() for f in filters]
        self._result = EngineResult(algorithm="self_interested")
        for flt in self._filters:
            self._result.decisions[flt.name] = []
        self._set_counter = 0
        self._finished = False
        self.now = 0.0

    def run(self, trace: Iterable[StreamTuple]) -> EngineResult:
        for item in trace:
            self.process(item)
        return self.finish()

    def process(self, item: StreamTuple) -> list[Emission]:
        if self._finished:
            raise RuntimeError("engine already finished")
        started = time.perf_counter_ns()
        self.now = item.timestamp
        self._result.input_count += 1
        decisions = []
        for flt in self._filters:
            for output in flt.process(item):
                decisions.append(self._make_decision(flt.name, output))
        emissions = merge_decisions(decisions, emit_ts=self.now)
        self._result.cpu_ns_per_tuple.append(time.perf_counter_ns() - started)
        self._result.emissions.extend(emissions)
        return emissions

    def finish(self) -> EngineResult:
        if self._finished:
            return self._result
        decisions = []
        for flt in self._filters:
            for output in flt.flush():
                decisions.append(self._make_decision(flt.name, output))
        self._result.emissions.extend(merge_decisions(decisions, emit_ts=self.now))
        self._finished = True
        return self._result

    def _make_decision(self, filter_name: str, output: StreamTuple) -> Decision:
        self._set_counter += 1
        decision = Decision(
            filter_name=filter_name,
            set_id=-self._set_counter,
            tuples=(output,),
            decide_ts=self.now,
        )
        self._result.decisions[filter_name].append(decision)
        return decision
