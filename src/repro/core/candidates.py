"""Candidate sets and time covers.

A *candidate set* (section 2.2.3) contains the tuples that are equivalent
in quality for one output of a filter: "Choosing any tuples from the
candidate set corresponding to a reference tuple would be quality
equivalent to choosing the corresponding reference tuple for the output."

A *time cover* (Definition 1) is the timestamp interval spanned by a
candidate set.  Axiom 1 requires that the time covers of one group's
candidate sets produced by a single filter do not intersect, which for
delta-compression filters is guaranteed by ``slack < delta / 2``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.tuples import StreamTuple

__all__ = ["TimeCover", "TupleInterner", "CandidateSet"]

_set_ids = itertools.count()


class TupleInterner:
    """Dense bit indices for tuple sequence numbers.

    Candidate-set membership is represented as integer bitsets: each
    distinct tuple ``seq`` is interned to a small bit index, and a set of
    tuples becomes an ``int`` whose set bits are the interned indices.
    Set algebra (intersection, counting shared members) then compiles to
    ``&`` and ``int.bit_count`` instead of per-tuple ``set`` operations.

    Indices are recycled: :meth:`release` returns the slots of forgotten
    tuples to a free list, so on an infinite stream the bit width of the
    masks stays proportional to the number of *live* tuples (the tuples
    of still-unsolved regions), not to the stream length.
    """

    __slots__ = ("_id_of_seq", "_seq_at", "_free")

    def __init__(self) -> None:
        self._id_of_seq: dict[int, int] = {}
        self._seq_at: dict[int, int] = {}
        self._free: list[int] = []

    def intern(self, seq: int) -> int:
        """Return the bit index for ``seq``, assigning one if needed."""
        bit = self._id_of_seq.get(seq)
        if bit is None:
            bit = self._free.pop() if self._free else len(self._id_of_seq)
            self._id_of_seq[seq] = bit
            self._seq_at[bit] = seq
        return bit

    def bit_of(self, seq: int) -> Optional[int]:
        """The bit index already assigned to ``seq``, or ``None``."""
        return self._id_of_seq.get(seq)

    def seq_at(self, bit: int) -> int:
        """Inverse lookup: the sequence number interned at ``bit``."""
        return self._seq_at[bit]

    def release(self, seqs: Iterable[int]) -> None:
        """Recycle the slots of tuples that no longer appear in any set."""
        for seq in seqs:
            bit = self._id_of_seq.pop(seq, None)
            if bit is not None:
                del self._seq_at[bit]
                self._free.append(bit)

    def __len__(self) -> int:
        return len(self._id_of_seq)


@dataclass(frozen=True)
class TimeCover:
    """Closed timestamp interval ``[min_ts, max_ts]`` (Definition 1)."""

    min_ts: float
    max_ts: float

    def intersects(self, other: "TimeCover") -> bool:
        """True when the two intervals overlap (Definition 2's "connected")."""
        return self.min_ts <= other.max_ts and other.min_ts <= self.max_ts

    def union(self, other: "TimeCover") -> "TimeCover":
        return TimeCover(min(self.min_ts, other.min_ts), max(self.max_ts, other.max_ts))

    @property
    def span(self) -> float:
        return self.max_ts - self.min_ts


class CandidateSet:
    """The set of quality-equivalent tuples for one output of one filter.

    The set is built online: tuples are admitted as they arrive, possibly
    dismissed later ("It is still possible for a filter to adjust the set
    of candidates for an output before moving on", section 2.2.2), and the
    set eventually *closes*, after which it is immutable.

    ``degree`` generalizes to the multi-degree hitting-set problem of
    Chapter 5 (Definition 6): the number of tuples that must be selected
    from this set.  Plain filters use degree 1.

    ``eligible`` optionally restricts which members may be chosen as
    output; it implements Chapter 5's "top"/"bottom" output prescriptions.
    When ``None``, every member is eligible.
    """

    __slots__ = (
        "set_id",
        "filter_name",
        "_tuples",
        "closed",
        "reference",
        "degree",
        "_eligible",
        "cut",
        "_min_ts",
        "_max_ts",
        "_cover",
        "_cover_dirty",
        "_mask",
        "_mask_interner",
        "_mask_dirty",
    )

    def __init__(self, filter_name: str):
        self.set_id: int = next(_set_ids)
        self.filter_name = filter_name
        #: Membership AND arrival order: dict insertion order is the
        #: arrival order, so no separate order list is kept (making
        #: ``remove`` O(1) instead of a ``list.remove`` scan).
        self._tuples: dict[int, StreamTuple] = {}
        self.closed = False
        self.reference: Optional[StreamTuple] = None
        self.degree = 1
        self._eligible: Optional[frozenset[int]] = None
        self.cut = False
        # Incrementally maintained time cover (Definition 1).  ``add``
        # widens the bounds in O(1); ``remove`` of a boundary tuple
        # marks them dirty for a lazy recompute — the cover is read on
        # every region poll and cut test, while removals are rare
        # (filter dismissals only).
        self._min_ts = 0.0
        self._max_ts = 0.0
        self._cover: Optional[TimeCover] = None
        self._cover_dirty = False
        # Cached membership bitset over one interner's indices, updated
        # incrementally on add/remove once built (see member_mask).
        self._mask = 0
        self._mask_interner: Optional[TupleInterner] = None
        self._mask_dirty = False

    # ------------------------------------------------------------------
    # Mutation (only while open)
    # ------------------------------------------------------------------
    def add(self, item: StreamTuple) -> bool:
        """Admit ``item``; returns whether it was newly added."""
        if self.closed:
            raise RuntimeError(f"candidate set {self.set_id} is closed")
        if item.seq in self._tuples:
            return False
        if not self._tuples:
            self._min_ts = self._max_ts = item.timestamp
            self._cover = None
        else:
            if item.timestamp < self._min_ts:
                self._min_ts = item.timestamp
                self._cover = None
            if item.timestamp > self._max_ts:
                self._max_ts = item.timestamp
                self._cover = None
        self._tuples[item.seq] = item
        if self._mask_interner is not None:
            self._mask |= 1 << self._mask_interner.intern(item.seq)
        return True

    def remove(self, item: StreamTuple) -> None:
        if self.closed:
            raise RuntimeError(f"candidate set {self.set_id} is closed")
        removed = self._tuples.pop(item.seq, None)
        if removed is None:
            return
        if removed.timestamp in (self._min_ts, self._max_ts):
            self._cover_dirty = True
            self._cover = None
        if self._mask_interner is not None:
            bit = self._mask_interner.bit_of(item.seq)
            if bit is None:
                self._mask_dirty = True
            else:
                self._mask &= ~(1 << bit)

    def close(self, cut: bool = False) -> None:
        self.closed = True
        self.cut = cut

    def restrict_eligible(self, members: Iterable[StreamTuple]) -> None:
        """Limit output selection to ``members`` (top/bottom prescriptions)."""
        eligible = frozenset(t.seq for t in members)
        unknown = eligible - self._tuples.keys()
        if unknown:
            raise ValueError(f"eligible tuples {sorted(unknown)} are not members")
        self._eligible = eligible

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, item: StreamTuple) -> bool:
        return item.seq in self._tuples

    def contains_seq(self, seq: int) -> bool:
        return seq in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def tuples(self) -> list[StreamTuple]:
        """Members in arrival order."""
        return list(self._tuples.values())

    @property
    def seqs(self) -> list[int]:
        return list(self._tuples)

    def is_eligible(self, item: StreamTuple) -> bool:
        if item.seq not in self._tuples:
            return False
        return self._eligible is None or item.seq in self._eligible

    @property
    def eligible_tuples(self) -> list[StreamTuple]:
        if self._eligible is None:
            return self.tuples
        return [t for seq, t in self._tuples.items() if seq in self._eligible]

    def tuple_for(self, seq: int) -> StreamTuple:
        """The member tuple with sequence number ``seq``."""
        return self._tuples[seq]

    def member_mask(self, interner: TupleInterner) -> int:
        """Membership as an integer bitset over ``interner``'s indices.

        The first call over a given interner builds the mask; later
        calls return the incrementally maintained cache (``add`` ORs the
        new bit in, ``remove`` clears it), so per-poll consumers like
        :meth:`RegionTracker.active_tuple_count` pay O(1) per set
        instead of re-interning every member.
        """
        if self._mask_interner is interner and not self._mask_dirty:
            return self._mask
        mask = 0
        for seq in self._tuples:
            mask |= 1 << interner.intern(seq)
        self._mask = mask
        self._mask_interner = interner
        self._mask_dirty = False
        return mask

    def eligible_mask(self, interner: TupleInterner) -> int:
        """Eligible membership as an integer bitset (output candidates)."""
        if self._eligible is None:
            return self.member_mask(interner)
        mask = 0
        for seq in self._tuples:
            if seq in self._eligible:
                mask |= 1 << interner.intern(seq)
        return mask

    @property
    def time_cover(self) -> Optional[TimeCover]:
        """The set's time cover, or ``None`` while empty (Definition 1).

        Cached: bounds are widened incrementally by ``add`` and only
        recomputed after a ``remove`` evicted a boundary tuple."""
        if not self._tuples:
            return None
        if self._cover_dirty:
            timestamps = [t.timestamp for t in self._tuples.values()]
            self._min_ts = min(timestamps)
            self._max_ts = max(timestamps)
            self._cover_dirty = False
            self._cover = None
        if self._cover is None:
            self._cover = TimeCover(self._min_ts, self._max_ts)
        return self._cover

    def connected(self, other: "CandidateSet") -> bool:
        """Definition 2: candidate sets with intersecting time covers."""
        mine, theirs = self.time_cover, other.time_cover
        if mine is None or theirs is None:
            return False
        return mine.intersects(theirs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return (
            f"CandidateSet(id={self.set_id}, filter={self.filter_name!r}, "
            f"n={len(self)}, degree={self.degree}, {state})"
        )
