"""Core of the group-aware stream filtering library.

The subpackage implements the paper's primary contribution: the tuple and
candidate-set model (sections 2.2.1-2.2.3), region-based segmentation
(section 2.3.2), the greedy hitting-set solvers (sections 2.2.4 and 5.3),
the two filtering algorithms (section 2.3.3), timely cuts (Chapter 3) and
the output strategies (section 3.4).
"""

from repro.core.candidates import CandidateSet, TimeCover
from repro.core.cuts import RuntimePredictor, TimeConstraint
from repro.core.engine import (
    EngineResult,
    FilterContext,
    GroupAwareEngine,
    GroupFilterProtocol,
    SelfInterestedEngine,
)
from repro.core.hitting_set import (
    Selection,
    exact_minimum_hitting_set,
    greedy_hitting_set,
    harmonic,
)
from repro.core.output import (
    BatchedOutput,
    Decision,
    Emission,
    OutputStrategy,
    PerCandidateSetOutput,
    RegionOutput,
)
from repro.core.regions import Region, RegionTracker
from repro.core.state import DecidedOutputs, GroupUtility
from repro.core.tuples import StreamTuple, Trace, src_statistics

__all__ = [
    "BatchedOutput",
    "CandidateSet",
    "DecidedOutputs",
    "Decision",
    "Emission",
    "EngineResult",
    "FilterContext",
    "GroupAwareEngine",
    "GroupFilterProtocol",
    "GroupUtility",
    "OutputStrategy",
    "PerCandidateSetOutput",
    "Region",
    "RegionOutput",
    "RegionTracker",
    "RuntimePredictor",
    "Selection",
    "SelfInterestedEngine",
    "StreamTuple",
    "TimeConstraint",
    "TimeCover",
    "Trace",
    "exact_minimum_hitting_set",
    "greedy_hitting_set",
    "harmonic",
    "src_statistics",
]
