"""Output scheduling strategies.

Section 3.4 describes three output patterns for decided tuples:

* **region-based earliest** (default) - release a region's outputs as
  soon as the region closes; "the earliest possible time for output
  tuples of a region without hurting the optimality of the solution";
* **batched** ``(B)-x`` - release every ``x`` input tuples;
* **per-candidate-set** ``(Pcs)`` - release each filter's output as soon
  as its candidate set closes, trading possible disorder for lower
  average delay.

Strategies consume :class:`Decision` objects (a filter's selection for
one candidate set) and produce :class:`Emission` objects (a tuple handed
to the multiplexer with its recipient list, as in Figure 1.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.regions import Region
from repro.core.tuples import StreamTuple

__all__ = [
    "Decision",
    "Emission",
    "OutputStrategy",
    "RegionOutput",
    "PerCandidateSetOutput",
    "BatchedOutput",
]


@dataclass(frozen=True)
class Decision:
    """One filter's selection for one candidate set."""

    filter_name: str
    set_id: int
    tuples: tuple[StreamTuple, ...]
    decide_ts: float


@dataclass(frozen=True)
class Emission:
    """A tuple handed to the multiplexer for multicast.

    ``recipients`` is the set of filter (application) names the tuple is
    labelled with, so that "each tuple is transmitted at most once on any
    link" (section 1.2).
    """

    item: StreamTuple
    recipients: frozenset[str]
    emit_ts: float
    decide_ts: float

    @property
    def delay_ms(self) -> float:
        """Delay from the tuple's source timestamp to its emission."""
        return self.emit_ts - self.item.timestamp


def merge_decisions(decisions: Iterable[Decision], emit_ts: float) -> list[Emission]:
    """Multiplex decisions into per-tuple emissions with merged recipients."""
    recipients: dict[int, set[str]] = {}
    first_decide: dict[int, float] = {}
    items: dict[int, StreamTuple] = {}
    for decision in decisions:
        for item in decision.tuples:
            items[item.seq] = item
            recipients.setdefault(item.seq, set()).add(decision.filter_name)
            first = first_decide.get(item.seq)
            if first is None or decision.decide_ts < first:
                first_decide[item.seq] = decision.decide_ts
    emissions = [
        Emission(
            item=items[seq],
            recipients=frozenset(recipients[seq]),
            emit_ts=emit_ts,
            decide_ts=first_decide[seq],
        )
        for seq in sorted(items, key=lambda s: (items[s].timestamp, s))
    ]
    return emissions


class OutputStrategy(ABC):
    """Scheduler for decided outputs; see section 3.4."""

    name = "abstract"

    @abstractmethod
    def on_decisions(self, decisions: Sequence[Decision], now: float) -> list[Emission]:
        """New decisions were made while processing the tuple at ``now``."""

    def on_region_close(self, region: Region, now: float) -> list[Emission]:
        """A region closed at ``now``; release anything region-gated."""
        return []

    def on_input(self, now: float) -> list[Emission]:
        """An input tuple finished processing (used by batched output)."""
        return []

    @abstractmethod
    def flush(self, now: float) -> list[Emission]:
        """End of stream: release everything still buffered."""


class RegionOutput(OutputStrategy):
    """Default order-preserving strategy: release at region closure."""

    name = "region"

    def __init__(self) -> None:
        self._pending: list[Decision] = []

    def on_decisions(self, decisions: Sequence[Decision], now: float) -> list[Emission]:
        self._pending.extend(decisions)
        return []

    def on_region_close(self, region: Region, now: float) -> list[Emission]:
        region_sets = {s.set_id for s in region.sets}
        ready = [d for d in self._pending if d.set_id in region_sets]
        self._pending = [d for d in self._pending if d.set_id not in region_sets]
        return merge_decisions(ready, emit_ts=now)

    def flush(self, now: float) -> list[Emission]:
        ready, self._pending = self._pending, []
        return merge_decisions(ready, emit_ts=now)


class PerCandidateSetOutput(OutputStrategy):
    """``(Pcs)``: release each decision the moment it is made.

    Lowers average delay at the cost of possible disorder across the
    candidate sets of a region (section 3.4); disorder would be signalled
    downstream via stream punctuations.
    """

    name = "pcs"

    def on_decisions(self, decisions: Sequence[Decision], now: float) -> list[Emission]:
        return merge_decisions(decisions, emit_ts=now)

    def flush(self, now: float) -> list[Emission]:
        return []


class BatchedOutput(OutputStrategy):
    """``(B)-x``: release accumulated outputs every ``batch_size`` inputs."""

    name = "batched"

    def __init__(self, batch_size: int):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.batch_size = batch_size
        self._pending: list[Decision] = []
        self._since_release = 0

    def on_decisions(self, decisions: Sequence[Decision], now: float) -> list[Emission]:
        self._pending.extend(decisions)
        return []

    def on_input(self, now: float) -> list[Emission]:
        self._since_release += 1
        if self._since_release < self.batch_size:
            return []
        self._since_release = 0
        ready, self._pending = self._pending, []
        return merge_decisions(ready, emit_ts=now)

    def flush(self, now: float) -> list[Emission]:
        ready, self._pending = self._pending, []
        return merge_decisions(ready, emit_ts=now)
