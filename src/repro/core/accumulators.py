"""Bounded metric accumulators for infinite live streams.

The batch harness could afford one list entry per input tuple, but the
live broker never finishes a stream: an :class:`~repro.core.engine.EngineResult`
on a long-running source would grow its per-tuple CPU log without bound.
:class:`BoundedSamples` replaces the raw list with an aggregate that is
exact where the reports need exactness (count, sum, hence every mean)
and statistically faithful where they need a distribution (a fixed-size
uniform reservoir, Vitter's Algorithm R, for percentiles and box plots).

The reservoir RNG is seeded per instance, so engine runs stay
deterministic and results remain picklable across the sharded runtime's
process executors.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator

__all__ = ["BoundedSamples"]

#: Large enough that every evaluation-chapter trace (thousands of
#: tuples) is retained exactly; small enough that an infinite live
#: stream costs a fixed few hundred KiB per engine.
DEFAULT_CAPACITY = 65536


class BoundedSamples:
    """Exact count/total plus a bounded uniform sample of the values.

    Behaves like the list it replaces for the common read patterns:
    ``len`` (the exact number of appends), truthiness, and iteration /
    indexing over the retained samples.  While ``count <= capacity``
    the retained samples are *all* the values in append order, so small
    runs see no behavioural change at all.
    """

    __slots__ = ("capacity", "count", "total", "_samples", "_rng")

    def __init__(
        self,
        values: Iterable[float] = (),
        *,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        # Deterministic per-capacity seed: identical runs produce
        # identical reservoirs (the runtime's canonical-equality checks
        # compare shard-merged results across executors).
        self._rng = random.Random(0x5EED ^ capacity)
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    def append(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.append(value)

    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[float]:
        """The retained values (everything, until ``capacity`` appends)."""
        return list(self._samples)

    @property
    def mean(self) -> float:
        """Exact mean of *all* appended values (not just the reservoir)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Linear-interpolation percentile over the retained samples.

        Exact while the stream fits the reservoir; an unbiased estimate
        afterwards.  ``p`` is in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be within [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = p / 100.0 * (len(ordered) - 1)
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return ordered[low]
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self) -> Iterator[float]:
        return iter(self._samples)

    def __getitem__(self, index):
        return self._samples[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoundedSamples):
            return (
                self.count == other.count
                and self.total == other.total
                and self._samples == other._samples
            )
        if isinstance(other, list):
            return self.count == len(self._samples) and self._samples == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BoundedSamples(n={self.count}, total={self.total:.4g}, "
            f"retained={len(self._samples)}/{self.capacity})"
        )
