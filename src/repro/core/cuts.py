"""Timely cuts: run-time prediction and group time constraints.

Chapter 3 bounds the delay group-aware filtering adds to each tuple by
*cutting* (force-closing) candidate sets when the accumulated region span
plus the predicted greedy run time would violate the group's time
constraint.  "For predicting the region-based greedy algorithm's
run-time, we build a latency model based on on-line observations of the
most recent, say ten, regions' performance ... we found that a linear
model was a reasonably accurate fit" (section 3.3).  The per-candidate-set
algorithm does not predict run time (its decision step is constant-time);
its cut compares the candidate-set span against the constraint directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["TimeConstraint", "RuntimePredictor"]


@dataclass(frozen=True)
class TimeConstraint:
    """The group's timeliness requirement.

    ``max_delay_ms`` is the maximum time a tuple may be delayed by the
    filtering stage (the paper models the group requirement as "a
    conjunction of the time requirements of all the filters", i.e. the
    tightest individual requirement).  ``overestimate_ms`` is the
    conservative margin added to the predicted run time: "group-aware
    filtering may apply overestimation to the run-time with an added
    constant" (section 3.3).
    """

    max_delay_ms: float
    overestimate_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.max_delay_ms <= 0:
            raise ValueError("max_delay_ms must be positive")
        if self.overestimate_ms < 0:
            raise ValueError("overestimate_ms must be non-negative")


class RuntimePredictor:
    """Self-tuning linear model of the greedy solve time per region.

    Observes ``(region size, measured run time)`` pairs for the most
    recent ``window`` regions and fits ``time = slope * size + intercept``
    by least squares.  With fewer than two observations it falls back to
    the mean observation, or zero when nothing has been observed yet -
    the first regions then simply run uncut, exactly as a fresh deployment
    of the prototype would.
    """

    def __init__(self, window: int = 10):
        if window < 2:
            raise ValueError("window must be at least 2")
        self._observations: deque[tuple[int, float]] = deque(maxlen=window)

    def observe(self, region_size: int, runtime_ms: float) -> None:
        self._observations.append((region_size, max(0.0, runtime_ms)))

    @property
    def observation_count(self) -> int:
        return len(self._observations)

    def coefficients(self) -> tuple[float, float]:
        """Return ``(slope, intercept)`` of the fitted model."""
        n = len(self._observations)
        if n == 0:
            return 0.0, 0.0
        if n == 1:
            return 0.0, self._observations[0][1]
        sum_x = sum(size for size, _ in self._observations)
        sum_y = sum(time for _, time in self._observations)
        sum_xx = sum(size * size for size, _ in self._observations)
        sum_xy = sum(size * time for size, time in self._observations)
        denominator = n * sum_xx - sum_x * sum_x
        if denominator == 0:
            # All observed regions had the same size; use their mean time.
            return 0.0, sum_y / n
        slope = (n * sum_xy - sum_x * sum_y) / denominator
        intercept = (sum_y - slope * sum_x) / n
        return slope, intercept

    def predict(self, region_size: int) -> float:
        """Predicted greedy run time (ms) for a region of ``region_size``."""
        slope, intercept = self.coefficients()
        return max(0.0, slope * region_size + intercept)
