"""Hitting-set solvers for group-aware filtering.

Theorem 1 reduces group-aware filtering to the minimum hitting-set
problem, which is NP-hard; the paper therefore uses "the greedy algorithm
[that] produces a rho(n) approximation to the optimal solution ... where
rho(n) = H(max set size)" (section 2.2.4).  Chapter 5 generalizes to the
*multi-degree* hitting-set problem (Definition 6, also NP-hard by
Axiom 3), where each set must contribute ``degree`` chosen tuples.

This module implements:

* :func:`greedy_hitting_set` - the greedy heuristic of Figure 2.7,
  generalized to multi-degree sets per section 5.3;
* :func:`exact_minimum_hitting_set` - a brute-force optimal solver used
  by tests to check optimality preservation (Theorem 2) and the greedy
  approximation bound (Theorem 3);
* :func:`harmonic` - H(n), the greedy approximation factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from itertools import combinations
from typing import Optional, Sequence

from repro.core.candidates import CandidateSet, TupleInterner
from repro.core.tuples import StreamTuple

__all__ = [
    "Selection",
    "greedy_hitting_set",
    "exact_minimum_hitting_set",
    "harmonic",
]


@dataclass
class Selection:
    """Result of a hitting-set solve.

    ``assignments`` maps each candidate set id to the tuples selected for
    it (``degree`` many); ``chosen`` lists the distinct selected tuples in
    pick order.  The union of assignments is exactly ``chosen``.
    """

    assignments: dict[int, list[StreamTuple]] = field(default_factory=dict)
    chosen: list[StreamTuple] = field(default_factory=list)

    @property
    def output_size(self) -> int:
        return len(self.chosen)


def greedy_hitting_set(
    sets: Sequence[CandidateSet], interner: Optional[TupleInterner] = None
) -> Selection:
    """Greedy multi-degree hitting set (Figure 2.7 / section 5.3).

    Repeatedly picks the tuple contained in (and eligible for) the most
    still-unsatisfied candidate sets; ties are broken by the latest
    timestamp "to favor time freshness".  Selecting a tuple counts toward
    every unsatisfied set that contains it; once a set has received its
    ``degree`` tuples it stops contributing utility.

    Membership is interned to integer bitsets (see
    :class:`~repro.core.candidates.TupleInterner`): a tuple's utility is
    ``(tuple_sets_mask & active_sets_mask).bit_count()``, so the inner
    loop is popcount/AND work rather than Python set algebra.  A caller
    that solves many regions (the engine) may pass a long-lived interner;
    by default a solve-local one is used.
    """
    if interner is None:
        interner = TupleInterner()

    n_sets = len(sets)
    set_ids: list[int] = []
    remaining: list[int] = []
    # Per interned tuple bit: which sets (by position) contain the tuple.
    sets_mask_of: dict[int, int] = {}
    tuple_of: dict[int, StreamTuple] = {}

    for position, candidate_set in enumerate(sets):
        members = candidate_set.eligible_mask(interner)
        if members == 0:
            raise ValueError(
                f"candidate set {candidate_set.set_id} has no eligible tuples"
            )
        # A set can never need more tuples than it can offer.
        remaining.append(min(candidate_set.degree, members.bit_count()))
        set_ids.append(candidate_set.set_id)
        position_bit = 1 << position
        while members:
            low = members & -members
            members ^= low
            bit = low.bit_length() - 1
            sets_mask_of[bit] = sets_mask_of.get(bit, 0) | position_bit
            if bit not in tuple_of:
                tuple_of[bit] = candidate_set.tuple_for(interner.seq_at(bit))

    selection = Selection(assignments={sid: [] for sid in set_ids})
    active = (1 << n_sets) - 1

    # A tuple's utility is popcount(tuple_sets_mask & active_sets_mask).
    # ``active`` only ever loses bits, so utilities are monotonically
    # non-increasing and a lazy max-heap is sound: pop the stored best,
    # recompute its utility with one AND/popcount, and either accept it
    # (still accurate, hence still the maximum) or push it back with the
    # smaller value.  Heap keys are (-utility, -timestamp, -seq): highest
    # utility first, ties broken by the freshest timestamp (Figure 2.7).
    heap = [
        (-mask.bit_count(), -tuple_of[bit].timestamp, -tuple_of[bit].seq, bit)
        for bit, mask in sets_mask_of.items()
    ]
    heapify(heap)

    while active:
        if not heap:  # pragma: no cover - guarded by degree clamp
            raise RuntimeError("unsatisfiable hitting-set instance")
        stored, neg_ts, neg_seq, bit = heappop(heap)
        hit = sets_mask_of[bit] & active
        utility = hit.bit_count()
        if utility != -stored:
            if utility:
                heappush(heap, (-utility, neg_ts, neg_seq, bit))
            continue

        chosen = tuple_of[bit]
        selection.chosen.append(chosen)
        while hit:
            low = hit & -hit
            hit ^= low
            position = low.bit_length() - 1
            remaining[position] -= 1
            selection.assignments[set_ids[position]].append(chosen)
            if remaining[position] == 0:
                active ^= low
    return selection


def exact_minimum_hitting_set(
    sets: Sequence[CandidateSet], max_universe: int = 24
) -> Selection:
    """Brute-force minimum hitting set (degree-1 sets only).

    Enumerates subsets of the tuple universe by increasing size and
    returns the first that hits every set.  Exponential; refuses instances
    with more than ``max_universe`` distinct tuples.  Used by tests to
    verify Theorems 2 and 3 on small instances.
    """
    for candidate_set in sets:
        if candidate_set.degree != 1:
            raise ValueError("exact solver supports degree-1 sets only")

    universe: dict[int, StreamTuple] = {}
    for candidate_set in sets:
        for item in candidate_set.eligible_tuples:
            universe[item.seq] = item
    if len(universe) > max_universe:
        raise ValueError(
            f"universe of {len(universe)} tuples exceeds max_universe={max_universe}"
        )

    members = sorted(universe.values(), key=lambda t: t.seq)
    set_seqs = [
        frozenset(item.seq for item in candidate_set.eligible_tuples)
        for candidate_set in sets
    ]
    for size in range(0, len(members) + 1):
        for combo in combinations(members, size):
            picked = frozenset(item.seq for item in combo)
            if all(seqs & picked for seqs in set_seqs):
                selection = Selection()
                selection.chosen = list(combo)
                for candidate_set, seqs in zip(sets, set_seqs):
                    hit = next(item for item in combo if item.seq in seqs)
                    selection.assignments[candidate_set.set_id] = [hit]
                return selection
    raise RuntimeError("no hitting set exists (empty candidate set?)")


def harmonic(n: int) -> float:
    """H(n) = 1 + 1/2 + ... + 1/n, the greedy approximation factor."""
    return sum(1.0 / k for k in range(1, n + 1))
