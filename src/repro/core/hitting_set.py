"""Hitting-set solvers for group-aware filtering.

Theorem 1 reduces group-aware filtering to the minimum hitting-set
problem, which is NP-hard; the paper therefore uses "the greedy algorithm
[that] produces a rho(n) approximation to the optimal solution ... where
rho(n) = H(max set size)" (section 2.2.4).  Chapter 5 generalizes to the
*multi-degree* hitting-set problem (Definition 6, also NP-hard by
Axiom 3), where each set must contribute ``degree`` chosen tuples.

This module implements:

* :func:`greedy_hitting_set` - the greedy heuristic of Figure 2.7,
  generalized to multi-degree sets per section 5.3;
* :func:`exact_minimum_hitting_set` - a brute-force optimal solver used
  by tests to check optimality preservation (Theorem 2) and the greedy
  approximation bound (Theorem 3);
* :func:`harmonic` - H(n), the greedy approximation factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Sequence

from repro.core.candidates import CandidateSet
from repro.core.tuples import StreamTuple

__all__ = [
    "Selection",
    "greedy_hitting_set",
    "exact_minimum_hitting_set",
    "harmonic",
]


@dataclass
class Selection:
    """Result of a hitting-set solve.

    ``assignments`` maps each candidate set id to the tuples selected for
    it (``degree`` many); ``chosen`` lists the distinct selected tuples in
    pick order.  The union of assignments is exactly ``chosen``.
    """

    assignments: dict[int, list[StreamTuple]] = field(default_factory=dict)
    chosen: list[StreamTuple] = field(default_factory=list)

    @property
    def output_size(self) -> int:
        return len(self.chosen)


def greedy_hitting_set(sets: Sequence[CandidateSet]) -> Selection:
    """Greedy multi-degree hitting set (Figure 2.7 / section 5.3).

    Repeatedly picks the tuple contained in (and eligible for) the most
    still-unsatisfied candidate sets; ties are broken by the latest
    timestamp "to favor time freshness".  Selecting a tuple counts toward
    every unsatisfied set that contains it; once a set has received its
    ``degree`` tuples it stops contributing utility.
    """
    remaining: dict[int, int] = {}
    eligible_of_set: dict[int, list[StreamTuple]] = {}
    sets_of_tuple: dict[int, list[int]] = {}
    tuple_by_seq: dict[int, StreamTuple] = {}

    for candidate_set in sets:
        eligible = candidate_set.eligible_tuples
        if not eligible:
            raise ValueError(
                f"candidate set {candidate_set.set_id} has no eligible tuples"
            )
        # A set can never need more tuples than it can offer.
        degree = min(candidate_set.degree, len(eligible))
        remaining[candidate_set.set_id] = degree
        eligible_of_set[candidate_set.set_id] = eligible
        for item in eligible:
            sets_of_tuple.setdefault(item.seq, []).append(candidate_set.set_id)
            tuple_by_seq[item.seq] = item

    utility: dict[int, int] = {
        seq: len(set_ids) for seq, set_ids in sets_of_tuple.items()
    }
    assigned: dict[int, set[int]] = {sid: set() for sid in remaining}
    selection = Selection(assignments={sid: [] for sid in remaining})

    def _retire(set_id: int) -> None:
        """A satisfied set stops contributing utility for unpicked tuples."""
        for item in eligible_of_set[set_id]:
            if item.seq in utility and item.seq not in assigned[set_id]:
                utility[item.seq] -= 1
                if utility[item.seq] <= 0:
                    del utility[item.seq]

    while any(count > 0 for count in remaining.values()):
        best_seq: Optional[int] = None
        best_key: tuple[int, float, int] | None = None
        for seq, count in utility.items():
            item = tuple_by_seq[seq]
            key = (count, item.timestamp, item.seq)
            if best_key is None or key > best_key:
                best_key = key
                best_seq = seq
        if best_seq is None:  # pragma: no cover - guarded by degree clamp
            raise RuntimeError("unsatisfiable hitting-set instance")

        chosen = tuple_by_seq[best_seq]
        selection.chosen.append(chosen)
        del utility[best_seq]
        for set_id in sets_of_tuple[best_seq]:
            if remaining[set_id] <= 0:
                continue
            remaining[set_id] -= 1
            assigned[set_id].add(best_seq)
            selection.assignments[set_id].append(chosen)
            if remaining[set_id] == 0:
                _retire(set_id)
    return selection


def exact_minimum_hitting_set(
    sets: Sequence[CandidateSet], max_universe: int = 24
) -> Selection:
    """Brute-force minimum hitting set (degree-1 sets only).

    Enumerates subsets of the tuple universe by increasing size and
    returns the first that hits every set.  Exponential; refuses instances
    with more than ``max_universe`` distinct tuples.  Used by tests to
    verify Theorems 2 and 3 on small instances.
    """
    for candidate_set in sets:
        if candidate_set.degree != 1:
            raise ValueError("exact solver supports degree-1 sets only")

    universe: dict[int, StreamTuple] = {}
    for candidate_set in sets:
        for item in candidate_set.eligible_tuples:
            universe[item.seq] = item
    if len(universe) > max_universe:
        raise ValueError(
            f"universe of {len(universe)} tuples exceeds max_universe={max_universe}"
        )

    members = sorted(universe.values(), key=lambda t: t.seq)
    set_seqs = [
        frozenset(item.seq for item in candidate_set.eligible_tuples)
        for candidate_set in sets
    ]
    for size in range(0, len(members) + 1):
        for combo in combinations(members, size):
            picked = frozenset(item.seq for item in combo)
            if all(seqs & picked for seqs in set_seqs):
                selection = Selection()
                selection.chosen = list(combo)
                for candidate_set, seqs in zip(sets, set_seqs):
                    hit = next(item for item in combo if item.seq in seqs)
                    selection.assignments[candidate_set.set_id] = [hit]
                return selection
    raise RuntimeError("no hitting set exists (empty candidate set?)")


def harmonic(n: int) -> float:
    """H(n) = 1 + 1/2 + ... + 1/n, the greedy approximation factor."""
    return sum(1.0 / k for k in range(1, n + 1))
