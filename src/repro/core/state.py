"""Global coordination state shared by a group of filters.

The paper's algorithms coordinate through a ``globalState`` object whose
main contents are "1) the group utility of each tuple, which counts the
number of filters that have included the tuple in their candidate set, and
2) the current region that keeps track of the connected candidate sets"
(section 2.3.3).  The per-candidate-set algorithm additionally tracks the
outputs already decided by other filters ("group state keeps track of the
tuples chosen by each filter").
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.tuples import StreamTuple

__all__ = ["GroupUtility", "DecidedOutputs"]


class GroupUtility:
    """Per-tuple count of candidate sets that currently include the tuple.

    Ties between equal-utility tuples are broken by "the latest time stamp
    to favor time freshness" (section 2.3.3); :meth:`best` implements that
    ordering.
    """

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}

    def increment(self, item: StreamTuple) -> None:
        self._counts[item.seq] = self._counts.get(item.seq, 0) + 1

    def decrement(self, item: StreamTuple) -> None:
        self.decrement_seq(item.seq)

    def decrement_seq(self, seq: int) -> None:
        count = self._counts.get(seq)
        if count is None:
            raise KeyError(f"tuple {seq} has no utility entry")
        if count <= 1:
            del self._counts[seq]
        else:
            self._counts[seq] = count - 1

    def get(self, item: StreamTuple) -> int:
        return self._counts.get(item.seq, 0)

    def get_seq(self, seq: int) -> int:
        return self._counts.get(seq, 0)

    def forget(self, seqs: Iterable[int]) -> None:
        """Drop bookkeeping for tuples whose region has been solved."""
        for seq in seqs:
            self._counts.pop(seq, None)

    def best(self, candidates: Sequence[StreamTuple]) -> Optional[StreamTuple]:
        """Highest-utility tuple among ``candidates``; ties favour freshness."""
        chosen: Optional[StreamTuple] = None
        chosen_key: tuple[int, float, int] | None = None
        for item in candidates:
            key = (self.get(item), item.timestamp, item.seq)
            if chosen_key is None or key > chosen_key:
                chosen = item
                chosen_key = key
        return chosen

    def __len__(self) -> int:
        return len(self._counts)

    def snapshot(self) -> dict[int, int]:
        """Copy of the current counts (used by tests and the debugger)."""
        return dict(self._counts)


class DecidedOutputs:
    """Tuples already chosen for output, and by which filters.

    Supports the per-candidate-set algorithm's first heuristic: "choose the
    tuple that has been chosen by other filters" (section 2.3.3).  Entries
    are purged once the region containing them has been fully emitted, so
    the structure stays bounded on infinite streams.
    """

    def __init__(self) -> None:
        self._choosers: dict[int, set[str]] = {}
        self._tuples: dict[int, StreamTuple] = {}

    def record(self, item: StreamTuple, filter_name: str) -> None:
        self._choosers.setdefault(item.seq, set()).add(filter_name)
        self._tuples[item.seq] = item

    def chosen_by_others(
        self, candidates: Sequence[StreamTuple], filter_name: str
    ) -> list[StreamTuple]:
        """Members of ``candidates`` already chosen by a different filter."""
        result = []
        for item in candidates:
            choosers = self._choosers.get(item.seq)
            if choosers and choosers != {filter_name}:
                result.append(item)
        return result

    def choosers(self, item: StreamTuple) -> frozenset[str]:
        return frozenset(self._choosers.get(item.seq, ()))

    def forget(self, seqs: Iterable[int]) -> None:
        for seq in seqs:
            self._choosers.pop(seq, None)
            self._tuples.pop(seq, None)

    def __len__(self) -> int:
        return len(self._choosers)

    def __contains__(self, item: StreamTuple) -> bool:
        return item.seq in self._choosers
