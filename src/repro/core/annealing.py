"""Simulated-annealing hitting-set solver (the section 2.4.4 alternative).

The paper surveys heuristics beyond greedy - simulated annealing, neural
networks, genetic algorithms - and argues that "all those complex
evolutionary algorithms take much longer to find a good solution ...
compared with a deterministic greedy algorithm.  For timeliness concerns,
we opt out of these types of algorithms."  This module implements the
simulated-annealing variant so that claim can be measured rather than
assumed; `benchmarks/bench_ablations.py` compares solution quality and
run time against the greedy solver.

The state space is the set of *hitting assignments* (one chosen tuple per
candidate set); the energy is the number of distinct chosen tuples.  A
move re-assigns one random candidate set to another of its members, which
keeps every visited state feasible.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.core.candidates import CandidateSet
from repro.core.hitting_set import Selection

__all__ = ["anneal_hitting_set"]


def _energy(assignment: dict[int, int]) -> int:
    return len(set(assignment.values()))


def anneal_hitting_set(
    sets: Sequence[CandidateSet],
    iterations: int = 2000,
    start_temperature: float = 2.0,
    cooling: float = 0.995,
    rng: Optional[random.Random] = None,
) -> Selection:
    """Approximate minimum hitting set by simulated annealing.

    Supports degree-1 sets (the core problem of Theorem 1).  Starts from
    a random feasible assignment and anneals with geometric cooling;
    returns the best assignment seen.
    """
    for candidate_set in sets:
        if candidate_set.degree != 1:
            raise ValueError("annealing solver supports degree-1 sets only")
        if not candidate_set.eligible_tuples:
            raise ValueError(
                f"candidate set {candidate_set.set_id} has no eligible tuples"
            )
    if rng is None:
        rng = random.Random(0)

    members = {
        cs.set_id: [item for item in cs.eligible_tuples] for cs in sets
    }
    tuple_by_seq = {
        item.seq: item for items in members.values() for item in items
    }
    set_ids = [cs.set_id for cs in sets]

    assignment = {
        set_id: rng.choice(items).seq for set_id, items in members.items()
    }
    best = dict(assignment)
    best_energy = _energy(best)
    current_energy = best_energy
    temperature = start_temperature

    for _ in range(iterations):
        set_id = rng.choice(set_ids)
        options = members[set_id]
        if len(options) == 1:
            temperature *= cooling
            continue
        proposed_seq = rng.choice(options).seq
        if proposed_seq == assignment[set_id]:
            temperature *= cooling
            continue
        previous = assignment[set_id]
        assignment[set_id] = proposed_seq
        proposed_energy = _energy(assignment)
        delta = proposed_energy - current_energy
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            current_energy = proposed_energy
            if current_energy < best_energy:
                best_energy = current_energy
                best = dict(assignment)
        else:
            assignment[set_id] = previous
        temperature *= cooling

    selection = Selection()
    chosen_seqs: list[int] = []
    for candidate_set in sets:
        seq = best[candidate_set.set_id]
        item = tuple_by_seq[seq]
        selection.assignments[candidate_set.set_id] = [item]
        if seq not in chosen_seqs:
            chosen_seqs.append(seq)
            selection.chosen.append(item)
    return selection
