"""Stream tuple and trace model.

The paper assumes "data sources are infinite and time-ordered series with
self-describing data types.  A tuple consists of a collection of
attribute-value pairs ... all tuples are timestamped at the originating
sources" (section 2.2.1).  This module provides that model: an immutable,
hashable :class:`StreamTuple` and a :class:`Trace`, the finite prefix of a
stream used for replay-based evaluation (section 4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["StreamTuple", "Trace", "src_statistics"]


@dataclass(frozen=True)
class StreamTuple:
    """One item of a data stream.

    Attributes
    ----------
    seq:
        Arrival index at the source; unique and strictly increasing.
        Used as the tuple's identity throughout the library.
    timestamp:
        Source timestamp in milliseconds.  Strictly increasing with
        ``seq`` (the paper's streams are time-ordered series).
    values:
        Attribute name to numeric value mapping.
    """

    seq: int
    timestamp: float
    values: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Freeze the mapping so tuples are safe to share across filters.
        object.__setattr__(self, "values", dict(self.values))

    @classmethod
    def trusted(
        cls, seq: int, timestamp: float, values: dict[str, float]
    ) -> "StreamTuple":
        """Construct without the defensive ``values`` copy.

        For decode hot paths that just built ``values`` themselves and
        hand over ownership (the wire codecs construct one tuple per
        delivered item per subscriber — the dataclass init plus dict
        copy is measurable at that rate).  Callers must not retain a
        reference to ``values``.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "seq", seq)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "values", values)
        return self

    def value(self, attribute: str) -> float:
        """Return the value of ``attribute``, raising ``KeyError`` if absent."""
        return self.values[attribute]

    def __hash__(self) -> int:
        return hash(self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamTuple):
            return NotImplemented
        return self.seq == other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.values.items()))
        return f"StreamTuple(seq={self.seq}, t={self.timestamp:.1f}, {shown})"


class Trace(Sequence[StreamTuple]):
    """A finite, time-ordered prefix of a stream, replayable for evaluation.

    The evaluation chapter replays recorded traces "observing the original
    time intervals of the trace data" (section 4.2); a :class:`Trace` keeps
    the timestamps so the simulated clock can honour those intervals.
    """

    def __init__(self, tuples: Iterable[StreamTuple]):
        self._tuples = list(tuples)
        previous = None
        for item in self._tuples:
            if previous is not None and item.timestamp <= previous.timestamp:
                raise ValueError(
                    "trace timestamps must be strictly increasing: "
                    f"tuple {item.seq} at {item.timestamp} follows "
                    f"{previous.seq} at {previous.timestamp}"
                )
            previous = item

    @classmethod
    def from_values(
        cls,
        values: Iterable[float],
        attribute: str = "value",
        interval_ms: float = 10.0,
        start_ms: float = 0.0,
    ) -> "Trace":
        """Build a single-attribute trace from raw values.

        Tuples are spaced ``interval_ms`` apart, mirroring the NAMOS replay
        rate of "about 10 ms per tuple" used throughout Chapter 4.
        """
        tuples = [
            StreamTuple(seq=i, timestamp=start_ms + i * interval_ms, values={attribute: v})
            for i, v in enumerate(values)
        ]
        return cls(tuples)

    @classmethod
    def from_columns(
        cls,
        columns: Mapping[str, Sequence[float]],
        interval_ms: float = 10.0,
        start_ms: float = 0.0,
    ) -> "Trace":
        """Build a multi-attribute trace from parallel columns of values."""
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have mismatched lengths: {sorted(lengths)}")
        n = lengths.pop() if lengths else 0
        tuples = [
            StreamTuple(
                seq=i,
                timestamp=start_ms + i * interval_ms,
                values={name: col[i] for name, col in columns.items()},
            )
            for i in range(n)
        ]
        return cls(tuples)

    @property
    def attributes(self) -> list[str]:
        """Attribute names present in the first tuple (self-describing schema)."""
        if not self._tuples:
            return []
        return sorted(self._tuples[0].values)

    def column(self, attribute: str) -> list[float]:
        """All values of one attribute, in arrival order."""
        return [t.value(attribute) for t in self._tuples]

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering ``[start, stop)`` by arrival index."""
        return Trace(self._tuples[start:stop])

    def __len__(self) -> int:
        return len(self._tuples)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return Trace(self._tuples[index])
        return self._tuples[index]

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace(n={len(self._tuples)}, attributes={self.attributes})"


def src_statistics(trace: Iterable[StreamTuple], attribute: str) -> float:
    """Mean absolute change between consecutive tuples for one attribute.

    This is the paper's *srcStatistics* (section 4.3): "we computed the
    average changes ... of two consecutive tuples in the source time series
    and then randomly picked delta values between the range of srcStatistics
    and 3*srcStatistics".  Filter parameter recipes throughout the
    evaluation are expressed as multiples of this quantity.
    """
    total = 0.0
    count = 0
    previous: float | None = None
    for item in trace:
        value = item.value(attribute)
        if previous is not None:
            total += abs(value - previous)
            count += 1
        previous = value
    if count == 0:
        raise ValueError("srcStatistics needs at least two tuples")
    return total / count
