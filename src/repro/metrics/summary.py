"""Statistical summaries used by the evaluation figures.

The paper presents CPU and latency results as box plots: "the minimum,
25% quartile, median, 75% quartile, and maximum ... Any data observation
which lies more than 1.5 * IQR lower than the first quartile or
1.5 * IQR higher than the third quartile is considered an outlier"
(section 4.4).  :class:`BoxPlot` reproduces exactly that summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["BoxPlot", "mean", "median", "quantile"]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (same convention as numpy default)."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def median(values: Sequence[float]) -> float:
    return quantile(values, 0.5)


@dataclass(frozen=True)
class BoxPlot:
    """Five-number summary with 1.5*IQR outliers (section 4.4)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    outliers: tuple[float, ...]
    mean: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "BoxPlot":
        if not values:
            raise ValueError("cannot summarize an empty sequence")
        q1 = quantile(values, 0.25)
        q3 = quantile(values, 0.75)
        iqr = q3 - q1
        lower_fence = q1 - 1.5 * iqr
        upper_fence = q3 + 1.5 * iqr
        outliers = tuple(
            sorted(v for v in values if v < lower_fence or v > upper_fence)
        )
        inliers = [v for v in values if lower_fence <= v <= upper_fence]
        body = inliers if inliers else list(values)
        return cls(
            minimum=min(body),
            q1=q1,
            median=median(values),
            q3=q3,
            maximum=max(body),
            outliers=outliers,
            mean=mean(values),
            n=len(values),
        )

    def row(self) -> dict[str, float]:
        """Flat representation for table printing."""
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "outliers": float(len(self.outliers)),
        }
