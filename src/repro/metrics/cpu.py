"""CPU-cost metrics.

The paper reports "CPU time per tuple, representing the CPU overhead of
group-aware filtering" (section 4.4) and, for Chapter 5, "average CPU
cost per batch of 100 tuples" (Table 5.3) plus the overhead ratio of
group-aware to self-interested cost (Figure 5.3).
"""

from __future__ import annotations

from repro.core.engine import EngineResult
from repro.metrics.summary import BoxPlot, mean

__all__ = [
    "cpu_ms_per_tuple",
    "cpu_ms_per_batch",
    "cpu_overhead_ratio",
    "cpu_boxplot",
]


def cpu_ms_per_tuple(result: EngineResult) -> float:
    """Mean per-tuple processing cost in milliseconds."""
    return result.mean_cpu_ms_per_tuple


def cpu_ms_per_batch(result: EngineResult, batch_size: int = 100) -> list[float]:
    """Total CPU cost of each ``batch_size``-tuple input batch, in ms.

    Operates on the result's retained CPU samples — exact for every
    evaluation trace (they fit the accumulator's reservoir), a uniform
    subsample on streams longer than the reservoir."""
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    batches: list[float] = []
    samples = result.cpu_ns_per_tuple.samples
    for start in range(0, len(samples), batch_size):
        chunk = samples[start : start + batch_size]
        batches.append(sum(chunk) / 1e6)
    return batches


def cpu_overhead_ratio(
    group_aware: EngineResult, self_interested: EngineResult
) -> float:
    """Figure 5.3's ratio of group-aware to self-interested CPU cost."""
    base = self_interested.total_cpu_ms
    if base <= 0:
        raise ValueError("baseline CPU cost is zero; ratio undefined")
    return group_aware.total_cpu_ms / base


def cpu_boxplot(results: list[EngineResult]) -> BoxPlot:
    """Box plot of mean per-tuple CPU cost across repeated runs
    (the paper's Figures 4.3-4.5 summarize ten runs)."""
    return BoxPlot.of([cpu_ms_per_tuple(result) for result in results])


def mean_cpu_ms_per_batch(result: EngineResult, batch_size: int = 100) -> float:
    """Table 5.3's "Average CPU cost per batch of 100 tuples"."""
    batches = cpu_ms_per_batch(result, batch_size)
    return mean(batches)
