"""Latency metrics.

"We measured data timeliness with source-to-application latency per
tuple, which shows the delay induced by group-aware filtering to each
output tuple" (section 4.4).  In the simulation, an emission's delay is
``emit_ts - tuple.timestamp``; a constant per-tuple software overhead
(the prototype measured about 12 ms for self-interested filters on the
same node) and the application-level multicast cost can be added on top.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.engine import EngineResult
from repro.metrics.summary import BoxPlot, quantile

__all__ = [
    "latency_ms_per_tuple",
    "latency_boxplot",
    "latency_percentiles",
    "mean_latency_ms",
]

#: Default per-tuple software overhead, matching the prototype's ~12 ms
#: baseline for self-interested filtering on the source node.
DEFAULT_SOFTWARE_OVERHEAD_MS = 12.0


def latency_ms_per_tuple(
    result: EngineResult,
    software_overhead_ms: float = DEFAULT_SOFTWARE_OVERHEAD_MS,
    multicast_ms: float = 0.0,
) -> list[float]:
    """Per-emitted-tuple source-to-application latency."""
    return [
        emission.delay_ms + software_overhead_ms + multicast_ms
        for emission in result.emissions
    ]


def mean_latency_ms(
    result: EngineResult,
    software_overhead_ms: float = DEFAULT_SOFTWARE_OVERHEAD_MS,
    multicast_ms: float = 0.0,
) -> float:
    delays = latency_ms_per_tuple(result, software_overhead_ms, multicast_ms)
    if not delays:
        return 0.0
    return sum(delays) / len(delays)


def latency_percentiles(
    delays_ms: Sequence[float], percentiles: Sequence[int] = (50, 99)
) -> dict[str, float]:
    """``{"p50": ..., "p99": ...}`` over a window of per-tuple delays.

    The live dissemination service reports decide latency this way in its
    stats snapshots; an empty window yields zeros so a freshly started
    broker can always be snapshotted.
    """
    result: dict[str, float] = {}
    for p in percentiles:
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be within [0, 100], got {p}")
        result[f"p{p}"] = quantile(delays_ms, p / 100.0) if delays_ms else 0.0
    return result


def latency_boxplot(
    results: list[EngineResult],
    software_overhead_ms: float = DEFAULT_SOFTWARE_OVERHEAD_MS,
    multicast_ms: float = 0.0,
) -> BoxPlot:
    """Box plot of mean latency across repeated runs (Figures 4.6-4.8)."""
    return BoxPlot.of(
        [
            mean_latency_ms(result, software_overhead_ms, multicast_ms)
            for result in results
        ]
    )
