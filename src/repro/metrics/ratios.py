"""Bandwidth metrics: O/I ratio and output ratio.

Two related metrics appear in the paper:

* **O/I ratio** (section 4.4): distinct output tuples over input tuples
  - "A lower O/I ratio means low bandwidth consumption";
* **output ratio** (sections 4.7 and 5.4): the group-aware output size
  relative to the self-interested output size, sometimes computed "for
  each batch of 100 tuples" with average and median across batches
  (section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineResult
from repro.metrics.summary import mean, median

__all__ = ["oi_ratio", "output_ratio", "BatchRatios", "batch_output_ratios"]


def oi_ratio(result: EngineResult) -> float:
    """Distinct output tuples / input tuples."""
    return result.oi_ratio


def output_ratio(group_aware: EngineResult, self_interested: EngineResult) -> float:
    """Group-aware distinct output relative to self-interested."""
    si = self_interested.output_count
    if si == 0:
        raise ValueError("self-interested output is empty; ratio undefined")
    return group_aware.output_count / si


@dataclass(frozen=True)
class BatchRatios:
    """Per-batch output ratios plus their average and median."""

    ratios: tuple[float, ...]
    average: float
    median: float
    batch_size: int


def batch_output_ratios(
    group_aware: EngineResult,
    self_interested: EngineResult,
    batch_size: int = 100,
) -> BatchRatios:
    """Section 5.4's metric: output ratio per ``batch_size`` input tuples.

    A batch's ratio is the number of distinct group-aware output tuples
    originating in the batch over the self-interested count.  Batches
    where the baseline output nothing are skipped (ratio undefined).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")

    def per_batch(result: EngineResult) -> dict[int, int]:
        counts: dict[int, set[int]] = {}
        for emission in result.emissions:
            batch = emission.item.seq // batch_size
            counts.setdefault(batch, set()).add(emission.item.seq)
        return {batch: len(seqs) for batch, seqs in counts.items()}

    ga_counts = per_batch(group_aware)
    si_counts = per_batch(self_interested)
    ratios = []
    for batch, si_count in sorted(si_counts.items()):
        if si_count == 0:
            continue
        ratios.append(ga_counts.get(batch, 0) / si_count)
    if not ratios:
        raise ValueError("no batches with self-interested output")
    return BatchRatios(
        ratios=tuple(ratios),
        average=mean(ratios),
        median=median(ratios),
        batch_size=batch_size,
    )
