"""Plain-text table rendering for experiment output.

Every benchmark and CLI experiment prints its rows through this module,
so the regenerated tables and figure series look the same everywhere
(and land legibly in ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        if magnitude >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """Render a fixed-width table with a title banner."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title: str, points: Sequence[tuple], x_label: str, y_label: str) -> str:
    """Render an (x, y) series as a two-column table."""
    return render_table(title, [x_label, y_label], [list(p) for p in points])
