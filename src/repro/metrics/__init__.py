"""Metrics of the paper's evaluation: O/I ratio, output ratio, CPU cost,
latency, and the box-plot summaries used by the Chapter 4 figures."""

from repro.metrics.cpu import (
    cpu_boxplot,
    cpu_ms_per_batch,
    cpu_ms_per_tuple,
    cpu_overhead_ratio,
    mean_cpu_ms_per_batch,
)
from repro.metrics.latency import (
    DEFAULT_SOFTWARE_OVERHEAD_MS,
    latency_boxplot,
    latency_ms_per_tuple,
    mean_latency_ms,
)
from repro.metrics.ratios import (
    BatchRatios,
    batch_output_ratios,
    oi_ratio,
    output_ratio,
)
from repro.metrics.report import format_value, render_series, render_table
from repro.metrics.summary import BoxPlot, mean, median, quantile

__all__ = [
    "BatchRatios",
    "BoxPlot",
    "DEFAULT_SOFTWARE_OVERHEAD_MS",
    "batch_output_ratios",
    "cpu_boxplot",
    "cpu_ms_per_batch",
    "cpu_ms_per_tuple",
    "cpu_overhead_ratio",
    "format_value",
    "latency_boxplot",
    "latency_ms_per_tuple",
    "mean",
    "mean_cpu_ms_per_batch",
    "mean_latency_ms",
    "median",
    "oi_ratio",
    "output_ratio",
    "quantile",
    "render_series",
    "render_table",
]
