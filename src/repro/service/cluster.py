"""Multi-process source sharding behind a front-tier router.

One :class:`~repro.service.broker.DisseminationService` process tops out
around the engine's per-tuple decide cost — the GIL means more
subscribers or more sources only queue behind one interpreter.  The
paper's model partitions work by source (sources are independent: no
filter, candidate set or region ever spans two sources), which maps
directly onto process-per-shard scaling:

* **workers** — N subprocesses, each running the real networked broker
  (``python -m repro.experiments serve``: a ``DisseminationService``
  behind a :class:`~repro.transport.server.GatewayServer` plus the
  ``/healthz`` HTTP endpoint), each owning the sources that
  :func:`~repro.runtime.partition.shard_for_key` places on its shard;
* **router** — :class:`ClusterService` lives in the front-tier process
  and exposes the same async data-path surface as the broker
  (``offer`` / ``offer_many`` / ``subscribe`` / ``tick`` / ``snapshot``
  / ``close``), so the *existing* :class:`GatewayServer` fronts it
  unchanged: client connections, subscriptions and the encode-once
  decided fan-out all stay in the router while every decide runs in a
  worker process.  Router↔worker traffic speaks the binary wire codec
  of :mod:`repro.transport.codec` — the inter-process format is the
  wire format, there is no second serialization scheme;
* **supervisor** — workers are health-checked (``/healthz`` pings plus
  process liveness); a dead worker is drained and respawned, its
  sources re-registered and its subscriptions re-subscribed with their
  previously resolved bounds, and the router-side sessions resume
  transparently (subscribers see a delivery gap, never a teardown).

Backpressure is preserved end to end: a ``block``-policy stall in a
worker withholds the ingest ack, which suspends the router's inline
forward for that producer connection — a slow worker throttles only the
producers of *its* sources, while other workers' producers keep their
own pace.

Snapshots merge: totals are summed across workers, per-session rows are
concatenated, and decide percentiles are computed over the *merged* raw
latency windows via :func:`repro.metrics.latency.latency_percentiles`
(averaging per-worker percentiles would be statistically meaningless).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrics.latency import latency_percentiles
from repro.obs.metrics import merge_expositions, relabel_exposition
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    STAGE_ROUTER_FORWARD,
    STAGE_ROUTER_REASSEMBLY,
    stage_id,
)
from repro.qos.spec import QualitySpec
from repro.runtime.partition import shard_for_key
from repro.transport.client import GatewayClient, GatewayError
from repro.transport.protocol import MAX_FRAME_BYTES

__all__ = ["ClusterConfig", "ClusterService", "ClusterSession"]

#: Subscription-close reasons that are final: the worker (or the router)
#: ended the subscription on purpose, so the session must not re-attach.
_FINAL_REASONS = frozenset(
    {
        "unsubscribed",
        "overflow_disconnect",
        "shutdown",
        "frame_too_large",
        "router_closed",
        "worker_lost",
    }
)

_SID_ROUTER_FORWARD = stage_id(STAGE_ROUTER_FORWARD)
_SID_ROUTER_REASSEMBLY = stage_id(STAGE_ROUTER_REASSEMBLY)


@dataclass(frozen=True)
class ClusterConfig:
    """One worker fleet: placement plus per-worker broker knobs."""

    workers: int = 2
    #: Sources advertised at startup; clients can add more at runtime
    #: through ``ensure_source`` (placed by the same stable hash).
    sources: tuple[str, ...] = ()
    algorithm: str = "region"
    constraint_ms: Optional[float] = None
    queue_capacity: int = 16
    overflow: str = "block"
    batch_max_items: int = 8
    batch_max_delay_ms: float = 50.0
    tick_cuts: bool = True
    seed: int = 7
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Router→worker wire body codec (binary is the whole point; json is
    #: kept for A/B and debugging).
    codec: str = "binary"
    #: Supervisor cadence and tolerances.
    health_interval_s: float = 1.0
    health_misses: int = 3
    #: Lifetime respawn budget per worker slot; past it the slot is
    #: declared lost and its sessions are closed.
    respawn_limit: int = 3
    ready_timeout_s: float = 30.0
    #: How long data-path calls (and orphaned sessions) wait for a
    #: respawning worker before giving up.
    reattach_timeout_s: float = 30.0
    #: How long scraped worker observability bodies (``/metrics``
    #: bodies, folded ``/events``) stay fresh before the next request
    #: re-scrapes the fleet.  0 disables caching entirely.
    metrics_scrape_ttl_s: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.codec not in ("binary", "json"):
            raise ValueError(f"unknown codec {self.codec!r}")
        if self.metrics_scrape_ttl_s < 0:
            raise ValueError("metrics_scrape_ttl_s must be >= 0")


class _SessionQueue:
    """Queue facade over a cluster session for ``GatewayServer`` paths.

    The router's front tier inspects ``session.queue`` (capacity /
    policy / depth / closed, and ``close()`` in the shutdown
    wedge-breaker).  For a routed session the real bounded queue lives
    in the worker; this facade reports the worker-resolved bounds and
    the router-side buffer depth.
    """

    def __init__(self, session: "ClusterSession", capacity: int, policy: str):
        self._session = session
        self.capacity = capacity
        self.policy = policy

    @property
    def depth(self) -> int:
        return self._session.remote.buffered

    @property
    def closed(self) -> bool:
        return self._session.closed

    async def close(self) -> None:
        self._session.end_local("router_closed")


class _SessionBatcher:
    """Bounds-only stand-in for ``session.batcher`` (batching runs in
    the worker; the router only echoes the resolved bounds)."""

    __slots__ = ("max_items", "max_delay_ms", "pending")

    def __init__(self, max_items: int, max_delay_ms: float):
        self.max_items = max_items
        self.max_delay_ms = max_delay_ms
        self.pending = 0


class ClusterSession:
    """Router-side view of one app's subscription on some worker.

    Duck-compatible with the slice of
    :class:`~repro.service.session.SubscriberSession` the front tier
    touches: ``batches()``, ``disconnected``, ``queue`` and ``batcher``.
    When the owning worker dies mid-stream, :meth:`batches` parks until
    the supervisor re-subscribes on the respawned worker and then keeps
    yielding — the subscriber's socket never learns the worker changed.
    """

    def __init__(
        self,
        app_name: str,
        source_name: str,
        spec: str,
        remote,
        *,
        reattach_timeout_s: float,
        defaults: "ClusterConfig",
        telemetry: Optional[Telemetry] = None,
    ):
        self.app_name = app_name
        self.source_name = source_name
        self.spec = spec
        self.remote = remote
        self._telemetry = telemetry
        #: Same side channel as ``SubscriberSession``: the router's
        #: delivery pump pops ``(noted_ns, {seq: pairs})`` per batch to
        #: extend traces with its own queue/write stages.
        self._trace_notes: dict = {}
        resolved = remote.resolved

        def bound(key: str, fallback):
            # None-check, not truthiness: 0.0 is a legitimate resolved
            # batching delay (immediate flush) and must survive the
            # echo to the client and any respawn re-subscribe.
            value = resolved.get(key)
            return fallback if value is None else value

        self.queue = _SessionQueue(
            self,
            int(bound("queue_capacity", defaults.queue_capacity)),
            str(bound("overflow", defaults.overflow)),
        )
        self.batcher = _SessionBatcher(
            int(bound("batch_max_items", defaults.batch_max_items)),
            float(bound("batch_max_delay_ms", defaults.batch_max_delay_ms)),
        )
        self.disconnected = False
        self.closed = False
        self._explicit = False
        self._reattach_timeout_s = reattach_timeout_s
        self._replacement: Optional[asyncio.Future] = None

    # -- supervisor side -------------------------------------------------
    def adopt(self, remote) -> None:
        """Swap in a respawned worker's subscription (supervisor path)."""
        self.remote = remote
        waiter = self._replacement
        if waiter is not None and not waiter.done():
            waiter.set_result(remote)

    def abandon(self, reason: str) -> None:
        """Give up on this session (worker lost for good, shutdown)."""
        self.closed = True
        waiter = self._replacement
        if waiter is not None and not waiter.done():
            waiter.set_result(None)
        self.remote.close_local(reason)

    # -- router side -----------------------------------------------------
    def mark_explicit(self) -> None:
        """The next stream end is intentional; do not re-attach."""
        self._explicit = True

    def end_local(self, reason: str) -> None:
        self._explicit = True
        self.closed = True
        # A batches() loop parked waiting for a respawn re-attach must
        # end now, not after the reattach timeout.
        waiter = self._replacement
        if waiter is not None and not waiter.done():
            waiter.set_result(None)
        self.remote.close_local(reason)

    _TRACE_NOTES_MAX = 64

    def _note_batch_traces(self, batch, remote) -> None:
        """Claim the remote's traces for this batch, stamping reassembly.

        The worker's decided frame carried each sampled tuple's stage
        pairs; the router extends them with its ``router_reassembly``
        stage (frame decode -> this batch surfacing to the front-tier
        pump) and parks them for :meth:`pop_traces`.
        """
        tele = self._telemetry
        if tele is None or not tele.tracer.enabled:
            return
        tmap: Optional[dict] = None
        now_ns = 0
        for item in batch.items:
            claimed = remote.claim_trace(item.seq)
            if claimed is None:
                continue
            pairs, noted_ns = claimed
            if not now_ns:
                now_ns = time.perf_counter_ns()
            if noted_ns:
                dur = now_ns - noted_ns
                tele.observe_stage(STAGE_ROUTER_REASSEMBLY, dur)
                pairs = pairs + [(_SID_ROUTER_REASSEMBLY, dur)]
            if tmap is None:
                tmap = {}
            tmap[item.seq] = pairs
        if tmap:
            notes = self._trace_notes
            while len(notes) >= self._TRACE_NOTES_MAX:
                del notes[next(iter(notes))]
            notes[id(batch)] = (now_ns, tmap)

    def pop_traces(self, batch):
        """Claim the traces noted for ``batch`` (``None`` if untraced)."""
        return self._trace_notes.pop(id(batch), None)

    async def batches(self):
        """Yield delivered batches across worker generations."""
        while True:
            remote = self.remote
            async for batch in remote.batches():
                self._note_batch_traces(batch, remote)
                yield batch
            reason = remote.closed_reason or "connection_closed"
            if reason == "overflow_disconnect":
                self.disconnected = True
            if self._explicit or self.closed or reason in _FINAL_REASONS:
                self.closed = True
                return
            # The worker connection died underneath a live subscription:
            # wait for the supervisor's respawn to re-attach us.
            replacement = await self._await_replacement(remote)
            if replacement is None:
                self.closed = True
                return

    async def _await_replacement(self, old):
        if self.remote is not old and self.remote.closed_reason is None:
            return self.remote  # adoption already happened
        loop = asyncio.get_running_loop()
        self._replacement = loop.create_future()
        # Re-check after installing the future: adopt() may have raced in
        # between the stream ending and the future existing.
        if self.remote is not old and self.remote.closed_reason is None:
            self._replacement = None
            return self.remote
        try:
            return await asyncio.wait_for(
                self._replacement, timeout=self._reattach_timeout_s
            )
        except asyncio.TimeoutError:
            return None
        finally:
            self._replacement = None


class _Worker:
    """One worker slot: subprocess, gateway client, owned subscriptions."""

    def __init__(self, index: int):
        self.index = index
        self.process: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None
        self.client: Optional[GatewayClient] = None
        self.ready = asyncio.Event()
        self.failed = False
        self.respawns = 0
        self.health_misses = 0
        #: app -> ClusterSession, in subscription order (the broker
        #: groups filters by session insertion order, so respawn
        #: re-subscribes in the same order).
        self.apps: dict[str, ClusterSession] = {}
        self.stdout_tail: deque[str] = deque(maxlen=8)
        self.drain_task: Optional[asyncio.Task] = None
        self.respawn_task: Optional[asyncio.Task] = None
        self.terminal_snapshot: Optional[dict] = None
        #: High-water mark of worker-local event ids already folded into
        #: the router's event log (reset on respawn: fresh process,
        #: fresh id space).
        self.events_cursor = 0
        #: ``(monotonic_ts, relabeled_text)`` of the last successful
        #: ``/metrics`` scrape; failures are never cached.
        self.metrics_cache: Optional[tuple[float, str]] = None


class ClusterService:
    """Front-tier router over N worker broker processes.

    Presents the broker's async data-path surface (so a
    :class:`~repro.transport.server.GatewayServer` can front it), routes
    every source to its worker by stable BLAKE2 key hashing, supervises
    the fleet, and merges observability.
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config
        self._workers = [_Worker(i) for i in range(config.workers)]
        #: Source registry (insertion-ordered); values are shard indexes.
        self._sources: dict[str, int] = {}
        self._apps: dict[str, ClusterSession] = {}
        self._monitor_task: Optional[asyncio.Task] = None
        self._started = False
        self._closed = False
        self._final_snapshot: Optional[dict] = None
        self.telemetry = telemetry
        #: Telemetry handed to the router->worker gateway clients: it
        #: makes them *offer* the trace feature (so workers send decided
        #: traces back) but never auto-sample — the router attaches the
        #: carried trace pairs explicitly on the forward path.
        self._client_telemetry: Optional[Telemetry] = None
        #: Monotonic timestamp of the last fleet events fold (TTL
        #: throttle for back-to-back ``/events`` polls).
        self._events_pull_ts: Optional[float] = None
        self._m_scrape_cache = None
        if telemetry is not None:
            self._client_telemetry = Telemetry(
                sample_period=0, event_capacity=1, trace_capacity=1
            )
            registry = telemetry.registry
            m_alive = registry.gauge(
                "repro_cluster_worker_alive",
                "1 when the worker process is running and ready.",
                ("worker",),
            )
            m_respawns = registry.counter(
                "repro_cluster_worker_respawns_total",
                "Supervisor respawns per worker slot.",
                ("worker",),
            )
            m_sessions = registry.gauge(
                "repro_cluster_sessions", "Live routed subscriber sessions."
            )
            self._m_placements = registry.counter(
                "repro_cluster_placement_moves_total",
                "Source placements onto workers.",
                ("worker",),
            )
            self._m_scrape_cache = registry.counter(
                "repro_cluster_scrape_cache_total",
                "Worker observability scrapes answered from the TTL "
                "cache (hit) vs re-fetched (miss).",
                ("surface", "result"),
            )

            def _collect_fleet() -> None:
                for worker in self._workers:
                    label = str(worker.index)
                    alive = (
                        worker.process is not None
                        and worker.process.returncode is None
                        and worker.ready.is_set()
                    )
                    m_alive.labels(label).set(1.0 if alive else 0.0)
                    m_respawns.labels(label).value = float(worker.respawns)
                m_sessions.set(float(self.session_count()))

            registry.register_collector(_collect_fleet)

    def _emit(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.events.emit(kind, **fields)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_of(self, source_name: str) -> int:
        """Deterministic worker index for a source (stable across runs)."""
        return shard_for_key(source_name, self.config.workers)

    def _shard_sources(self, index: int) -> list[str]:
        return [s for s, shard in self._sources.items() if shard == index]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        for name in self.config.sources:
            self._sources.setdefault(name, self.shard_of(name))
        results = await asyncio.gather(
            *(self._launch(worker) for worker in self._workers),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            await self._terminate_workers()
            raise failures[0]
        for worker in self._workers:
            worker.ready.set()
        self._monitor_task = asyncio.ensure_future(self._monitor())

    def _worker_command(self, worker: _Worker) -> list[str]:
        cfg = self.config
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--http-port",
            "0",
            "--sources",
            ",".join(self._shard_sources(worker.index)),
            "--algorithm",
            cfg.algorithm,
            "--queue-capacity",
            str(cfg.queue_capacity),
            "--overflow",
            cfg.overflow,
            "--batch-items",
            str(cfg.batch_max_items),
            "--batch-delay-ms",
            str(cfg.batch_max_delay_ms),
            "--max-frame-bytes",
            str(cfg.max_frame_bytes),
            "--seed",
            str(cfg.seed),
            # Workers never self-watch; health analysis runs once, at
            # the router, over the merged fleet surfaces.
            "--watch-interval",
            "0",
        ]
        if cfg.constraint_ms is not None:
            command += ["--constraint-ms", str(cfg.constraint_ms)]
        if not cfg.tick_cuts:
            command.append("--no-tick-cuts")
        if self.telemetry is not None:
            command += [
                "--trace-sample",
                str(self.telemetry.tracer.sample_period),
            ]
        else:
            command.append("--no-telemetry")
        return command

    @staticmethod
    def _signal(process: asyncio.subprocess.Process, *, kill: bool) -> None:
        """Best-effort terminate/kill (the process may already be gone)."""
        try:
            if kill:
                process.kill()
            else:
                process.terminate()
        except ProcessLookupError:
            pass

    @staticmethod
    def _worker_env() -> dict:
        """Child env that can import repro even from a source checkout."""
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        return env

    async def _launch(self, worker: _Worker) -> None:
        """Spawn one worker process and connect its gateway client."""
        process = await asyncio.create_subprocess_exec(
            *self._worker_command(worker),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=self._worker_env(),
            # The terminal snapshot is one JSON line that grows with
            # retired sessions; the default 64 KiB readline limit would
            # kill the drain task on a churn-heavy worker.
            limit=1 << 23,
        )
        worker.process = process
        worker.terminal_snapshot = None
        worker.health_misses = 0
        try:
            ready_line = await asyncio.wait_for(
                self._read_ready_line(process),
                timeout=self.config.ready_timeout_s,
            )
            # "gateway listening on HOST:PORT, http on HOST:PORT"
            parts = ready_line.strip().split(", http on ")
            worker.port = int(parts[0].rsplit(":", 1)[1])
            worker.http_port = (
                int(parts[1].rsplit(":", 1)[1]) if len(parts) > 1 else None
            )
            worker.drain_task = asyncio.ensure_future(
                self._drain_stdout(worker)
            )
            worker.client = await GatewayClient.connect(
                "127.0.0.1",
                worker.port,
                codec=self.config.codec,
                max_frame_bytes=self.config.max_frame_bytes,
                telemetry=self._client_telemetry,
            )
            worker.events_cursor = 0
            worker.metrics_cache = None
            self._emit(
                "worker_spawn",
                worker=worker.index,
                pid=process.pid,
                port=worker.port,
                http_port=worker.http_port,
            )
        except BaseException:
            if process.returncode is None:
                self._signal(process, kill=True)
                await process.wait()
            raise

    @staticmethod
    async def _read_ready_line(process: asyncio.subprocess.Process) -> str:
        while True:
            line = await process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"worker exited before its ready line "
                    f"(returncode={process.returncode})"
                )
            text = line.decode("utf-8", "replace")
            if "listening on" in text:
                return text

    async def _drain_stdout(self, worker: _Worker) -> None:
        """Keep the worker's stdout pipe empty; remember the tail.

        The last line a gracefully stopped worker prints is its terminal
        snapshot JSON — :meth:`close` merges those for the final stats.
        """
        process = worker.process
        while True:
            try:
                line = await process.stdout.readline()
            except ValueError:
                # A line overran even the raised stream limit; consume
                # the buffered bytes so the loop makes progress instead
                # of dying (teardown awaits this task).
                if not await process.stdout.read(1 << 16):
                    return
                continue
            if not line:
                return
            worker.stdout_tail.append(line.decode("utf-8", "replace").strip())

    async def close(self) -> dict:
        """Stop the fleet gracefully; returns the merged final snapshot.

        Mirrors the broker's ``close()`` contract as the front tier sees
        it: after this returns, every session's remaining batches are
        either in flight to the router's pumps or accounted as dropped.
        Workers get SIGTERM (their own graceful path final-flushes every
        batcher onto our sockets and prints a terminal snapshot), and
        the merged terminal totals become the router's final snapshot.
        """
        if self._closed:
            return dict(self._final_snapshot or {})
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except (asyncio.CancelledError, Exception):
                # A monitor that already died (e.g. a kill() racing a
                # process exit) must not abort shutdown: the workers
                # below still need terminating.
                pass
        for worker in self._workers:
            if worker.respawn_task is not None and not worker.respawn_task.done():
                worker.respawn_task.cancel()
                try:
                    await worker.respawn_task
                except (asyncio.CancelledError, Exception):
                    pass
        # Latency windows must be read before the workers die; terminal
        # totals come from the terminal snapshots afterwards.
        live = await asyncio.gather(
            *(self._worker_snapshot(worker) for worker in self._workers)
        )
        window: list[float] = []
        for snapshot in live:
            if snapshot is not None:
                window.extend(snapshot.get("decide_window_ms", ()))
        await self._terminate_workers()
        terminals = []
        for worker in self._workers:
            terminal = self._parse_terminal(worker)
            if terminal is None:
                # Crashed or unreachable worker: fall back to its last
                # live snapshot so totals degrade, not vanish.
                terminal = live[worker.index] if worker.index < len(live) else None
            if terminal is not None:
                terminals.append(terminal)
        for session in list(self._apps.values()):
            if not session.closed:
                session.abandon("shutdown")
        self._final_snapshot = self._merge(terminals, window_override=window)
        return dict(self._final_snapshot)

    async def _terminate_workers(self) -> None:
        for worker in self._workers:
            process = worker.process
            if process is not None and process.returncode is None:
                self._signal(process, kill=False)
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            try:
                await asyncio.wait_for(process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                self._signal(process, kill=True)
                await process.wait()
            if worker.drain_task is not None:
                await worker.drain_task
                worker.drain_task = None
            if worker.client is not None:
                await worker.client.close(send_bye=False)
                worker.client = None
            worker.ready.clear()

    @staticmethod
    def _parse_terminal(worker: _Worker) -> Optional[dict]:
        for line in reversed(worker.stdout_tail):
            if line.startswith("{"):
                try:
                    return json.loads(line)
                except json.JSONDecodeError:
                    continue
        return None

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _schedule_respawn(self, worker: _Worker) -> None:
        """Start a per-worker respawn task (at most one per slot).

        Respawns run concurrently: one slot's slow (or repeatedly
        failing) replacement must not stall health checks — or the
        respawn — of the rest of the fleet.
        """
        if worker.respawn_task is not None and not worker.respawn_task.done():
            return
        # A dead worker must not keep serving its last scrape from cache.
        worker.metrics_cache = None
        worker.respawn_task = asyncio.ensure_future(self._respawn(worker))

    async def _monitor(self) -> None:
        cfg = self.config
        while True:
            await asyncio.sleep(cfg.health_interval_s)
            for worker in self._workers:
                if worker.failed:
                    continue
                if (
                    worker.respawn_task is not None
                    and not worker.respawn_task.done()
                ):
                    continue
                process = worker.process
                if process is None or process.returncode is not None:
                    self._emit(
                        "worker_death",
                        worker=worker.index,
                        returncode=(
                            process.returncode if process is not None else None
                        ),
                    )
                    self._schedule_respawn(worker)
                    continue
                if not worker.ready.is_set():
                    continue
                if await self._healthz(worker):
                    worker.health_misses = 0
                    continue
                worker.health_misses += 1
                if worker.health_misses >= cfg.health_misses:
                    # Alive but unresponsive: treat as dead.
                    self._emit(
                        "worker_death",
                        worker=worker.index,
                        reason="unresponsive",
                        misses=worker.health_misses,
                    )
                    self._signal(process, kill=True)
                    await process.wait()
                    self._schedule_respawn(worker)

    async def _http_get(
        self, worker: _Worker, path: str, *, timeout_s: float = 2.0
    ) -> Optional[bytes]:
        """One-shot HTTP GET against a worker's snapshot endpoint.

        Returns the response body on a 200, ``None`` on any failure —
        a worker dying mid-scrape degrades the merged view, never the
        scrape itself.
        """
        if worker.http_port is None:
            return None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", worker.http_port),
                timeout=timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\n"
                "Host: 127.0.0.1\r\nConnection: close\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            response = await asyncio.wait_for(reader.read(), timeout=timeout_s)
            head, _, body = response.partition(b"\r\n\r\n")
            if b" 200 " not in head.split(b"\r\n", 1)[0]:
                return None
            return body
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _healthz(self, worker: _Worker) -> bool:
        if worker.http_port is None:
            return True
        return await self._http_get(worker, "/healthz") is not None

    async def _respawn(self, worker: _Worker) -> None:
        """Drain a dead worker slot and bring up a replacement.

        The fresh process gets the slot's current source set, then every
        session the slot owned is re-subscribed with its previously
        resolved bounds and re-attached, so router-side pumps resume.
        The decided state of the dead process is gone — subscribers see
        a delivery gap, which is the paper's timeliness-over-
        completeness stance applied to process failure.
        """
        worker.ready.clear()
        self._emit("drain_start", worker=worker.index)
        if worker.client is not None:
            await worker.client.close(send_bye=False)
            worker.client = None
        process = worker.process
        if process is not None:
            if process.returncode is None:
                self._signal(process, kill=True)
            await process.wait()
        if worker.drain_task is not None:
            await worker.drain_task
            worker.drain_task = None
        self._emit("drain_end", worker=worker.index)
        while worker.respawns < self.config.respawn_limit:
            worker.respawns += 1
            try:
                await self._launch(worker)
                for app, session in list(worker.apps.items()):
                    if session.closed:
                        worker.apps.pop(app, None)
                        # Identity check: the name may have been re-used
                        # by a live session on another worker.
                        if self._apps.get(app) is session:
                            del self._apps[app]
                        continue
                    remote = await worker.client.subscribe(
                        app,
                        session.source_name,
                        session.spec,
                        queue_capacity=session.queue.capacity,
                        overflow=session.queue.policy,
                        batch_max_items=session.batcher.max_items,
                        batch_max_delay_ms=session.batcher.max_delay_ms,
                    )
                    session.adopt(remote)
                worker.ready.set()
                self._emit(
                    "worker_respawn",
                    worker=worker.index,
                    respawns=worker.respawns,
                )
                return
            except Exception:
                process = worker.process
                if process is not None and process.returncode is None:
                    self._signal(process, kill=True)
                    await process.wait()
                if worker.client is not None:
                    await worker.client.close(send_bye=False)
                    worker.client = None
                await asyncio.sleep(0.2 * worker.respawns)
        worker.failed = True
        self._emit(
            "worker_lost", worker=worker.index, respawns=worker.respawns
        )
        for app, session in list(worker.apps.items()):
            session.abandon("worker_lost")
            worker.apps.pop(app, None)
            if self._apps.get(app) is session:
                del self._apps[app]

    async def _worker_for(self, source_name: str) -> _Worker:
        worker = self._workers[self.shard_of(source_name)]
        if worker.failed:
            raise RuntimeError(
                f"worker {worker.index} (sources like {source_name!r}) is lost"
            )
        if not worker.ready.is_set():
            try:
                await asyncio.wait_for(
                    worker.ready.wait(), timeout=self.config.reattach_timeout_s
                )
            except asyncio.TimeoutError:
                raise RuntimeError(
                    f"worker {worker.index} did not come back in time"
                ) from None
            if worker.failed:
                raise RuntimeError(f"worker {worker.index} is lost")
        return worker

    # ------------------------------------------------------------------
    # Topology (the GatewayServer-facing surface)
    # ------------------------------------------------------------------
    def sources(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def has_source(self, source_name: str) -> bool:
        return source_name in self._sources

    async def add_source(self, source_name: str) -> None:
        """Advertise a source, registering it on its worker."""
        if source_name in self._sources:
            return
        shard = self.shard_of(source_name)
        self._sources[source_name] = shard
        try:
            worker = await self._worker_for(source_name)
            await worker.client.ensure_source(source_name)
            if self.telemetry is not None:
                self._m_placements.labels(str(shard)).inc()
                self._emit(
                    "source_placed", source=source_name, worker=shard
                )
        except (ConnectionError, GatewayError) as exc:
            del self._sources[source_name]
            raise RuntimeError(f"cannot place source {source_name!r}: {exc}") from exc
        except BaseException:
            del self._sources[source_name]
            raise

    def session_count(self) -> int:
        return sum(0 if s.closed else 1 for s in self._apps.values())

    def subscriptions(self, source_name: str) -> list[tuple[str, str]]:
        if source_name not in self._sources:
            raise KeyError(f"unknown source {source_name!r}")
        return [
            (s.app_name, s.spec)
            for s in self._apps.values()
            if s.source_name == source_name and not s.closed
        ]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _require_source(self, source_name: str) -> None:
        if source_name not in self._sources:
            raise KeyError(f"unknown source {source_name!r}")

    async def offer(self, source_name: str, item) -> int:
        """Route one tuple to its source's worker; ack-for-ack.

        The worker's ack *is* the broker's completion: a block-policy
        stall inside the worker withholds it, which suspends exactly the
        router read loop that forwarded this frame — per-connection
        backpressure survives the extra hop.
        """
        self._require_source(source_name)
        worker = await self._worker_for(source_name)
        trace = self._forward_trace(source_name, item.seq)
        try:
            emissions = await worker.client.ingest(
                source_name, item, trace=trace
            )
        except (ConnectionError, GatewayError) as exc:
            raise RuntimeError(
                f"worker {worker.index} failed ingest for {source_name!r}: {exc}"
            ) from exc
        return int(emissions or 0)

    def _forward_trace(self, source_name: str, seq: int) -> Optional[list]:
        """Close the ``router_forward`` stage and hand the pairs over.

        The front-tier gateway opened the trace in the router's bag at
        frame decode; the forward write to the worker closes it here —
        the worker's broker takes the relay from the wire copy.
        """
        tele = self.telemetry
        if tele is None or not tele.tracer.enabled:
            return None
        key = (source_name, seq)
        if key not in tele.bag:
            return None
        now_ns = time.perf_counter_ns()
        dur = tele.bag.stamp(key, _SID_ROUTER_FORWARD, now_ns)
        if dur is not None:
            tele.observe_stage(STAGE_ROUTER_FORWARD, dur)
        return tele.bag.pop(key)

    def _forward_traces(
        self, source_name: str, items: Sequence
    ) -> Optional[dict]:
        tele = self.telemetry
        if tele is None or not tele.tracer.enabled:
            return None
        traces = {
            item.seq: pairs
            for item in items
            for pairs in (self._forward_trace(source_name, item.seq),)
            if pairs
        }
        return traces or None

    async def offer_many(self, source_name: str, items: Sequence) -> int:
        self._require_source(source_name)
        if not items:
            return 0
        worker = await self._worker_for(source_name)
        traces = self._forward_traces(source_name, items)
        try:
            emissions = await worker.client.ingest_many(
                source_name, items, traces=traces
            )
        except (ConnectionError, GatewayError) as exc:
            raise RuntimeError(
                f"worker {worker.index} failed ingest for {source_name!r}: {exc}"
            ) from exc
        return int(emissions or 0)

    async def tick(self, now_ms: float, source_name: Optional[str] = None) -> int:
        """Broadcast a timer tick (or route a per-source one)."""
        if source_name is not None:
            self._require_source(source_name)
            worker = await self._worker_for(source_name)
            targets = [worker]
        else:
            targets = [
                worker
                for worker in self._workers
                if not worker.failed and worker.ready.is_set()
            ]

        async def one(worker: _Worker) -> int:
            try:
                return await worker.client.tick(now_ms)
            except (ConnectionError, GatewayError):
                return 0

        return sum(await asyncio.gather(*(one(w) for w in targets)))

    async def subscribe(
        self,
        app_name: str,
        source_name: str,
        spec: str,
        node: Optional[str] = None,
        *,
        queue_capacity: Optional[int] = None,
        overflow: Optional[str] = None,
        batch_max_items: Optional[int] = None,
        batch_max_delay_ms: Optional[float] = None,
        qos: Optional[QualitySpec] = None,
    ) -> ClusterSession:
        """Attach a subscriber on its source's worker.

        Same signature the broker exposes (the front tier calls either
        interchangeably); QoS resolution happens in the worker, and the
        resolved bounds come back with the subscribe reply.
        """
        self._require_source(source_name)
        if app_name in self._apps and not self._apps[app_name].closed:
            raise ValueError(f"app {app_name!r} is already subscribed")
        worker = await self._worker_for(source_name)
        try:
            remote = await worker.client.subscribe(
                app_name,
                source_name,
                spec,
                qos=qos,
                queue_capacity=queue_capacity,
                overflow=overflow,
                batch_max_items=batch_max_items,
                batch_max_delay_ms=batch_max_delay_ms,
            )
        except GatewayError as exc:
            raise ValueError(str(exc)) from exc
        except ConnectionError as exc:
            raise RuntimeError(
                f"worker {worker.index} failed subscribe: {exc}"
            ) from exc
        session = ClusterSession(
            app_name,
            source_name,
            spec,
            remote,
            reattach_timeout_s=self.config.reattach_timeout_s,
            defaults=self.config,
            telemetry=self.telemetry,
        )
        self._apps[app_name] = session
        worker.apps[app_name] = session
        self._emit(
            "subscribe", app=app_name, source=source_name, worker=worker.index
        )
        return session

    async def unsubscribe(self, app_name: str) -> None:
        # A locally-closed session (oversized decided frame, shutdown
        # wedge-break) must still be unsubscribable: the *worker* still
        # holds the registration, and leaving it would poison the app
        # name on that worker until a respawn.
        session = self._apps.get(app_name)
        if session is None:
            raise KeyError(f"app {app_name!r} is not subscribed")
        session.mark_explicit()
        worker = self._workers[self.shard_of(session.source_name)]
        self._apps.pop(app_name, None)
        worker.apps.pop(app_name, None)
        forwarded = False
        # Forward whenever a client exists, ready flag or not: during a
        # respawn the fresh worker may already hold this app's
        # re-subscription before `ready` is set, and skipping the
        # forward would leak the registration there.  (While the client
        # is still None mid-launch, popping the app above plus the
        # closed flag set below keeps the respawn's re-subscribe loop
        # from recreating it.)
        if worker.client is not None:
            try:
                await worker.client.unsubscribe(app_name)
                forwarded = True
            except (ConnectionError, GatewayError):
                pass
        if forwarded and not session.closed:
            # Do NOT end the remote locally here: the worker's
            # final-flushed decided frames may still be in flight behind
            # the unsubscribe ack (its pump writes and its dispatch
            # reply are ordered independently), and a local close would
            # drop them.  The worker's `closed` frame ends the stream
            # after every delivery.
            return
        session.end_local("unsubscribed")

    async def re_filter(self, app_name: str, new_spec: str) -> None:
        session = self._apps.get(app_name)
        if session is None or session.closed:
            raise KeyError(f"app {app_name!r} is not subscribed")
        worker = await self._worker_for(session.source_name)
        try:
            await worker.client.re_filter(app_name, new_spec)
        except GatewayError as exc:
            raise ValueError(str(exc)) from exc
        except ConnectionError as exc:
            raise RuntimeError(
                f"worker {worker.index} failed re_filter: {exc}"
            ) from exc
        session.spec = new_spec

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _count_scrape(self, surface: str, result: str, n: int = 1) -> None:
        if self._m_scrape_cache is not None and n:
            self._m_scrape_cache.labels(surface, result).inc(n)

    async def metrics_text(self) -> str:
        """Cluster-merged Prometheus exposition.

        The router's own registry is relabeled ``worker="router"``; each
        live worker's ``/metrics`` is scraped over its snapshot HTTP
        port and relabeled with its slot index.  A worker that cannot be
        scraped (dead, mid-respawn) is skipped — the merged text
        degrades, the scrape never fails.

        Per-worker bodies are cached for ``metrics_scrape_ttl_s`` so a
        fleet fronting several scrapers (Prometheus + a Watchtower) is
        not re-scraped for every request.
        """
        parts: list[str] = []
        if self.telemetry is not None:
            parts.append(
                relabel_exposition(
                    self.telemetry.registry.render(), {"worker": "router"}
                )
            )
        ttl = self.config.metrics_scrape_ttl_s
        now = time.monotonic()
        stale: list[_Worker] = []
        cached: dict[int, str] = {}
        for worker in self._workers:
            entry = worker.metrics_cache
            if entry is not None and ttl > 0 and now - entry[0] < ttl:
                cached[worker.index] = entry[1]
            else:
                stale.append(worker)
        self._count_scrape("metrics", "hit", len(cached))
        self._count_scrape("metrics", "miss", len(stale))
        bodies = await asyncio.gather(
            *(self._http_get(w, "/metrics") for w in stale)
        )
        for worker, body in zip(stale, bodies):
            if body:
                text = relabel_exposition(
                    body.decode("utf-8", "replace"),
                    {"worker": str(worker.index)},
                )
                worker.metrics_cache = (now, text)
                cached[worker.index] = text
        for worker in self._workers:
            part = cached.get(worker.index)
            if part:
                parts.append(part)
        return merge_expositions(parts)

    async def pull_events(self) -> None:
        """Fold every live worker's structured events into the router log.

        Per-worker cursors mean each worker event is ingested at most
        once; a respawned worker restarts its id space, and its cursor
        was reset at launch.  Unreachable workers are skipped.  Folds
        themselves are throttled to one fleet round-trip per
        ``metrics_scrape_ttl_s`` — repeated ``/events`` polls inside the
        TTL answer from the already-folded router log.
        """
        tele = self.telemetry
        if tele is None:
            return
        ttl = self.config.metrics_scrape_ttl_s
        now = time.monotonic()
        if (
            self._events_pull_ts is not None
            and ttl > 0
            and now - self._events_pull_ts < ttl
        ):
            self._count_scrape("events", "hit")
            return
        self._events_pull_ts = now
        self._count_scrape("events", "miss")
        bodies = await asyncio.gather(
            *(
                self._http_get(w, f"/events?since={w.events_cursor}")
                for w in self._workers
            )
        )
        for worker, body in zip(self._workers, bodies):
            if not body:
                continue
            records: list[dict] = []
            top = worker.events_cursor
            for line in body.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                records.append(record)
                top = max(top, int(record.get("id", 0)))
            if records:
                tele.events.ingest(records, worker=worker.index)
                worker.events_cursor = top

    async def _worker_snapshot(self, worker: _Worker) -> Optional[dict]:
        if worker.failed or worker.client is None or not worker.ready.is_set():
            return None
        try:
            # Bounded: a worker wedged behind a stalled consumer must
            # not hang fleet-wide snapshots (or graceful shutdown).
            return await asyncio.wait_for(
                worker.client.snapshot(window=True), timeout=5.0
            )
        except (ConnectionError, GatewayError, asyncio.TimeoutError):
            return None

    async def snapshot(self) -> dict:
        """Merged fleet snapshot as a plain dict.

        Totals are summed, session rows concatenated, and the decide
        percentiles recomputed over the concatenation of every worker's
        raw latency window.
        """
        if self._final_snapshot is not None:
            return dict(self._final_snapshot)
        per_worker = await asyncio.gather(
            *(self._worker_snapshot(worker) for worker in self._workers)
        )
        return self._merge([s for s in per_worker if s is not None])

    def _merge(
        self,
        snapshots: list[dict],
        *,
        window_override: Optional[list[float]] = None,
    ) -> dict:
        window: list[float] = (
            list(window_override) if window_override is not None else []
        )
        if window_override is None:
            for snapshot in snapshots:
                window.extend(snapshot.get("decide_window_ms", ()))
        percentiles = latency_percentiles(window, (50, 99))

        def total(key: str) -> int:
            return sum(int(s.get(key, 0)) for s in snapshots)

        sessions = [row for s in snapshots for row in s.get("sessions", ())]
        retired = [row for s in snapshots for row in s.get("retired", ())]
        return {
            "now_ms": max((float(s.get("now_ms", 0.0)) for s in snapshots), default=0.0),
            "sources": list(self._sources),
            "session_count": total("session_count"),
            "offered": total("offered"),
            "decided_emissions": total("decided_emissions"),
            "delivered_tuples": total("delivered_tuples"),
            "dropped_tuples": total("dropped_tuples"),
            "regroups": total("regroups"),
            # A broadcast tick reaches every worker and each counts it
            # once; max (not sum) keeps the merged counter comparable to
            # a single-process run of the same driving.
            "ticks": max((int(s.get("ticks", 0)) for s in snapshots), default=0),
            "cuts_triggered": total("cuts_triggered"),
            "decide_p50_ms": percentiles["p50"],
            "decide_p99_ms": percentiles["p99"],
            "sessions": sessions,
            "retired": retired,
            "workers": [
                {
                    "index": worker.index,
                    "port": worker.port,
                    "alive": worker.process is not None
                    and worker.process.returncode is None,
                    "ready": worker.ready.is_set(),
                    "failed": worker.failed,
                    "respawns": worker.respawns,
                    "sources": self._shard_sources(worker.index),
                    "apps": [
                        a for a, s in worker.apps.items() if not s.closed
                    ],
                }
                for worker in self._workers
            ],
        }
