"""Multi-process source sharding behind a front-tier router.

One :class:`~repro.service.broker.DisseminationService` process tops out
around the engine's per-tuple decide cost — the GIL means more
subscribers or more sources only queue behind one interpreter.  The
paper's model partitions work by source (sources are independent: no
filter, candidate set or region ever spans two sources), which maps
directly onto process-per-shard scaling:

* **workers** — N subprocesses, each running the real networked broker
  (``python -m repro.experiments serve``: a ``DisseminationService``
  behind a :class:`~repro.transport.server.GatewayServer` plus the
  ``/healthz`` HTTP endpoint), each owning the sources that
  :func:`~repro.runtime.partition.shard_for_key` places on its shard;
* **router** — :class:`ClusterService` lives in the front-tier process
  and exposes the same async data-path surface as the broker
  (``offer`` / ``offer_many`` / ``subscribe`` / ``tick`` / ``snapshot``
  / ``close``), so the *existing* :class:`GatewayServer` fronts it
  unchanged: client connections, subscriptions and the encode-once
  decided fan-out all stay in the router while every decide runs in a
  worker process.  Router↔worker traffic speaks the binary wire codec
  of :mod:`repro.transport.codec` — the inter-process format is the
  wire format, there is no second serialization scheme;
* **supervisor** — workers are health-checked (``/healthz`` pings plus
  process liveness); a dead worker is drained and respawned, its
  sources re-registered and its subscriptions re-subscribed with their
  previously resolved bounds, and the router-side sessions resume
  transparently (subscribers see a delivery gap, never a teardown).

Backpressure is preserved end to end: a ``block``-policy stall in a
worker withholds the ingest ack, which suspends the router's inline
forward for that producer connection — a slow worker throttles only the
producers of *its* sources, while other workers' producers keep their
own pace.

Snapshots merge: totals are summed across workers, per-session rows are
concatenated, and decide percentiles are computed over the *merged* raw
latency windows via :func:`repro.metrics.latency.latency_percentiles`
(averaging per-worker percentiles would be statistically meaningless).
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import time
from collections import deque
from contextlib import AsyncExitStack
from dataclasses import dataclass, replace as dc_replace
from typing import Optional, Sequence

from repro.metrics.latency import latency_percentiles
from repro.obs.metrics import merge_expositions, relabel_exposition
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    STAGE_ROUTER_FORWARD,
    STAGE_ROUTER_REASSEMBLY,
    stage_id,
)
from repro.qos.controller import DegradationConfig, policy_to_profile
from repro.qos.spec import DegradationPolicy, QualitySpec
from repro.runtime.partition import HashRing
from repro.transport.client import GatewayClient, GatewayError
from repro.transport.protocol import MAX_FRAME_BYTES

__all__ = ["ClusterConfig", "ClusterService", "ClusterSession"]

#: Subscription-close reasons that are final: the worker (or the router)
#: ended the subscription on purpose, so the session must not re-attach.
_FINAL_REASONS = frozenset(
    {
        "unsubscribed",
        "overflow_disconnect",
        "shutdown",
        "frame_too_large",
        "router_closed",
        "worker_lost",
    }
)

_SID_ROUTER_FORWARD = stage_id(STAGE_ROUTER_FORWARD)
_SID_ROUTER_REASSEMBLY = stage_id(STAGE_ROUTER_REASSEMBLY)


@dataclass(frozen=True)
class ClusterConfig:
    """One worker fleet: placement plus per-worker broker knobs."""

    workers: int = 2
    #: Sources advertised at startup; clients can add more at runtime
    #: through ``ensure_source`` (placed by the same stable hash).
    sources: tuple[str, ...] = ()
    algorithm: str = "region"
    constraint_ms: Optional[float] = None
    queue_capacity: int = 16
    overflow: str = "block"
    batch_max_items: int = 8
    batch_max_delay_ms: float = 50.0
    tick_cuts: bool = True
    seed: int = 7
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Router→worker wire body codec (binary is the whole point; json is
    #: kept for A/B and debugging).
    codec: str = "binary"
    #: Supervisor cadence and tolerances.
    health_interval_s: float = 1.0
    health_misses: int = 3
    #: Sliding-window respawn budget per worker slot: more than
    #: ``respawns_per_window`` respawn attempts inside
    #: ``respawn_window_s`` declares the slot lost (a crash-looping
    #: worker paces out via exponential backoff instead of burning a
    #: lifetime budget in milliseconds; an occasional crash per hour
    #: never exhausts anything).
    respawns_per_window: int = 3
    respawn_window_s: float = 60.0
    #: Exponential backoff between respawn attempts (with +-50% jitter
    #: so a correlated fleet-wide crash doesn't respawn in lockstep).
    respawn_backoff_base_s: float = 0.2
    respawn_backoff_max_s: float = 5.0
    #: Warm standby workers.  Standby ``k`` mirrors primary ``k``: same
    #: sources, shadow subscriptions, and every offer fed to both — so
    #: a failover adopts the standby's live engine state instead of
    #: cold-respawning, and subscribers' streams splice byte-identically.
    #: Primaries beyond the standby count fall back to cold respawn.
    standby: int = 0
    #: With an attached remediation loop (``--self-heal``) the
    #: supervisor defers worker-death actuation this long so the
    #: detect -> propose -> verify -> execute pipeline owns the fix;
    #: past the grace it falls back to direct supervision (a dead
    #: remediation loop must not strand a dead worker).
    deferred_heal_grace_s: float = 10.0
    #: Whole-handshake bound for one live source migration (gating
    #: offers, draining, journal transfer, replay).
    migrate_timeout_s: float = 30.0
    ready_timeout_s: float = 30.0
    #: How long data-path calls (and orphaned sessions) wait for a
    #: respawning worker before giving up.
    reattach_timeout_s: float = 30.0
    #: How long scraped worker observability bodies (``/metrics``
    #: bodies, folded ``/events``) stay fresh before the next request
    #: re-scrapes the fleet.  0 disables caching entirely.
    metrics_scrape_ttl_s: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.codec not in ("binary", "json"):
            raise ValueError(f"unknown codec {self.codec!r}")
        if self.metrics_scrape_ttl_s < 0:
            raise ValueError("metrics_scrape_ttl_s must be >= 0")
        if self.standby < 0 or self.standby > self.workers:
            raise ValueError("standby must be between 0 and workers")
        if self.respawns_per_window < 1:
            raise ValueError("respawns_per_window must be at least 1")


class _SessionQueue:
    """Queue facade over a cluster session for ``GatewayServer`` paths.

    The router's front tier inspects ``session.queue`` (capacity /
    policy / depth / closed, and ``close()`` in the shutdown
    wedge-breaker).  For a routed session the real bounded queue lives
    in the worker; this facade reports the worker-resolved bounds and
    the router-side buffer depth.
    """

    def __init__(self, session: "ClusterSession", capacity: int, policy: str):
        self._session = session
        self.capacity = capacity
        self.policy = policy

    @property
    def depth(self) -> int:
        return self._session.remote.buffered

    @property
    def closed(self) -> bool:
        return self._session.closed

    async def close(self) -> None:
        self._session.end_local("router_closed")


class _SessionBatcher:
    """Bounds-only stand-in for ``session.batcher`` (batching runs in
    the worker; the router only echoes the resolved bounds)."""

    __slots__ = ("max_items", "max_delay_ms", "pending")

    def __init__(self, max_items: int, max_delay_ms: float):
        self.max_items = max_items
        self.max_delay_ms = max_delay_ms
        self.pending = 0


class ClusterSession:
    """Router-side view of one app's subscription on some worker.

    Duck-compatible with the slice of
    :class:`~repro.service.session.SubscriberSession` the front tier
    touches: ``batches()``, ``disconnected``, ``queue`` and ``batcher``.
    When the owning worker dies mid-stream, :meth:`batches` parks until
    the supervisor re-subscribes on the respawned worker and then keeps
    yielding — the subscriber's socket never learns the worker changed.
    """

    def __init__(
        self,
        app_name: str,
        source_name: str,
        spec: str,
        remote,
        *,
        reattach_timeout_s: float,
        defaults: "ClusterConfig",
        telemetry: Optional[Telemetry] = None,
    ):
        self.app_name = app_name
        self.source_name = source_name
        self.spec = spec
        self.remote = remote
        self._telemetry = telemetry
        #: Same side channel as ``SubscriberSession``: the router's
        #: delivery pump pops ``(noted_ns, {seq: pairs})`` per batch to
        #: extend traces with its own queue/write stages.
        self._trace_notes: dict = {}
        resolved = remote.resolved

        def bound(key: str, fallback):
            # None-check, not truthiness: 0.0 is a legitimate resolved
            # batching delay (immediate flush) and must survive the
            # echo to the client and any respawn re-subscribe.
            value = resolved.get(key)
            return fallback if value is None else value

        self.queue = _SessionQueue(
            self,
            int(bound("queue_capacity", defaults.queue_capacity)),
            str(bound("overflow", defaults.overflow)),
        )
        self.batcher = _SessionBatcher(
            int(bound("batch_max_items", defaults.batch_max_items)),
            float(bound("batch_max_delay_ms", defaults.batch_max_delay_ms)),
        )
        self.disconnected = False
        self.closed = False
        self._explicit = False
        self._reattach_timeout_s = reattach_timeout_s
        self._replacement: Optional[asyncio.Future] = None
        #: Tuples this session has yielded to the front tier.
        self.delivered_tuples = 0
        #: Tuples yielded from the *current* remote's stream (reset at
        #: every generation switch) — the router-side stream position a
        #: warm standby's discard consumer throttles against.  When a
        #: stream ends, its final count parks in
        #: :attr:`last_remote_delivered` for the splice-skip math.
        self.delivered_this_remote = 0
        self.last_remote_delivered = 0
        #: Replacement subscription staged by a live migration: when the
        #: current remote's stream ends (the exporting worker closes it
        #: as "unsubscribed"), :meth:`batches` continues into the staged
        #: remote instead of treating the reason as final.
        self._staged = None
        #: Wire-shape degradation profile (``policy_to_profile`` dict)
        #: with its ``level`` key tracking the worker's active level, so
        #: every re-subscribe path (respawn, migration, failover) can
        #: re-attach the ladder at the level the worker last reported.
        #: ``None`` for fixed-spec sessions and after a client re-filter
        #: (an explicit spec choice overrides the automatic policy).
        self.degradation: Optional[dict] = None
        #: Same contract as ``SubscriberSession.qos_listener``: the front
        #: tier wires this to a ``qos_update`` push frame; the router
        #: forwards every worker-side transition through it.
        self.qos_listener = None

    @property
    def degradation_level(self) -> int:
        """Active degradation level as last reported by the worker."""
        if self.degradation is None:
            return 0
        return int(self.degradation.get("level", 0))

    # -- supervisor side -------------------------------------------------
    def adopt(self, remote) -> None:
        """Swap in a respawned worker's subscription (supervisor path)."""
        self.remote = remote
        waiter = self._replacement
        if waiter is not None and not waiter.done():
            waiter.set_result(remote)

    def stage_migration(self, remote) -> None:
        """Park the migration target's subscription for hand-off."""
        self._staged = remote

    def unstage_migration(self) -> None:
        self._staged = None

    def abandon(self, reason: str) -> None:
        """Give up on this session (worker lost for good, shutdown)."""
        self.closed = True
        waiter = self._replacement
        if waiter is not None and not waiter.done():
            waiter.set_result(None)
        staged, self._staged = self._staged, None
        if staged is not None:
            staged.close_local(reason)
        self.remote.close_local(reason)

    # -- router side -----------------------------------------------------
    def mark_explicit(self) -> None:
        """The next stream end is intentional; do not re-attach."""
        self._explicit = True

    def end_local(self, reason: str) -> None:
        self._explicit = True
        self.closed = True
        # A batches() loop parked waiting for a respawn re-attach must
        # end now, not after the reattach timeout.
        waiter = self._replacement
        if waiter is not None and not waiter.done():
            waiter.set_result(None)
        staged, self._staged = self._staged, None
        if staged is not None:
            staged.close_local(reason)
        self.remote.close_local(reason)

    _TRACE_NOTES_MAX = 64

    def _note_batch_traces(self, batch, remote) -> None:
        """Claim the remote's traces for this batch, stamping reassembly.

        The worker's decided frame carried each sampled tuple's stage
        pairs; the router extends them with its ``router_reassembly``
        stage (frame decode -> this batch surfacing to the front-tier
        pump) and parks them for :meth:`pop_traces`.
        """
        tele = self._telemetry
        if tele is None or not tele.tracer.enabled:
            return
        tmap: Optional[dict] = None
        now_ns = 0
        for item in batch.items:
            claimed = remote.claim_trace(item.seq)
            if claimed is None:
                continue
            pairs, noted_ns = claimed
            if not now_ns:
                now_ns = time.perf_counter_ns()
            if noted_ns:
                dur = now_ns - noted_ns
                tele.observe_stage(STAGE_ROUTER_REASSEMBLY, dur)
                pairs = pairs + [(_SID_ROUTER_REASSEMBLY, dur)]
            if tmap is None:
                tmap = {}
            tmap[item.seq] = pairs
        if tmap:
            notes = self._trace_notes
            while len(notes) >= self._TRACE_NOTES_MAX:
                del notes[next(iter(notes))]
            notes[id(batch)] = (now_ns, tmap)

    def pop_traces(self, batch):
        """Claim the traces noted for ``batch`` (``None`` if untraced)."""
        return self._trace_notes.pop(id(batch), None)

    async def batches(self):
        """Yield delivered batches across worker generations."""
        while True:
            remote = self.remote
            async for batch in remote.batches():
                self._note_batch_traces(batch, remote)
                self.delivered_tuples += len(batch.items)
                self.delivered_this_remote += len(batch.items)
                yield batch
            # The old stream is fully drained here, so its tuple count is
            # final — exactly what a standby splice must align against.
            self.last_remote_delivered = self.delivered_this_remote
            self.delivered_this_remote = 0
            staged = self._staged
            if staged is not None and not self.closed:
                # Live-migration hand-off: the old worker drained this
                # stream and closed it on purpose; continue into the
                # target's subscription without surfacing anything.
                self._staged = None
                self.remote = staged
                continue
            reason = remote.closed_reason or "connection_closed"
            if reason == "overflow_disconnect":
                self.disconnected = True
            if self._explicit or self.closed or reason in _FINAL_REASONS:
                self.closed = True
                return
            # The worker connection died underneath a live subscription:
            # wait for the supervisor's respawn to re-attach us.
            replacement = await self._await_replacement(remote)
            if replacement is None:
                self.closed = True
                return

    async def _await_replacement(self, old):
        if self.remote is not old and self.remote.closed_reason is None:
            return self.remote  # adoption already happened
        loop = asyncio.get_running_loop()
        self._replacement = loop.create_future()
        # Re-check after installing the future: adopt() may have raced in
        # between the stream ending and the future existing.
        if self.remote is not old and self.remote.closed_reason is None:
            self._replacement = None
            return self.remote
        try:
            return await asyncio.wait_for(
                self._replacement, timeout=self._reattach_timeout_s
            )
        except asyncio.TimeoutError:
            return None
        finally:
            self._replacement = None


class _SpliceRemote:
    """A standby shadow subscription minus its already-delivered prefix.

    At failover the primary's stream had delivered tuples the standby's
    throttled discard consumer had not yet drained from the mirror;
    those tuples sit (whole or mid-batch) at the head of the shadow
    buffer.  Dropping exactly that prefix makes the spliced stream
    continue byte-identically from the subscriber's point of view — a
    delivery gap of zero, not a replay and not a hole.

    The skip is computed *lazily*, on first consumption: the session's
    ``batches()`` loop only switches remotes after fully draining the
    dead stream, so only then is ``last_remote_delivered`` final.  Both
    counters are absolute stream positions (``consumed`` starts at the
    worker-reported shipped offset the mirror was armed at), and the
    discard throttle guarantees ``consumed <= delivered``, so the skip
    is never negative.  If the dead worker's queue lost shipped-but-
    undelivered tuples, the clamp surfaces that as a small delivery gap
    — never duplicates.
    """

    def __init__(self, remote, session: "ClusterSession", consumed: int):
        self._remote = remote
        self._session = session
        self._consumed = consumed
        self._skip: Optional[int] = None

    @property
    def resolved(self):
        return self._remote.resolved

    @property
    def closed_reason(self):
        return self._remote.closed_reason

    @property
    def buffered(self):
        return self._remote.buffered

    def close_local(self, reason: str) -> None:
        self._remote.close_local(reason)

    def claim_trace(self, seq):
        return self._remote.claim_trace(seq)

    async def batches(self):
        if self._skip is None:
            self._skip = max(
                0, self._session.last_remote_delivered - self._consumed
            )
        async for batch in self._remote.batches():
            if self._skip:
                items = batch.items
                if len(items) <= self._skip:
                    self._skip -= len(items)
                    continue
                batch = dc_replace(batch, items=items[self._skip :])
                self._skip = 0
            yield batch


class _Worker:
    """One worker slot: subprocess, gateway client, owned subscriptions."""

    def __init__(self, index: int, *, role: str = "primary", mirror_of: Optional[int] = None):
        self.index = index
        #: "primary" serves routed traffic; "standby" mirrors a primary.
        self.role = role
        #: Primary slot index a standby shadows (None for primaries).
        self.mirror_of = mirror_of
        self.process: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None
        self.client: Optional[GatewayClient] = None
        self.ready = asyncio.Event()
        self.failed = False
        self.respawns = 0
        #: Monotonic timestamps of recent respawn attempts (the sliding
        #: budget window) and the backoff currently being served.
        self.respawn_times: deque[float] = deque()
        self.backoff_s = 0.0
        #: First time the supervisor saw this slot dead (deferred-heal
        #: grace accounting); None while alive.
        self.death_seen_ts: Optional[float] = None
        self.health_misses = 0
        #: Standby-only state: shadow subscriptions per app, tuples the
        #: throttled discard consumer has drained per app, the discard
        #: tasks, and sources whose mirror went stale (failed shadow
        #: churn or missed offers) — stale sources fall back to cold
        #: re-subscribe at failover instead of a byte-identical splice.
        self.shadows: dict[str, object] = {}
        self.shadow_consumed: dict[str, int] = {}
        self.shadow_tasks: dict[str, asyncio.Task] = {}
        self.shadow_source: dict[str, str] = {}
        self.stale_sources: set[str] = set()
        self.arm_task: Optional[asyncio.Task] = None
        #: Serializes heal decisions for this slot (monitor vs an
        #: attached remediation loop racing to fix the same death).
        self.heal_lock = asyncio.Lock()
        #: app -> ClusterSession, in subscription order (the broker
        #: groups filters by session insertion order, so respawn
        #: re-subscribes in the same order).
        self.apps: dict[str, ClusterSession] = {}
        self.stdout_tail: deque[str] = deque(maxlen=8)
        self.drain_task: Optional[asyncio.Task] = None
        self.respawn_task: Optional[asyncio.Task] = None
        self.terminal_snapshot: Optional[dict] = None
        #: High-water mark of worker-local event ids already folded into
        #: the router's event log (reset on respawn: fresh process,
        #: fresh id space).
        self.events_cursor = 0
        #: ``(monotonic_ts, relabeled_text)`` of the last successful
        #: ``/metrics`` scrape; failures are never cached.
        self.metrics_cache: Optional[tuple[float, str]] = None


class ClusterService:
    """Front-tier router over N worker broker processes.

    Presents the broker's async data-path surface (so a
    :class:`~repro.transport.server.GatewayServer` can front it), routes
    every source to its worker by stable BLAKE2 key hashing, supervises
    the fleet, and merges observability.
    """

    def __init__(
        self,
        config: ClusterConfig,
        *,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config
        self._workers = [_Worker(i) for i in range(config.workers)]
        #: Warm standby tier: standby ``k`` mirrors primary ``k``.
        #: Standbys live outside ``_workers`` so primary indexing (and
        #: every merged-snapshot total) never sees mirrored traffic.
        self._standbys = [
            _Worker(config.workers + k, role="standby", mirror_of=k)
            for k in range(config.standby)
        ]
        #: Consistent-hash ring over primary slot indexes: adding or
        #: removing a worker moves ~1/N of the sources instead of
        #: reshuffling nearly all of them (which modulo hashing did).
        self._ring = HashRing(range(config.workers))
        #: Source registry (insertion-ordered); values are shard
        #: indexes.  This map is *authoritative* — the ring only places
        #: sources on first registration, so a migrated source stays
        #: where the migration put it.
        self._sources: dict[str, int] = {}
        #: Per-source serialization of the data path against migration
        #: and standby arming (uncontended in steady state).
        self._source_locks: dict[str, asyncio.Lock] = {}
        #: Set by an attached remediation loop: worker-death actuation
        #: is deferred (up to ``deferred_heal_grace_s``) so the
        #: propose/verify/schedule pipeline owns the fix.
        self.defer_death_handling = False
        self._apps: dict[str, ClusterSession] = {}
        self._monitor_task: Optional[asyncio.Task] = None
        self._started = False
        self._closed = False
        self._final_snapshot: Optional[dict] = None
        self.telemetry = telemetry
        #: Telemetry handed to the router->worker gateway clients: it
        #: makes them *offer* the trace feature (so workers send decided
        #: traces back) but never auto-sample — the router attaches the
        #: carried trace pairs explicitly on the forward path.
        self._client_telemetry: Optional[Telemetry] = None
        #: Monotonic timestamp of the last fleet events fold (TTL
        #: throttle for back-to-back ``/events`` polls).
        self._events_pull_ts: Optional[float] = None
        self._m_scrape_cache = None
        self._m_migrations = None
        if telemetry is not None:
            self._client_telemetry = Telemetry(
                sample_period=0, event_capacity=1, trace_capacity=1
            )
            registry = telemetry.registry
            m_alive = registry.gauge(
                "repro_cluster_worker_alive",
                "1 when the worker process is running and ready.",
                ("worker",),
            )
            m_respawns = registry.counter(
                "repro_cluster_worker_respawns_total",
                "Supervisor respawns per worker slot.",
                ("worker",),
            )
            m_sessions = registry.gauge(
                "repro_cluster_sessions", "Live routed subscriber sessions."
            )
            self._m_placements = registry.counter(
                "repro_cluster_placement_moves_total",
                "Source placements onto workers.",
                ("worker",),
            )
            self._m_scrape_cache = registry.counter(
                "repro_cluster_scrape_cache_total",
                "Worker observability scrapes answered from the TTL "
                "cache (hit) vs re-fetched (miss).",
                ("surface", "result"),
            )
            m_backoff = registry.gauge(
                "repro_cluster_respawn_backoff_s",
                "Backoff delay the slot's next respawn attempt is "
                "serving (0 when not backing off).",
                ("worker",),
            )
            m_window = registry.gauge(
                "repro_cluster_respawn_window",
                "Respawn attempts inside the sliding budget window.",
                ("worker",),
            )
            self._m_migrations = registry.counter(
                "repro_cluster_migrations_total",
                "Live source migrations by outcome.",
                ("outcome",),
            )
            m_standby_armed = registry.gauge(
                "repro_cluster_standby_armed_sources",
                "Sources this standby can splice byte-identically.",
                ("worker",),
            )

            def _collect_fleet() -> None:
                now = time.monotonic()
                for worker in self._workers + self._standbys:
                    label = str(worker.index)
                    alive = (
                        worker.process is not None
                        and worker.process.returncode is None
                        and worker.ready.is_set()
                    )
                    m_alive.labels(label).set(1.0 if alive else 0.0)
                    m_respawns.labels(label).value = float(worker.respawns)
                    m_backoff.labels(label).set(worker.backoff_s)
                    in_window = sum(
                        1
                        for ts in worker.respawn_times
                        if now - ts <= self.config.respawn_window_s
                    )
                    m_window.labels(label).set(float(in_window))
                for standby in self._standbys:
                    armed = sum(
                        1
                        for s in self._shard_sources(standby.mirror_of)
                        if s not in standby.stale_sources
                    )
                    m_standby_armed.labels(str(standby.index)).set(
                        float(armed) if standby.ready.is_set() else 0.0
                    )
                m_sessions.set(float(self.session_count()))

            registry.register_collector(_collect_fleet)

    def _emit(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.events.emit(kind, **fields)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def shard_of(self, source_name: str) -> int:
        """Worker slot index for a source.

        The registry override wins — a migrated source stays wherever
        the migration put it — and otherwise the consistent-hash ring
        places it, so growing the fleet moves only ~1/N of the sources.
        """
        placed = self._sources.get(source_name)
        if placed is not None:
            return placed
        owner = self._ring.owner(source_name)
        return 0 if owner is None else owner

    def _shard_sources(self, index: Optional[int]) -> list[str]:
        return [s for s, shard in self._sources.items() if shard == index]

    def _primary(self, shard: int) -> _Worker:
        for worker in self._workers:
            if worker.index == shard:
                return worker
        raise KeyError(f"no worker slot {shard}")

    def _slot(self, index: int) -> Optional[_Worker]:
        for worker in self._workers + self._standbys:
            if worker.index == index:
                return worker
        return None

    def _source_lock(self, source_name: str) -> asyncio.Lock:
        lock = self._source_locks.get(source_name)
        if lock is None:
            lock = self._source_locks[source_name] = asyncio.Lock()
        return lock

    def _standby_for(self, shard: int) -> Optional[_Worker]:
        """The live, ready standby mirroring primary ``shard`` (or None)."""
        for standby in self._standbys:
            if standby.mirror_of != shard or standby.failed:
                continue
            process = standby.process
            if (
                process is None
                or process.returncode is not None
                or not standby.ready.is_set()
                or standby.client is None
            ):
                continue
            return standby
        return None

    def _mark_stale(self, standby: _Worker, source_name: str) -> None:
        """The mirror for ``source_name`` diverged: splice is off the
        table until the next re-arm; failover falls back to a cold
        re-subscribe for this source's apps."""
        if source_name not in standby.stale_sources:
            standby.stale_sources.add(source_name)
            self._emit(
                "standby_stale", standby=standby.index, source=source_name
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        for name in self.config.sources:
            self._sources.setdefault(name, self.shard_of(name))
        fleet = self._workers + self._standbys
        results = await asyncio.gather(
            *(self._launch(worker) for worker in fleet),
            return_exceptions=True,
        )
        failures = [r for r in results if isinstance(r, BaseException)]
        if failures:
            await self._terminate_workers()
            raise failures[0]
        for worker in fleet:
            worker.ready.set()
        for standby in self._standbys:
            await self._arm_standby(standby)
        self._monitor_task = asyncio.ensure_future(self._monitor())

    def _worker_command(self, worker: _Worker) -> list[str]:
        cfg = self.config
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--http-port",
            "0",
            "--sources",
            ",".join(
                self._shard_sources(
                    worker.mirror_of if worker.role == "standby" else worker.index
                )
            ),
            "--algorithm",
            cfg.algorithm,
            "--queue-capacity",
            str(cfg.queue_capacity),
            "--overflow",
            cfg.overflow,
            "--batch-items",
            str(cfg.batch_max_items),
            "--batch-delay-ms",
            str(cfg.batch_max_delay_ms),
            "--max-frame-bytes",
            str(cfg.max_frame_bytes),
            "--seed",
            str(cfg.seed),
            # Workers never self-watch; health analysis runs once, at
            # the router, over the merged fleet surfaces.
            "--watch-interval",
            "0",
        ]
        if cfg.constraint_ms is not None:
            command += ["--constraint-ms", str(cfg.constraint_ms)]
        if not cfg.tick_cuts:
            command.append("--no-tick-cuts")
        if self.telemetry is not None:
            command += [
                "--trace-sample",
                str(self.telemetry.tracer.sample_period),
            ]
        else:
            command.append("--no-telemetry")
        return command

    @staticmethod
    def _signal(process: asyncio.subprocess.Process, *, kill: bool) -> None:
        """Best-effort terminate/kill (the process may already be gone)."""
        try:
            if kill:
                process.kill()
            else:
                process.terminate()
        except ProcessLookupError:
            pass

    @staticmethod
    def _worker_env() -> dict:
        """Child env that can import repro even from a source checkout."""
        import repro

        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        return env

    async def _launch(self, worker: _Worker) -> None:
        """Spawn one worker process and connect its gateway client."""
        process = await asyncio.create_subprocess_exec(
            *self._worker_command(worker),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=self._worker_env(),
            # The terminal snapshot is one JSON line that grows with
            # retired sessions; the default 64 KiB readline limit would
            # kill the drain task on a churn-heavy worker.
            limit=1 << 23,
        )
        worker.process = process
        worker.terminal_snapshot = None
        worker.health_misses = 0
        try:
            ready_line = await asyncio.wait_for(
                self._read_ready_line(process),
                timeout=self.config.ready_timeout_s,
            )
            # "gateway listening on HOST:PORT, http on HOST:PORT"
            parts = ready_line.strip().split(", http on ")
            worker.port = int(parts[0].rsplit(":", 1)[1])
            worker.http_port = (
                int(parts[1].rsplit(":", 1)[1]) if len(parts) > 1 else None
            )
            worker.drain_task = asyncio.ensure_future(
                self._drain_stdout(worker)
            )
            worker.client = await GatewayClient.connect(
                "127.0.0.1",
                worker.port,
                codec=self.config.codec,
                max_frame_bytes=self.config.max_frame_bytes,
                telemetry=self._client_telemetry,
            )
            worker.events_cursor = 0
            worker.metrics_cache = None
            self._emit(
                "worker_spawn",
                worker=worker.index,
                role=worker.role,
                pid=process.pid,
                port=worker.port,
                http_port=worker.http_port,
            )
        except BaseException:
            if process.returncode is None:
                self._signal(process, kill=True)
                await process.wait()
            raise

    @staticmethod
    async def _read_ready_line(process: asyncio.subprocess.Process) -> str:
        while True:
            line = await process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"worker exited before its ready line "
                    f"(returncode={process.returncode})"
                )
            text = line.decode("utf-8", "replace")
            if "listening on" in text:
                return text

    async def _drain_stdout(self, worker: _Worker) -> None:
        """Keep the worker's stdout pipe empty; remember the tail.

        The last line a gracefully stopped worker prints is its terminal
        snapshot JSON — :meth:`close` merges those for the final stats.
        """
        process = worker.process
        while True:
            try:
                line = await process.stdout.readline()
            except ValueError:
                # A line overran even the raised stream limit; consume
                # the buffered bytes so the loop makes progress instead
                # of dying (teardown awaits this task).
                if not await process.stdout.read(1 << 16):
                    return
                continue
            if not line:
                return
            worker.stdout_tail.append(line.decode("utf-8", "replace").strip())

    async def close(self) -> dict:
        """Stop the fleet gracefully; returns the merged final snapshot.

        Mirrors the broker's ``close()`` contract as the front tier sees
        it: after this returns, every session's remaining batches are
        either in flight to the router's pumps or accounted as dropped.
        Workers get SIGTERM (their own graceful path final-flushes every
        batcher onto our sockets and prints a terminal snapshot), and
        the merged terminal totals become the router's final snapshot.
        """
        if self._closed:
            return dict(self._final_snapshot or {})
        self._closed = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except (asyncio.CancelledError, Exception):
                # A monitor that already died (e.g. a kill() racing a
                # process exit) must not abort shutdown: the workers
                # below still need terminating.
                pass
        for worker in self._workers + self._standbys:
            for task in (worker.respawn_task, worker.arm_task):
                if task is not None and not task.done():
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
            for task in worker.shadow_tasks.values():
                task.cancel()
            worker.shadow_tasks.clear()
        # Latency windows must be read before the workers die; terminal
        # totals come from the terminal snapshots afterwards.  Standbys
        # are excluded: their mirrored traffic would double every total.
        live = await asyncio.gather(
            *(self._worker_snapshot(worker) for worker in self._workers)
        )
        window: list[float] = []
        for snapshot in live:
            if snapshot is not None:
                window.extend(snapshot.get("decide_window_ms", ()))
        await self._terminate_workers()
        terminals = []
        for worker, fallback in zip(self._workers, live):
            terminal = self._parse_terminal(worker)
            if terminal is None:
                # Crashed or unreachable worker: fall back to its last
                # live snapshot so totals degrade, not vanish.
                terminal = fallback
            if terminal is not None:
                terminals.append(terminal)
        for session in list(self._apps.values()):
            if not session.closed:
                session.abandon("shutdown")
        self._final_snapshot = self._merge(terminals, window_override=window)
        return dict(self._final_snapshot)

    async def _terminate_workers(self) -> None:
        for worker in self._workers + self._standbys:
            process = worker.process
            if process is not None and process.returncode is None:
                self._signal(process, kill=False)
        for worker in self._workers + self._standbys:
            process = worker.process
            if process is None:
                continue
            try:
                await asyncio.wait_for(process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                self._signal(process, kill=True)
                await process.wait()
            if worker.drain_task is not None:
                await worker.drain_task
                worker.drain_task = None
            if worker.client is not None:
                await worker.client.close(send_bye=False)
                worker.client = None
            worker.ready.clear()

    @staticmethod
    def _parse_terminal(worker: _Worker) -> Optional[dict]:
        for line in reversed(worker.stdout_tail):
            if line.startswith("{"):
                try:
                    return json.loads(line)
                except json.JSONDecodeError:
                    continue
        return None

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _schedule_respawn(self, worker: _Worker) -> None:
        """Start a per-worker respawn task (at most one per slot).

        Respawns run concurrently: one slot's slow (or repeatedly
        failing) replacement must not stall health checks — or the
        respawn — of the rest of the fleet.
        """
        if worker.respawn_task is not None and not worker.respawn_task.done():
            return
        # A dead worker must not keep serving its last scrape from cache.
        worker.metrics_cache = None
        worker.respawn_task = asyncio.ensure_future(self._respawn(worker))

    async def _monitor(self) -> None:
        cfg = self.config
        while True:
            await asyncio.sleep(cfg.health_interval_s)
            for worker in self._workers + self._standbys:
                if worker.failed:
                    continue
                if (
                    worker.respawn_task is not None
                    and not worker.respawn_task.done()
                ):
                    continue
                process = worker.process
                if process is None or process.returncode is not None:
                    await self._on_worker_death(
                        worker,
                        returncode=(
                            process.returncode if process is not None else None
                        ),
                    )
                    continue
                if not worker.ready.is_set():
                    continue
                if await self._healthz(worker):
                    worker.health_misses = 0
                    continue
                worker.health_misses += 1
                if worker.health_misses >= cfg.health_misses:
                    # Alive but unresponsive: treat as dead.
                    self._signal(process, kill=True)
                    await process.wait()
                    await self._on_worker_death(
                        worker,
                        returncode=process.returncode,
                        reason="unresponsive",
                    )
            for standby in self._standbys:
                # Self-correcting mirror: anything stale (or any open app
                # without a shadow) re-arms on the supervisor's cadence.
                if standby.ready.is_set() and not standby.failed:
                    self._schedule_arm(standby)

    async def _on_worker_death(
        self,
        worker: _Worker,
        *,
        returncode: Optional[int],
        reason: Optional[str] = None,
    ) -> None:
        """First sighting emits the verdict-grade ``worker_death`` event
        and (for primaries under ``--self-heal``) starts the deferred
        grace so the remediation loop owns the fix; past the grace the
        supervisor heals directly."""
        now = time.monotonic()
        if worker.death_seen_ts is None:
            worker.death_seen_ts = now
            # Data-path calls park on `ready` instead of erroring into
            # producers while the heal decision is pending.
            worker.ready.clear()
            fields = {
                "worker": worker.index,
                "role": worker.role,
                "returncode": returncode,
            }
            if reason:
                fields["reason"] = reason
            self._emit("worker_death", **fields)
        if (
            worker.role == "primary"
            and self.defer_death_handling
            and now - worker.death_seen_ts < self.config.deferred_heal_grace_s
        ):
            return
        await self.heal_worker(worker.index)

    async def heal_worker(
        self, index: int, *, prefer_standby: bool = True
    ) -> str:
        """Actuate recovery for one worker slot (remediation surface).

        Returns what happened: ``"noop"`` (already healthy), ``"adopted"``
        (an armed standby was promoted in place), ``"respawned"`` (a
        replacement process is coming up under the backoff budget), or
        ``"lost"`` (the slot exhausted its respawn budget).
        """
        worker = self._slot(index)
        if worker is None:
            raise KeyError(f"no worker slot {index}")
        async with worker.heal_lock:
            if worker.failed:
                return "lost"
            process = worker.process
            if (
                process is not None
                and process.returncode is None
                and worker.ready.is_set()
            ):
                return "noop"
            if worker.role == "primary" and prefer_standby:
                standby = self._standby_for(worker.index)
                if standby is not None:
                    try:
                        await self.adopt_standby(worker.index)
                        return "adopted"
                    except Exception:
                        # Promotion raced the standby dying (or worse):
                        # cold respawn is always available.
                        pass
            self._schedule_respawn(worker)
            return "respawned"

    async def _http_get(
        self, worker: _Worker, path: str, *, timeout_s: float = 2.0
    ) -> Optional[bytes]:
        """One-shot HTTP GET against a worker's snapshot endpoint.

        Returns the response body on a 200, ``None`` on any failure —
        a worker dying mid-scrape degrades the merged view, never the
        scrape itself.
        """
        if worker.http_port is None:
            return None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", worker.http_port),
                timeout=timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\n"
                "Host: 127.0.0.1\r\nConnection: close\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            response = await asyncio.wait_for(reader.read(), timeout=timeout_s)
            head, _, body = response.partition(b"\r\n\r\n")
            if b" 200 " not in head.split(b"\r\n", 1)[0]:
                return None
            return body
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _healthz(self, worker: _Worker) -> bool:
        if worker.http_port is None:
            return True
        return await self._http_get(worker, "/healthz") is not None

    async def _respawn(self, worker: _Worker) -> None:
        """Drain a dead worker slot and bring up a replacement.

        Attempts are paced by a jittered exponential backoff and bounded
        by a *sliding-window* budget: more than ``respawns_per_window``
        attempts inside ``respawn_window_s`` declares the slot lost, but
        an occasional crash per hour never exhausts anything.  The first
        attempt after a quiet period is immediate.

        For a primary, every session the slot owned is re-subscribed
        with its previously resolved bounds and re-attached, so
        router-side pumps resume.  The decided state of the dead process
        is gone — subscribers see a delivery gap, which is the paper's
        timeliness-over-completeness stance applied to process failure.
        A respawned standby instead comes back empty and re-arms its
        mirror from the serving primary.
        """
        cfg = self.config
        worker.ready.clear()
        self._emit("drain_start", worker=worker.index)
        if worker.client is not None:
            await worker.client.close(send_bye=False)
            worker.client = None
        process = worker.process
        if process is not None:
            if process.returncode is None:
                self._signal(process, kill=True)
            await process.wait()
        if worker.drain_task is not None:
            await worker.drain_task
            worker.drain_task = None
        for task in worker.shadow_tasks.values():
            task.cancel()
        worker.shadow_tasks.clear()
        worker.shadows.clear()
        worker.shadow_consumed.clear()
        worker.shadow_source.clear()
        if worker.role == "standby":
            worker.stale_sources = set(self._shard_sources(worker.mirror_of))
        self._emit("drain_end", worker=worker.index)
        while True:
            now = time.monotonic()
            while (
                worker.respawn_times
                and now - worker.respawn_times[0] > cfg.respawn_window_s
            ):
                worker.respawn_times.popleft()
            if len(worker.respawn_times) >= cfg.respawns_per_window:
                break  # budget exhausted inside the window: slot lost
            attempt = len(worker.respawn_times) + 1
            if attempt > 1:
                backoff = min(
                    cfg.respawn_backoff_max_s,
                    cfg.respawn_backoff_base_s * (2 ** (attempt - 2)),
                ) * random.uniform(0.5, 1.5)
                worker.backoff_s = backoff
                self._emit(
                    "respawn_backoff",
                    worker=worker.index,
                    role=worker.role,
                    attempt=attempt,
                    backoff_s=round(backoff, 3),
                )
                await asyncio.sleep(backoff)
                worker.backoff_s = 0.0
            worker.respawn_times.append(time.monotonic())
            worker.respawns += 1
            try:
                await self._launch(worker)
                if worker.role == "primary":
                    for app, session in list(worker.apps.items()):
                        if session.closed:
                            worker.apps.pop(app, None)
                            # Identity check: the name may have been
                            # re-used by a live session on another worker.
                            if self._apps.get(app) is session:
                                del self._apps[app]
                            continue
                        remote = await worker.client.subscribe(
                            app,
                            session.source_name,
                            session.spec,
                            queue_capacity=session.queue.capacity,
                            overflow=session.queue.policy,
                            batch_max_items=session.batcher.max_items,
                            batch_max_delay_ms=session.batcher.max_delay_ms,
                            degradation=session.degradation,
                        )
                        self._wire_qos(session, remote)
                        session.adopt(remote)
                worker.ready.set()
                worker.death_seen_ts = None
                if worker.role == "standby":
                    await self._arm_standby(worker)
                else:
                    # A cold respawn starts the engines fresh, so any
                    # standby mirror of this slot no longer matches.
                    standby = self._standby_for(worker.index)
                    if standby is not None:
                        for source in self._shard_sources(worker.index):
                            self._mark_stale(standby, source)
                        self._schedule_arm(standby)
                self._emit(
                    "worker_respawn",
                    worker=worker.index,
                    role=worker.role,
                    respawns=worker.respawns,
                )
                return
            except Exception:
                process = worker.process
                if process is not None and process.returncode is None:
                    self._signal(process, kill=True)
                    await process.wait()
                if worker.client is not None:
                    await worker.client.close(send_bye=False)
                    worker.client = None
        worker.failed = True
        worker.backoff_s = 0.0
        self._emit(
            "worker_lost",
            worker=worker.index,
            role=worker.role,
            respawns=worker.respawns,
        )
        for app, session in list(worker.apps.items()):
            session.abandon("worker_lost")
            worker.apps.pop(app, None)
            if self._apps.get(app) is session:
                del self._apps[app]

    async def _worker_for(self, source_name: str) -> _Worker:
        worker = self._primary(self.shard_of(source_name))
        if worker.failed:
            raise RuntimeError(
                f"worker {worker.index} (sources like {source_name!r}) is lost"
            )
        if not worker.ready.is_set():
            try:
                await asyncio.wait_for(
                    worker.ready.wait(), timeout=self.config.reattach_timeout_s
                )
            except asyncio.TimeoutError:
                raise RuntimeError(
                    f"worker {worker.index} did not come back in time"
                ) from None
            if worker.failed:
                raise RuntimeError(f"worker {worker.index} is lost")
        return worker

    # ------------------------------------------------------------------
    # Topology (the GatewayServer-facing surface)
    # ------------------------------------------------------------------
    def sources(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def has_source(self, source_name: str) -> bool:
        return source_name in self._sources

    async def add_source(self, source_name: str) -> None:
        """Advertise a source, registering it on its worker."""
        if source_name in self._sources:
            return
        shard = self.shard_of(source_name)
        self._sources[source_name] = shard
        try:
            worker = await self._worker_for(source_name)
            await worker.client.ensure_source(source_name)
            if self.telemetry is not None:
                self._m_placements.labels(str(shard)).inc()
                self._emit(
                    "source_placed", source=source_name, worker=shard
                )
        except (ConnectionError, GatewayError) as exc:
            del self._sources[source_name]
            raise RuntimeError(f"cannot place source {source_name!r}: {exc}") from exc
        except BaseException:
            del self._sources[source_name]
            raise
        # Mirror the registration: a source born while its standby is
        # live is armed from birth (nothing fed yet on either side).
        standby = self._standby_for(shard)
        if standby is not None:
            try:
                await standby.client.ensure_source(source_name)
            except (ConnectionError, GatewayError):
                self._mark_stale(standby, source_name)

    def session_count(self) -> int:
        return sum(0 if s.closed else 1 for s in self._apps.values())

    def subscriptions(self, source_name: str) -> list[tuple[str, str]]:
        if source_name not in self._sources:
            raise KeyError(f"unknown source {source_name!r}")
        return [
            (s.app_name, s.spec)
            for s in self._apps.values()
            if s.source_name == source_name and not s.closed
        ]

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _require_source(self, source_name: str) -> None:
        if source_name not in self._sources:
            raise KeyError(f"unknown source {source_name!r}")

    async def _ingest_guarded(self, source_name: str):
        """Acquire the source's lock with a consistent worker.

        The ready-wait happens *outside* the lock (a parked offer must
        not block the migration or adoption that would unpark it), then
        the placement is re-checked under the lock — a migration may
        have moved the source while we waited.  Async context manager
        yielding ``(worker, standby)``.
        """
        while True:
            worker = await self._worker_for(source_name)
            lock = self._source_lock(source_name)
            await lock.acquire()
            if (
                self._primary(self.shard_of(source_name)) is worker
                and worker.ready.is_set()
            ):
                return lock, worker, self._standby_for(worker.index)
            lock.release()

    async def _mirrored_ingest(
        self, source_name: str, worker: _Worker, standby: Optional[_Worker], coro, mirror_coro
    ) -> int:
        """Run the primary ingest and its mirror copy concurrently.

        The primary's ack is authoritative (its failure propagates, its
        emissions count returns); a mirror whose outcome *diverges* from
        the primary's marks the source stale — the mirrored streams can
        no longer be byte-aligned.
        """
        if standby is None:
            return int(await coro() or 0)
        primary_result, mirror_result = await asyncio.gather(
            coro(), mirror_coro(), return_exceptions=True
        )
        primary_failed = isinstance(primary_result, BaseException)
        if isinstance(mirror_result, BaseException) != primary_failed:
            self._mark_stale(standby, source_name)
        if primary_failed:
            raise primary_result
        return int(primary_result or 0)

    async def offer(self, source_name: str, item) -> int:
        """Route one tuple to its source's worker; ack-for-ack.

        The worker's ack *is* the broker's completion: a block-policy
        stall inside the worker withholds it, which suspends exactly the
        router read loop that forwarded this frame — per-connection
        backpressure survives the extra hop.  The per-source lock held
        across the ingest is the migration/arming offer-gate, and the
        standby mirror (when one is armed) sees every tuple in the same
        per-source order.
        """
        self._require_source(source_name)
        lock, worker, standby = await self._ingest_guarded(source_name)
        try:
            trace = self._forward_trace(source_name, item.seq)
            return await self._mirrored_ingest(
                source_name,
                worker,
                standby,
                lambda: worker.client.ingest(source_name, item, trace=trace),
                lambda: standby.client.ingest(source_name, item),
            )
        except (ConnectionError, GatewayError) as exc:
            raise RuntimeError(
                f"worker {worker.index} failed ingest for {source_name!r}: {exc}"
            ) from exc
        finally:
            lock.release()

    def _forward_trace(self, source_name: str, seq: int) -> Optional[list]:
        """Close the ``router_forward`` stage and hand the pairs over.

        The front-tier gateway opened the trace in the router's bag at
        frame decode; the forward write to the worker closes it here —
        the worker's broker takes the relay from the wire copy.
        """
        tele = self.telemetry
        if tele is None or not tele.tracer.enabled:
            return None
        key = (source_name, seq)
        if key not in tele.bag:
            return None
        now_ns = time.perf_counter_ns()
        dur = tele.bag.stamp(key, _SID_ROUTER_FORWARD, now_ns)
        if dur is not None:
            tele.observe_stage(STAGE_ROUTER_FORWARD, dur)
        return tele.bag.pop(key)

    def _forward_traces(
        self, source_name: str, items: Sequence
    ) -> Optional[dict]:
        tele = self.telemetry
        if tele is None or not tele.tracer.enabled:
            return None
        traces = {
            item.seq: pairs
            for item in items
            for pairs in (self._forward_trace(source_name, item.seq),)
            if pairs
        }
        return traces or None

    async def offer_many(self, source_name: str, items: Sequence) -> int:
        self._require_source(source_name)
        if not items:
            return 0
        lock, worker, standby = await self._ingest_guarded(source_name)
        try:
            traces = self._forward_traces(source_name, items)
            return await self._mirrored_ingest(
                source_name,
                worker,
                standby,
                lambda: worker.client.ingest_many(
                    source_name, items, traces=traces
                ),
                lambda: standby.client.ingest_many(source_name, items),
            )
        except (ConnectionError, GatewayError) as exc:
            raise RuntimeError(
                f"worker {worker.index} failed ingest for {source_name!r}: {exc}"
            ) from exc
        finally:
            lock.release()

    async def tick(self, now_ms: float, source_name: Optional[str] = None) -> int:
        """Broadcast a timer tick (or route a per-source one).

        Standbys receive broadcast ticks too, so mirrored engines cut at
        the same times.  Mirror fidelity is exact for offer-driven
        decided output; in constrained mode a tick racing a concurrent
        offer may land at a different per-source boundary on the mirror
        — drivers that tick and offer from one task (the load generator
        does) keep the interleaving identical.
        """
        if source_name is not None:
            self._require_source(source_name)
            worker = await self._worker_for(source_name)
            targets = [worker]
            standby = self._standby_for(worker.index)
            if standby is not None:
                targets.append(standby)
        else:
            targets = [
                worker
                for worker in self._workers + self._standbys
                if not worker.failed
                and worker.ready.is_set()
                and worker.client is not None
            ]

        async def one(worker: _Worker) -> int:
            try:
                return await worker.client.tick(now_ms)
            except (ConnectionError, GatewayError):
                return 0

        return sum(await asyncio.gather(*(one(w) for w in targets)))

    async def subscribe(
        self,
        app_name: str,
        source_name: str,
        spec: str,
        node: Optional[str] = None,
        *,
        queue_capacity: Optional[int] = None,
        overflow: Optional[str] = None,
        batch_max_items: Optional[int] = None,
        batch_max_delay_ms: Optional[float] = None,
        qos: Optional[QualitySpec] = None,
        degradation=None,
        degradation_level: int = 0,
        degradation_config: Optional[DegradationConfig] = None,
    ) -> ClusterSession:
        """Attach a subscriber on its source's worker.

        Same signature the broker exposes (the front tier calls either
        interchangeably); QoS resolution happens in the worker, and the
        resolved bounds come back with the subscribe reply.
        ``degradation`` (a :class:`DegradationPolicy` or a wire-shape
        profile mapping) attaches the controller in the *worker*; the
        router records the profile so respawn/migration/failover can
        re-attach it at the worker's last reported level, and forwards
        every ``qos_update`` to the front tier.
        """
        self._require_source(source_name)
        if app_name in self._apps and not self._apps[app_name].closed:
            raise ValueError(f"app {app_name!r} is already subscribed")
        profile: Optional[dict] = None
        if degradation is not None:
            if isinstance(degradation, DegradationPolicy):
                profile = policy_to_profile(
                    degradation,
                    level=degradation_level,
                    config=degradation_config,
                )
            else:
                profile = dict(degradation)
                if degradation_level:
                    profile["level"] = degradation_level
        lock, worker, standby = await self._ingest_guarded(source_name)
        try:
            try:
                remote = await worker.client.subscribe(
                    app_name,
                    source_name,
                    spec,
                    qos=qos,
                    queue_capacity=queue_capacity,
                    overflow=overflow,
                    batch_max_items=batch_max_items,
                    batch_max_delay_ms=batch_max_delay_ms,
                    degradation=profile,
                )
            except GatewayError as exc:
                raise ValueError(str(exc)) from exc
            except ConnectionError as exc:
                raise RuntimeError(
                    f"worker {worker.index} failed subscribe: {exc}"
                ) from exc
            session = ClusterSession(
                app_name,
                source_name,
                spec,
                remote,
                reattach_timeout_s=self.config.reattach_timeout_s,
                defaults=self.config,
                telemetry=self.telemetry,
            )
            session.degradation = profile
            self._wire_qos(session, remote)
            self._apps[app_name] = session
            worker.apps[app_name] = session
            if standby is not None and source_name not in standby.stale_sources:
                await self._shadow_subscribe(standby, session, consumed=0)
            self._emit(
                "subscribe",
                app=app_name,
                source=source_name,
                worker=worker.index,
            )
            return session
        finally:
            lock.release()

    def _wire_qos(self, session: ClusterSession, remote) -> None:
        """Forward one remote subscription's ``qos_update`` pushes.

        The worker owns the controller; the router mirrors each applied
        transition into the session (spec + profile level, so the next
        re-subscribe carries the ladder at the right rung), stales any
        standby shadow (its mirror now decides at a stale spec), and
        relays the update to the front tier's listener.
        """
        if session.degradation is None:
            return

        def _on_update(update: dict) -> None:
            spec = update.get("spec")
            if isinstance(spec, str):
                session.spec = spec
            level = update.get("level")
            if isinstance(level, int) and session.degradation is not None:
                session.degradation["level"] = level
            standby = self._standby_for(
                self.shard_of(session.source_name)
            )
            if standby is not None and session.app_name in standby.shadows:
                self._mark_stale(standby, session.source_name)
            listener = session.qos_listener
            if listener is not None:
                listener(update)

        remote.on_qos_update = _on_update

    async def _shadow_subscribe(
        self, standby: _Worker, session: ClusterSession, *, consumed: int
    ) -> None:
        """Mirror one subscription onto the standby (same app name, the
        primary's resolved bounds) and start its throttled discard
        consumer.  Only ``block``-policy streams can splice byte-exactly
        (drop policies drop *different* tuples on each side), so any
        other policy stales the source instead.  Sessions with a live
        degradation ladder also stale: the worker may re-filter them at
        any dispatch, after which a mirror decided at the old spec can
        no longer splice — failover re-attaches the ladder on the cold
        path instead."""
        if session.queue.policy != "block" or session.degradation is not None:
            self._mark_stale(standby, session.source_name)
            return
        try:
            shadow = await standby.client.subscribe(
                session.app_name,
                session.source_name,
                session.spec,
                queue_capacity=session.queue.capacity,
                overflow=session.queue.policy,
                batch_max_items=session.batcher.max_items,
                batch_max_delay_ms=session.batcher.max_delay_ms,
            )
        except (ConnectionError, GatewayError):
            self._mark_stale(standby, session.source_name)
            return
        app = session.app_name
        standby.shadows[app] = shadow
        standby.shadow_consumed[app] = consumed
        standby.shadow_source[app] = session.source_name
        standby.shadow_tasks[app] = asyncio.ensure_future(
            self._shadow_discard(standby, app, session, shadow)
        )

    async def unsubscribe(self, app_name: str) -> None:
        # A locally-closed session (oversized decided frame, shutdown
        # wedge-break) must still be unsubscribable: the *worker* still
        # holds the registration, and leaving it would poison the app
        # name on that worker until a respawn.
        session = self._apps.get(app_name)
        if session is None:
            raise KeyError(f"app {app_name!r} is not subscribed")
        session.mark_explicit()
        async with self._source_lock(session.source_name):
            worker = self._primary(self.shard_of(session.source_name))
            self._apps.pop(app_name, None)
            worker.apps.pop(app_name, None)
            standby = self._standby_for(worker.index)
            if standby is not None:
                await self._shadow_unsubscribe(
                    standby, app_name, session.source_name
                )
            forwarded = False
            # Forward whenever a client exists, ready flag or not: during
            # a respawn the fresh worker may already hold this app's
            # re-subscription before `ready` is set, and skipping the
            # forward would leak the registration there.  (While the
            # client is still None mid-launch, popping the app above plus
            # the closed flag set below keeps the respawn's re-subscribe
            # loop from recreating it.)
            if worker.client is not None:
                try:
                    await worker.client.unsubscribe(app_name)
                    forwarded = True
                except (ConnectionError, GatewayError):
                    pass
            if forwarded and not session.closed:
                # Do NOT end the remote locally here: the worker's
                # final-flushed decided frames may still be in flight
                # behind the unsubscribe ack (its pump writes and its
                # dispatch reply are ordered independently), and a local
                # close would drop them.  The worker's `closed` frame
                # ends the stream after every delivery.
                return
            session.end_local("unsubscribed")

    async def _shadow_unsubscribe(
        self, standby: _Worker, app: str, source_name: str
    ) -> None:
        """Retire one app's mirror subscription alongside the real one."""
        task = standby.shadow_tasks.pop(app, None)
        if task is not None:
            task.cancel()
        shadow = standby.shadows.pop(app, None)
        standby.shadow_consumed.pop(app, None)
        standby.shadow_source.pop(app, None)
        if shadow is None:
            return
        shadow.close_local("unsubscribed")
        if standby.client is not None:
            try:
                await standby.client.unsubscribe(app)
            except (ConnectionError, GatewayError):
                self._mark_stale(standby, source_name)

    async def re_filter(self, app_name: str, new_spec: str) -> None:
        session = self._apps.get(app_name)
        if session is None or session.closed:
            raise KeyError(f"app {app_name!r} is not subscribed")
        lock, worker, standby = await self._ingest_guarded(session.source_name)
        try:
            try:
                await worker.client.re_filter(app_name, new_spec)
            except GatewayError as exc:
                raise ValueError(str(exc)) from exc
            except ConnectionError as exc:
                raise RuntimeError(
                    f"worker {worker.index} failed re_filter: {exc}"
                ) from exc
            session.spec = new_spec
            # A client re-filter is an explicit spec choice: the worker
            # detaches its controller, so drop the recorded ladder too
            # (a respawn must not resurrect the automatic policy).
            session.degradation = None
            if standby is not None and app_name in standby.shadows:
                try:
                    await standby.client.re_filter(app_name, new_spec)
                except (ConnectionError, GatewayError):
                    self._mark_stale(standby, session.source_name)
        finally:
            lock.release()

    # ------------------------------------------------------------------
    # Live migration, warm standby, elasticity (the actuator surface)
    # ------------------------------------------------------------------
    def _count_migration(self, outcome: str) -> None:
        if self._m_migrations is not None:
            self._m_migrations.labels(outcome).inc()

    async def migrate_source(
        self, source_name: str, target_index: int
    ) -> dict:
        """Move one live source to another worker, subscribers attached.

        The handshake, all under the source's lock (so it doubles as the
        offer gate): subscribe every open app on the target (fresh
        source, so no cutover), stage those streams into the sessions,
        move router-side ownership, then ``export_source`` on the old
        worker (flush + detach, state as an offer/tick journal) and
        ``import_source`` on the target (suppressed replay).  The old
        streams end with the non-final ``"unsubscribed"`` reason and
        each session continues into its staged stream — zero subscriber
        teardown, and with an exact journal the delivered bytes are
        identical to an unmigrated run.

        A failure before the export unwinds completely.  A failure after
        it cannot (the old worker no longer owns the source): ownership
        still moves and subscribers see a state gap — the same contract
        as a worker crash, never a teardown.
        """
        self._require_source(source_name)
        try:
            new = self._primary(target_index)
        except KeyError:
            raise ValueError(f"no worker slot {target_index}") from None
        async with self._source_lock(source_name):
            old = self._primary(self._sources[source_name])
            if old is new:
                return {
                    "source": source_name,
                    "moved": False,
                    "worker": old.index,
                }
            try:
                return await asyncio.wait_for(
                    self._migrate_locked(source_name, old, new),
                    timeout=self.config.migrate_timeout_s,
                )
            except asyncio.TimeoutError:
                self._count_migration("timeout")
                self._emit(
                    "migration_failed",
                    source=source_name,
                    src=old.index,
                    dst=new.index,
                    reason="timeout",
                )
                raise RuntimeError(
                    f"migration of {source_name!r} timed out"
                ) from None

    async def _migrate_locked(
        self, source_name: str, old: _Worker, new: _Worker
    ) -> dict:
        apps = [
            (app, session)
            for app, session in old.apps.items()
            if session.source_name == source_name and not session.closed
        ]
        self._emit(
            "migration_start",
            source=source_name,
            src=old.index,
            dst=new.index,
            apps=len(apps),
        )
        staged: list[tuple[str, ClusterSession, object]] = []
        try:
            await new.client.ensure_source(source_name)
            for app, session in apps:
                remote = await new.client.subscribe(
                    app,
                    source_name,
                    session.spec,
                    queue_capacity=session.queue.capacity,
                    overflow=session.queue.policy,
                    batch_max_items=session.batcher.max_items,
                    batch_max_delay_ms=session.batcher.max_delay_ms,
                    degradation=session.degradation,
                )
                self._wire_qos(session, remote)
                staged.append((app, session, remote))
        except (ConnectionError, GatewayError) as exc:
            for app, _session, remote in staged:
                remote.close_local("router_closed")
                try:
                    await new.client.unsubscribe(app)
                except (ConnectionError, GatewayError):
                    pass
            self._count_migration("failed")
            self._emit(
                "migration_failed",
                source=source_name,
                src=old.index,
                dst=new.index,
                reason=str(exc),
            )
            raise RuntimeError(
                f"cannot stage migration of {source_name!r}: {exc}"
            ) from exc
        # Hand-off point: stage the target streams and move router-side
        # ownership before the export detaches anything, so a racing
        # respawn of the old slot can no longer re-subscribe the moving
        # apps there.
        for app, session, remote in staged:
            session.stage_migration(remote)
            old.apps.pop(app, None)
            new.apps[app] = session
        old_standby = next(
            (sb for sb in self._standbys if sb.mirror_of == old.index), None
        )
        if old_standby is not None:
            for app, _session, _remote in staged:
                await self._shadow_unsubscribe(old_standby, app, source_name)
            old_standby.stale_sources.discard(source_name)
        exact = False
        replayed = 0
        try:
            state = await old.client.export_source(source_name)
            exact = bool(state.get("exact", False))
            replayed = await new.client.import_source(source_name, state)
        except (ConnectionError, GatewayError) as exc:
            self._sources[source_name] = new.index
            self._count_migration("lossy")
            self._stale_shard_standby(new.index, source_name)
            self._emit(
                "migration_failed",
                source=source_name,
                src=old.index,
                dst=new.index,
                reason=str(exc),
                lossy=True,
            )
            return {
                "source": source_name,
                "moved": True,
                "exact": False,
                "replayed": 0,
                "worker": new.index,
            }
        self._sources[source_name] = new.index
        if self.telemetry is not None:
            self._m_placements.labels(str(new.index)).inc()
        self._count_migration("complete" if exact else "lossy")
        self._stale_shard_standby(new.index, source_name)
        self._emit(
            "migration_complete",
            source=source_name,
            src=old.index,
            dst=new.index,
            exact=exact,
            replayed=replayed,
            apps=len(staged),
        )
        return {
            "source": source_name,
            "moved": True,
            "exact": exact,
            "replayed": replayed,
            "worker": new.index,
        }

    def _stale_shard_standby(self, shard: int, source_name: str) -> None:
        """A source just landed on ``shard``: its standby (if any) has no
        mirror of it yet — flag it so the arm cadence picks it up."""
        for standby in self._standbys:
            if standby.mirror_of == shard and not standby.failed:
                self._mark_stale(standby, source_name)

    async def adopt_standby(self, shard: int) -> None:
        """Promote the warm standby into its dead primary's slot.

        Under every source lock of the shard: freeze the mirror's
        discard consumers, retire the dead process, swap the standby's
        process/client into the primary slot, then per source either
        *splice* (armed: every open app has a shadow and the mirror
        never went stale — subscribers continue byte-identically minus
        the already-delivered prefix) or *cold re-subscribe* (state gap,
        stream preserved).  The emptied standby slot relaunches and
        re-arms itself afterwards.
        """
        primary = self._primary(shard)
        standby = self._standby_for(shard)
        if standby is None:
            raise RuntimeError(f"no armed standby for worker {shard}")
        if standby.arm_task is not None and not standby.arm_task.done():
            standby.arm_task.cancel()
            try:
                await standby.arm_task
            except (asyncio.CancelledError, Exception):
                pass
        sources = sorted(self._shard_sources(shard))
        async with AsyncExitStack() as stack:
            for source in sources:
                await stack.enter_async_context(self._source_lock(source))
            for task in standby.shadow_tasks.values():
                task.cancel()
            for task in list(standby.shadow_tasks.values()):
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            standby.shadow_tasks.clear()
            if primary.client is not None:
                await primary.client.close(send_bye=False)
            process = primary.process
            if process is not None:
                if process.returncode is None:
                    self._signal(process, kill=True)
                await process.wait()
            if primary.drain_task is not None:
                await primary.drain_task
            primary.process = standby.process
            primary.port = standby.port
            primary.http_port = standby.http_port
            primary.client = standby.client
            primary.drain_task = standby.drain_task
            primary.stdout_tail = standby.stdout_tail
            primary.events_cursor = standby.events_cursor
            primary.metrics_cache = None
            primary.terminal_snapshot = None
            primary.health_misses = 0
            shadows = standby.shadows
            consumed = standby.shadow_consumed
            stale = standby.stale_sources
            standby.process = None
            standby.port = None
            standby.http_port = None
            standby.client = None
            standby.drain_task = None
            standby.stdout_tail = deque(maxlen=8)
            standby.shadows = {}
            standby.shadow_consumed = {}
            standby.shadow_source = {}
            standby.stale_sources = set(sources)
            standby.events_cursor = 0
            standby.metrics_cache = None
            standby.ready.clear()
            spliced = cold = 0
            for source in sources:
                open_apps = [
                    (app, session)
                    for app, session in primary.apps.items()
                    if session.source_name == source and not session.closed
                ]
                armed = source not in stale and all(
                    app in shadows for app, _ in open_apps
                )
                for app, session in open_apps:
                    shadow = shadows.pop(app, None)
                    if armed:
                        session.adopt(
                            _SpliceRemote(shadow, session, consumed[app])
                        )
                        spliced += 1
                        continue
                    # Cold path: retire any half-armed shadow, then a
                    # fresh subscribe (state gap, stream preserved).
                    if shadow is not None:
                        shadow.close_local("router_closed")
                        try:
                            await primary.client.unsubscribe(app)
                        except (ConnectionError, GatewayError):
                            pass
                    try:
                        remote = await primary.client.subscribe(
                            app,
                            source,
                            session.spec,
                            queue_capacity=session.queue.capacity,
                            overflow=session.queue.policy,
                            batch_max_items=session.batcher.max_items,
                            batch_max_delay_ms=session.batcher.max_delay_ms,
                            degradation=session.degradation,
                        )
                    except (ConnectionError, GatewayError):
                        # Session stays parked; the reattach timeout (or
                        # a later heal) decides its fate.
                        continue
                    self._wire_qos(session, remote)
                    session.adopt(remote)
                    cold += 1
            # Shadows for apps that closed since arming: retire them so
            # they do not keep decided streams flowing on the promoted
            # worker.
            for app, shadow in shadows.items():
                shadow.close_local("router_closed")
                try:
                    await primary.client.unsubscribe(app)
                except (ConnectionError, GatewayError):
                    pass
            primary.ready.set()
            primary.death_seen_ts = None
            primary.failed = False
            primary.health_misses = 0
            self._emit(
                "standby_adopt",
                worker=shard,
                standby=standby.index,
                spliced=spliced,
                cold=cold,
            )
        # Outside the locks: bring up a fresh standby process for the
        # emptied slot and re-arm it against the promoted primary.
        self._schedule_respawn(standby)

    def _schedule_arm(self, standby: _Worker) -> None:
        if standby.arm_task is not None and not standby.arm_task.done():
            return
        if not self._needs_arming(standby):
            return
        standby.arm_task = asyncio.ensure_future(self._arm_standby(standby))

    def _needs_arming(self, standby: _Worker) -> bool:
        if standby.stale_sources:
            return True
        try:
            primary = self._primary(standby.mirror_of)
        except KeyError:
            return False
        return any(
            not session.closed and app not in standby.shadows
            for app, session in primary.apps.items()
        )

    async def _arm_standby(self, standby: _Worker) -> None:
        """(Re-)arm a standby's mirror from its serving primary.

        Per source, under its lock: tear down stale shadows, re-attach a
        shadow subscription per open app, pull a non-destructive
        ``snapshot_source`` from the primary (flushed, so its per-app
        shipped offsets are exact) and force-import it — the suppressed
        replay leaves the standby's engines byte-equal to the primary's
        with the shadow streams starting exactly at the snapshot point.
        Failures leave the source stale; the supervisor cadence retries.
        """
        try:
            primary = self._primary(standby.mirror_of)
        except KeyError:
            return
        armed: list[str] = []
        for source in self._shard_sources(standby.mirror_of):
            if (
                standby.failed
                or not standby.ready.is_set()
                or standby.client is None
            ):
                return
            async with self._source_lock(source):
                sessions = [
                    (app, session)
                    for app, session in primary.apps.items()
                    if session.source_name == source and not session.closed
                ]
                needs = source in standby.stale_sources or any(
                    app not in standby.shadows for app, _ in sessions
                )
                if not needs:
                    continue
                if (
                    primary.client is None
                    or not primary.ready.is_set()
                    or (
                        primary.process is not None
                        and primary.process.returncode is not None
                    )
                ):
                    continue  # nothing to mirror from; retry next cadence
                try:
                    for app in [
                        a
                        for a, s in standby.shadow_source.items()
                        if s == source
                    ]:
                        await self._shadow_unsubscribe(standby, app, source)
                    await standby.client.ensure_source(source)
                    if any(
                        s.queue.policy != "block" for _, s in sessions
                    ):
                        continue  # splice impossible; stays stale
                    for app, session in sessions:
                        shadow = await standby.client.subscribe(
                            app,
                            source,
                            session.spec,
                            queue_capacity=session.queue.capacity,
                            overflow=session.queue.policy,
                            batch_max_items=session.batcher.max_items,
                            batch_max_delay_ms=session.batcher.max_delay_ms,
                        )
                        standby.shadows[app] = shadow
                        standby.shadow_source[app] = source
                    state = await primary.client.snapshot_source(source)
                    if not state.get("exact", False) and state.get("fed"):
                        # Lossy journal: the mirror can only arm for the
                        # *next* epoch; leave this source stale.
                        for app, _session in sessions:
                            await self._shadow_unsubscribe(
                                standby, app, source
                            )
                        continue
                    await standby.client.import_source(
                        source, state, force=True
                    )
                    shipped = dict(state.get("shipped") or {})
                    for app, session in sessions:
                        standby.shadow_consumed[app] = int(
                            shipped.get(app, 0)
                        )
                        standby.shadow_tasks[app] = asyncio.ensure_future(
                            self._shadow_discard(
                                standby, app, session, standby.shadows[app]
                            )
                        )
                    standby.stale_sources.discard(source)
                    armed.append(source)
                except (ConnectionError, GatewayError, RuntimeError):
                    self._mark_stale(standby, source)
        if armed:
            self._emit(
                "standby_armed",
                standby=standby.index,
                worker=standby.mirror_of,
                sources=len(armed),
            )

    async def _shadow_discard(
        self,
        standby: _Worker,
        app: str,
        session: ClusterSession,
        shadow,
    ) -> None:
        """Throttled consumer of one mirror stream.

        Drains shadow batches only while staying ``batch_max_items``
        *behind* the real subscriber's stream position — the invariant
        that makes the failover skip non-negative: every tuple the
        primary delivered but the mirror did not yet discard is still in
        the shadow buffer, mid-batch or whole.
        """
        margin = session.batcher.max_items
        try:
            iterator = shadow.batches().__aiter__()
            while True:
                consumed = standby.shadow_consumed.get(app)
                if consumed is None:
                    return  # unsubscribed underneath us
                if consumed + margin > session.delivered_this_remote:
                    await asyncio.sleep(0.02)
                    continue
                batch = await iterator.__anext__()
                if app in standby.shadow_consumed:
                    standby.shadow_consumed[app] += len(batch.items)
        except StopAsyncIteration:
            return  # mirror stream ended (standby died or re-armed)
        except asyncio.CancelledError:
            raise
        except Exception:
            self._mark_stale(standby, session.source_name)

    # ------------------------------------------------------------------
    # Elasticity
    # ------------------------------------------------------------------
    async def add_worker(self) -> int:
        """Grow the primary tier by one slot.

        The new worker joins the consistent-hash ring, then every source
        the ring now assigns to it is live-migrated over — ~1/N of the
        fleet's sources move, the rest stay untouched.
        """
        if self._closed:
            raise RuntimeError("cluster is closed")
        index = 1 + max(
            worker.index for worker in self._workers + self._standbys
        )
        worker = _Worker(index)
        await self._launch(worker)
        self._workers.append(worker)
        worker.ready.set()
        self._ring.add(index)
        self._emit("worker_added", worker=index)
        for source in list(self._sources):
            if (
                self._ring.owner(source) == index
                and self._sources[source] != index
            ):
                try:
                    await self.migrate_source(source, index)
                except Exception:
                    pass  # stays put; the move was an optimization
        return index

    async def remove_worker(self) -> int:
        """Shrink the primary tier by one slot (the newest).

        Its sources live-migrate to their new ring owners first; only
        then does the process retire.  A standby mirroring the removed
        slot retires with it.
        """
        if len(self._workers) <= 1:
            raise RuntimeError("cannot remove the last worker")
        worker = self._workers[-1]
        self._ring.remove(worker.index)
        try:
            for source in self._shard_sources(worker.index):
                target = self._ring.owner(source)
                await self.migrate_source(source, int(target))
        except BaseException:
            self._ring.add(worker.index)
            raise
        if worker.respawn_task is not None and not worker.respawn_task.done():
            worker.respawn_task.cancel()
            try:
                await worker.respawn_task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers.remove(worker)
        for standby in [
            sb for sb in self._standbys if sb.mirror_of == worker.index
        ]:
            self._standbys.remove(standby)
            for task in standby.shadow_tasks.values():
                task.cancel()
            standby.shadow_tasks.clear()
            await self._retire_process(standby)
        await self._retire_process(worker)
        self._emit("worker_removed", worker=worker.index)
        return worker.index

    async def _retire_process(self, worker: _Worker) -> None:
        worker.ready.clear()
        process = worker.process
        if process is not None and process.returncode is None:
            self._signal(process, kill=False)
        if process is not None:
            try:
                await asyncio.wait_for(process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                self._signal(process, kill=True)
                await process.wait()
        if worker.drain_task is not None:
            await worker.drain_task
            worker.drain_task = None
        if worker.client is not None:
            await worker.client.close(send_bye=False)
            worker.client = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _count_scrape(self, surface: str, result: str, n: int = 1) -> None:
        if self._m_scrape_cache is not None and n:
            self._m_scrape_cache.labels(surface, result).inc(n)

    def fleet_status(self) -> dict:
        """Synchronous control-plane view (no worker round-trips).

        The remediation loop's working set: per-slot liveness, respawn
        budget state and standby arming, plus current source placement —
        everything its proposers and invariant checks need without
        waiting on a scrape of a possibly-wedged fleet.
        """
        return {
            "workers": [
                {
                    "index": worker.index,
                    "alive": worker.process is not None
                    and worker.process.returncode is None,
                    "ready": worker.ready.is_set(),
                    "failed": worker.failed,
                    "respawns": worker.respawns,
                    "backoff_s": worker.backoff_s,
                    "sources": self._shard_sources(worker.index),
                    "apps": [
                        a for a, s in worker.apps.items() if not s.closed
                    ],
                }
                for worker in self._workers
            ],
            "standbys": [
                {
                    "index": standby.index,
                    "mirror_of": standby.mirror_of,
                    "alive": standby.process is not None
                    and standby.process.returncode is None,
                    "ready": standby.ready.is_set(),
                    "failed": standby.failed,
                    "armed_sources": sorted(
                        set(self._shard_sources(standby.mirror_of))
                        - standby.stale_sources
                    ),
                }
                for standby in self._standbys
            ],
            "sources": dict(self._sources),
        }

    async def metrics_text(self) -> str:
        """Cluster-merged Prometheus exposition.

        The router's own registry is relabeled ``worker="router"``; each
        live worker's ``/metrics`` is scraped over its snapshot HTTP
        port and relabeled with its slot index.  A worker that cannot be
        scraped (dead, mid-respawn) is skipped — the merged text
        degrades, the scrape never fails.

        Per-worker bodies are cached for ``metrics_scrape_ttl_s`` so a
        fleet fronting several scrapers (Prometheus + a Watchtower) is
        not re-scraped for every request.
        """
        parts: list[str] = []
        if self.telemetry is not None:
            parts.append(
                relabel_exposition(
                    self.telemetry.registry.render(), {"worker": "router"}
                )
            )
        ttl = self.config.metrics_scrape_ttl_s
        now = time.monotonic()
        stale: list[_Worker] = []
        cached: dict[int, str] = {}
        fleet = self._workers + self._standbys
        for worker in fleet:
            entry = worker.metrics_cache
            if entry is not None and ttl > 0 and now - entry[0] < ttl:
                cached[worker.index] = entry[1]
            else:
                stale.append(worker)
        self._count_scrape("metrics", "hit", len(cached))
        self._count_scrape("metrics", "miss", len(stale))
        bodies = await asyncio.gather(
            *(self._http_get(w, "/metrics") for w in stale)
        )
        for worker, body in zip(stale, bodies):
            if body:
                text = relabel_exposition(
                    body.decode("utf-8", "replace"),
                    {"worker": str(worker.index)},
                )
                worker.metrics_cache = (now, text)
                cached[worker.index] = text
        for worker in fleet:
            part = cached.get(worker.index)
            if part:
                parts.append(part)
        return merge_expositions(parts)

    async def pull_events(self) -> None:
        """Fold every live worker's structured events into the router log.

        Per-worker cursors mean each worker event is ingested at most
        once; a respawned worker restarts its id space, and its cursor
        was reset at launch.  Unreachable workers are skipped.  Folds
        themselves are throttled to one fleet round-trip per
        ``metrics_scrape_ttl_s`` — repeated ``/events`` polls inside the
        TTL answer from the already-folded router log.
        """
        tele = self.telemetry
        if tele is None:
            return
        ttl = self.config.metrics_scrape_ttl_s
        now = time.monotonic()
        if (
            self._events_pull_ts is not None
            and ttl > 0
            and now - self._events_pull_ts < ttl
        ):
            self._count_scrape("events", "hit")
            return
        self._events_pull_ts = now
        self._count_scrape("events", "miss")
        fleet = self._workers + self._standbys
        bodies = await asyncio.gather(
            *(
                self._http_get(w, f"/events?since={w.events_cursor}")
                for w in fleet
            )
        )
        for worker, body in zip(fleet, bodies):
            if not body:
                continue
            records: list[dict] = []
            top = worker.events_cursor
            for line in body.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                records.append(record)
                top = max(top, int(record.get("id", 0)))
            if records:
                tele.events.ingest(records, worker=worker.index)
                worker.events_cursor = top

    async def _worker_snapshot(self, worker: _Worker) -> Optional[dict]:
        if worker.failed or worker.client is None or not worker.ready.is_set():
            return None
        try:
            # Bounded: a worker wedged behind a stalled consumer must
            # not hang fleet-wide snapshots (or graceful shutdown).
            return await asyncio.wait_for(
                worker.client.snapshot(window=True), timeout=5.0
            )
        except (ConnectionError, GatewayError, asyncio.TimeoutError):
            return None

    async def snapshot(self) -> dict:
        """Merged fleet snapshot as a plain dict.

        Totals are summed, session rows concatenated, and the decide
        percentiles recomputed over the concatenation of every worker's
        raw latency window.
        """
        if self._final_snapshot is not None:
            return dict(self._final_snapshot)
        per_worker = await asyncio.gather(
            *(self._worker_snapshot(worker) for worker in self._workers)
        )
        return self._merge([s for s in per_worker if s is not None])

    def _merge(
        self,
        snapshots: list[dict],
        *,
        window_override: Optional[list[float]] = None,
    ) -> dict:
        window: list[float] = (
            list(window_override) if window_override is not None else []
        )
        if window_override is None:
            for snapshot in snapshots:
                window.extend(snapshot.get("decide_window_ms", ()))
        percentiles = latency_percentiles(window, (50, 99))

        def total(key: str) -> int:
            return sum(int(s.get(key, 0)) for s in snapshots)

        sessions = [row for s in snapshots for row in s.get("sessions", ())]
        retired = [row for s in snapshots for row in s.get("retired", ())]
        return {
            "now_ms": max((float(s.get("now_ms", 0.0)) for s in snapshots), default=0.0),
            "sources": list(self._sources),
            "session_count": total("session_count"),
            "offered": total("offered"),
            "decided_emissions": total("decided_emissions"),
            "delivered_tuples": total("delivered_tuples"),
            "dropped_tuples": total("dropped_tuples"),
            "regroups": total("regroups"),
            # A broadcast tick reaches every worker and each counts it
            # once; max (not sum) keeps the merged counter comparable to
            # a single-process run of the same driving.
            "ticks": max((int(s.get("ticks", 0)) for s in snapshots), default=0),
            "cuts_triggered": total("cuts_triggered"),
            "decide_p50_ms": percentiles["p50"],
            "decide_p99_ms": percentiles["p99"],
            "sessions": sessions,
            "retired": retired,
            "workers": [
                {
                    "index": worker.index,
                    "port": worker.port,
                    "alive": worker.process is not None
                    and worker.process.returncode is None,
                    "ready": worker.ready.is_set(),
                    "failed": worker.failed,
                    "respawns": worker.respawns,
                    "sources": self._shard_sources(worker.index),
                    "apps": [
                        a for a, s in worker.apps.items() if not s.closed
                    ],
                }
                for worker in self._workers
            ],
            "standbys": [
                {
                    "index": standby.index,
                    "mirror_of": standby.mirror_of,
                    "alive": standby.process is not None
                    and standby.process.returncode is None,
                    "ready": standby.ready.is_set(),
                    "failed": standby.failed,
                    "respawns": standby.respawns,
                    "armed_sources": sorted(
                        set(self._shard_sources(standby.mirror_of))
                        - standby.stale_sources
                    ),
                }
                for standby in self._standbys
            ],
        }
