"""Per-session micro-batching of decided emissions.

The batch engine's ``BatchedOutput`` strategy (section 3.4) gates *group*
output on input-tuple counts; the live broker instead batches per
*subscriber session* so one slow or chatty consumer cannot delay the
others.  A :class:`MicroBatcher` accumulates a session's decided tuples
and flushes on whichever bound trips first:

* **size** — ``max_items`` tuples are staged, or
* **latency** — the oldest staged tuple has waited ``max_delay_ms`` of
  stream time (checked on every stage and on broker clock ticks).

Each flush becomes one :class:`Batch`, one bounded-queue slot and one
:class:`~repro.net.multicast.ScribeMulticast` publish, so multicast
accounting sees the batched (amortized) per-message overhead the paper
measured rather than one software-overhead charge per tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tuples import StreamTuple

__all__ = ["Batch", "MicroBatcher"]


@dataclass(frozen=True)
class Batch:
    """One flushed group of decided tuples bound for one session."""

    items: tuple[StreamTuple, ...]
    #: Stream time the first item was staged (decided).
    first_staged_ms: float
    #: Stream time the batch was flushed toward the session queue.
    flushed_ms: float

    def __len__(self) -> int:
        return len(self.items)

    @property
    def batching_delay_ms(self) -> float:
        """Extra delay the *first* staged tuple paid for batching."""
        return self.flushed_ms - self.first_staged_ms


class MicroBatcher:
    """Size- and latency-bounded accumulation of one session's output."""

    def __init__(self, max_items: int = 8, max_delay_ms: float = 50.0):
        if max_items < 1:
            raise ValueError("max_items must be at least 1")
        if max_delay_ms < 0.0:
            raise ValueError("max_delay_ms must be non-negative")
        self.max_items = max_items
        self.max_delay_ms = max_delay_ms
        self._staged: list[StreamTuple] = []
        self._first_staged_ms: float = 0.0
        self.flushes = 0
        self.staged_total = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._staged)

    def stage(self, item: StreamTuple, now_ms: float) -> Batch | None:
        """Stage one decided tuple; return a batch if a bound tripped."""
        if not self._staged:
            self._first_staged_ms = now_ms
        self._staged.append(item)
        self.staged_total += 1
        if len(self._staged) >= self.max_items or self.due(now_ms):
            return self.flush(now_ms)
        return None

    def due(self, now_ms: float) -> bool:
        """Has the oldest staged tuple exceeded the latency bound?"""
        return (
            bool(self._staged)
            and now_ms - self._first_staged_ms >= self.max_delay_ms
        )

    def flush(self, now_ms: float) -> Batch | None:
        """Unconditionally flush whatever is staged (``None`` if empty)."""
        if not self._staged:
            return None
        batch = Batch(
            items=tuple(self._staged),
            first_staged_ms=self._first_staged_ms,
            flushed_ms=now_ms,
        )
        self._staged.clear()
        self.flushes += 1
        return batch
