"""Declarative fault injection against a live run.

The cluster test-suite's fault idiom — kill a worker process, SIGSTOP it
until the supervisor declares it unresponsive, wedge a subscriber's
consumer — promoted to library code so scenario files
(:mod:`repro.service.scenario`) can schedule the same faults
declaratively and the verdict manifest can assert on what was actually
injected.

A :class:`ChaosSchedule` is a sorted list of :class:`ChaosOp` entries,
each fired ``at_s`` seconds into the run against a :class:`ChaosContext`
describing the live run's actuator surface (the self-hosted cluster, the
per-app consumer gates).  Ops record their outcome in
:attr:`ChaosSchedule.applied` whether they succeed or not: a chaos run
that silently skipped its faults would make every downstream "survived
the fault" verdict vacuous.

Ops:

* ``kill_worker`` — SIGKILL one worker process (``target`` is the
  worker index).  The supervisor's monitor sees the death and respawns;
  subscribers ride through on parked sessions (or splice from a warm
  standby).
* ``stop_worker`` — SIGSTOP the process for ``duration_s``, then
  SIGCONT.  Short stops stall deliveries and recover silently; stops
  longer than the supervisor's miss budget are declared unresponsive
  and remediated exactly like a death.
* ``partition`` — the router loses the worker: SIGSTOP with no early
  continue, held for ``duration_s``.  On a single host an alive-but-
  unreachable process is observationally a network partition, and the
  supervisor treats it as one ("unresponsive" death reason →
  kill + respawn).  The SIGCONT after the window is a no-op when
  remediation already replaced the process.
* ``stall_reader`` — clear one subscriber's consumer gate for
  ``duration_s`` (``target`` is the app name): deliveries queue up
  broker-side, driving the overflow policy and any degradation ladder,
  without touching the socket.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["CHAOS_OPS", "ChaosOp", "ChaosContext", "ChaosSchedule"]

#: Supported fault kinds.
CHAOS_OPS = ("kill_worker", "stop_worker", "partition", "stall_reader")

#: Ops whose ``target`` names a worker index.
_WORKER_OPS = ("kill_worker", "stop_worker", "partition")

#: Ops that need a positive ``duration_s`` window.
_WINDOWED_OPS = ("stop_worker", "partition", "stall_reader")


@dataclass(frozen=True)
class ChaosOp:
    """One scheduled fault, ``at_s`` seconds into the run."""

    at_s: float
    op: str
    #: Worker index (as text or int) for worker ops, app name for
    #: ``stall_reader``.
    target: str = "0"
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in CHAOS_OPS:
            raise ValueError(
                f"unknown chaos op {self.op!r}; expected one of {CHAOS_OPS}"
            )
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.op in _WINDOWED_OPS and self.duration_s <= 0:
            raise ValueError(f"chaos op {self.op!r} needs duration_s > 0")
        if self.op in _WORKER_OPS:
            try:
                int(self.target)
            except (TypeError, ValueError):
                raise ValueError(
                    f"chaos op {self.op!r} targets a worker index, "
                    f"got {self.target!r}"
                ) from None


@dataclass
class ChaosContext:
    """The live run's actuator surface, as visible to chaos ops.

    ``cluster`` is the self-hosted :class:`ClusterService` (``None`` for
    single-broker runs — worker ops then fail and are recorded as such).
    ``gates`` maps app name → the pause gate its consumer awaits before
    each batch; ``stall_reader`` clears and restores these.  ``emit``
    (optional) receives one structured event per applied op so the fault
    shows up in the run's event log next to the remediation it caused.
    """

    cluster: Optional[object] = None
    gates: dict = field(default_factory=dict)
    emit: Optional[Callable[..., None]] = None


class ChaosSchedule:
    """Fire a sorted fault schedule against a live run."""

    def __init__(self, ops: tuple[ChaosOp, ...] = ()):
        self.ops = tuple(sorted(ops, key=lambda op: op.at_s))
        #: One record per fired op: ``{at_s, op, target, ok, error?}``.
        self.applied: list[dict] = []

    def __bool__(self) -> bool:
        return bool(self.ops)

    async def run(self, ctx: ChaosContext) -> None:
        """Apply every op at its scheduled offset (cancellable)."""
        started = time.perf_counter()
        for op in self.ops:
            delay = op.at_s - (time.perf_counter() - started)
            if delay > 0:
                await asyncio.sleep(delay)
            record = {
                "at_s": round(time.perf_counter() - started, 4),
                "op": op.op,
                "target": str(op.target),
                "duration_s": op.duration_s,
                "ok": True,
            }
            try:
                await self._apply(op, ctx)
            except asyncio.CancelledError:
                record.update(ok=False, error="cancelled")
                self.applied.append(record)
                raise
            except Exception as exc:
                record.update(ok=False, error=str(exc) or repr(exc))
            self.applied.append(record)
            if ctx.emit is not None:
                ctx.emit("chaos_op", **record)

    async def _apply(self, op: ChaosOp, ctx: ChaosContext) -> None:
        if op.op == "stall_reader":
            gate = ctx.gates.get(str(op.target))
            if gate is None:
                raise ValueError(f"no consumer gate for app {op.target!r}")
            gate.clear()
            try:
                await asyncio.sleep(op.duration_s)
            finally:
                gate.set()
            return
        pid = self._worker_pid(op, ctx)
        if op.op == "kill_worker":
            os.kill(pid, signal.SIGKILL)
            return
        # stop_worker / partition: hold the process in SIGSTOP for the
        # window, then continue it.  If the supervisor remediated the
        # "unresponsive" worker mid-window the pid is gone and the
        # continue is a no-op.
        os.kill(pid, signal.SIGSTOP)
        try:
            await asyncio.sleep(op.duration_s)
        finally:
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass

    @staticmethod
    def _worker_pid(op: ChaosOp, ctx: ChaosContext) -> int:
        cluster = ctx.cluster
        if cluster is None:
            raise ValueError(
                f"chaos op {op.op!r} needs a self-hosted cluster "
                "(workers > 1)"
            )
        index = int(op.target)
        workers = cluster._workers
        if not 0 <= index < len(workers):
            raise ValueError(
                f"worker index {index} out of range (fleet of {len(workers)})"
            )
        process = workers[index].process
        if process is None or process.returncode is not None:
            raise ValueError(f"worker {index} has no live process")
        return process.pid
