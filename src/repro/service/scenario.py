"""Declarative robustness scenarios with graded verdicts.

A scenario file composes a load shape (flash crowd, diurnal swell,
correlated bursts — :class:`~repro.service.loadgen.LoadGenConfig` with a
``rate_profile``), a degradation ladder
(:mod:`repro.qos`), a chaos schedule (:mod:`repro.service.chaos`) and
per-scenario Watchtower rules into one reproducible experiment, and
every run is *graded*: the harness emits a ``repro-scenario/v1`` verdict
manifest whose checks assert the robustness claims the run was supposed
to demonstrate — every subscriber still connected, degradation bounded
to the declared maximum level, recovery to level 0 inside the budget,
the remediation chain actually observed, delivered-stream digests
recorded per subscriber.

TOML is the native format (3.11+ ``tomllib``); JSON with the same shape
works everywhere — the file goes through the same parse/strict-key
machinery as :mod:`repro.obs.rulesfile`, and an embedded
``[watch_rules]`` table is resolved by that module's own loader.

Example (TOML)::

    [scenario]
    name = "flash-crowd"
    description = "6x burst; degrade instead of dropping subscribers"

    [load]
    source = "random_walk"
    size = "tiny"
    rate = 300.0
    duration_s = 5.0
    queue_capacity = 4
    overflow = "drop_oldest"
    consumer_delay_ms = 8.0
    rate_profile = [[0.5, 1.0], [1.5, 6.0], [3.0, 0.2]]

    [degradation]
    levels = ["DC1(value, 60, 1)", "DC1(value, 240, 1)"]
    [degradation.config]
    queue_high_ratio = 0.5
    interval_s = 0.05

    [[chaos]]
    at_s = 1.0
    op = "kill_worker"
    target = 0

    [verdict]
    max_level = 1
    max_recovery_s = 5.0
    expect_events = ["qos_degraded", "qos_recovered"]

    [verdict.disabled]        # grades the --degradation off replay
    require_shed = true

``run_scenario(scenario, degradation=False)`` replays the identical
trace with the ladder stripped and grades it against
``[verdict.disabled]`` instead — the control run that demonstrates the
overload *would* have shed subscribers without adaptive QoS.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

from repro.obs.rulesfile import (
    RulesConfig,
    RulesFileError,
    _check_keys,
    _parse_text,
    rules_config_from_dict,
)
from repro.service.chaos import ChaosOp, ChaosSchedule
from repro.service.loadgen import (
    SIZES,
    LoadGenConfig,
    _app_name,
    run_loadgen,
)

__all__ = [
    "ScenarioError",
    "Scenario",
    "load_scenario_file",
    "run_scenario",
]

#: Manifest schema identifier.
SCHEMA = "repro-scenario/v1"

_TOP_KEYS = frozenset(
    {"scenario", "load", "degradation", "chaos", "watch_rules", "verdict"}
)

_SCENARIO_KEYS = frozenset({"name", "description"})

#: ``[load]`` keys forwarded into :class:`LoadGenConfig` verbatim
#: (after shape conversion for ``rate_profile``).  Deliberately absent:
#: ``churn``/``verify``/``connect``/``drain_trace`` (scenario runs
#: grade delivered digests, not batch equivalence), ``out_dir`` (the
#: runner owns artifact placement) and the degradation fields (those
#: come from ``[degradation]``).
_LOAD_KEYS = frozenset(
    {
        "source",
        "size",
        "rate",
        "duration_s",
        "mode",
        "algorithm",
        "constraint_ms",
        "seed",
        "queue_capacity",
        "overflow",
        "batch_max_items",
        "batch_max_delay_ms",
        "consumer_delay_ms",
        "metrics_interval_s",
        "max_in_flight",
        "transport",
        "codec",
        "fanout",
        "ingest_batch",
        "adaptive_batch",
        "sources",
        "workers",
        "trace_sample",
        "tuple_size_bytes",
        "watch",
        "watch_interval_s",
        "rate_profile",
    }
)

_DEGRADATION_KEYS = frozenset({"levels", "config"})

_CHAOS_KEYS = frozenset({"at_s", "op", "target", "duration_s"})

_VERDICT_KEYS = frozenset(
    {
        "require_all_connected",
        "max_level",
        "require_full_recovery",
        "max_recovery_s",
        "expect_events",
        "require_chaos_applied",
        "require_clean_shutdown",
        "require_digests",
        "min_delivered",
        "disabled",
    }
)

_DISABLED_KEYS = frozenset(
    {"require_shed", "min_shed", "require_clean_shutdown", "min_delivered"}
)


class ScenarioError(ValueError):
    """A scenario file that parsed but does not describe a valid run."""


@dataclass(frozen=True)
class Scenario:
    """One loaded scenario: config, faults, rules and grading criteria."""

    name: str
    description: str = ""
    #: Degradation fields included when the file declares a ladder.
    config: LoadGenConfig = field(default_factory=LoadGenConfig)
    chaos_ops: tuple[ChaosOp, ...] = ()
    #: ``[verdict]`` table (degradation-on grading criteria).
    verdict: dict = field(default_factory=dict)
    #: ``[verdict.disabled]`` table (degradation-off grading criteria).
    disabled_verdict: dict = field(default_factory=dict)
    watch_rules: Optional[RulesConfig] = None
    path: Optional[str] = None


def load_scenario_file(path: str | Path) -> Scenario:
    """Load and validate one scenario file (TOML or JSON)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    try:
        data = _parse_text(text, path.suffix.lower(), str(path))
    except RulesFileError as exc:
        raise ScenarioError(str(exc)) from exc
    return scenario_from_dict(data, where=str(path))


def scenario_from_dict(data: dict, where: str = "<inline>") -> Scenario:
    """Validate an already-parsed scenario table."""
    if not isinstance(data, dict):
        raise ScenarioError(f"{where}: top level must be a table/object")
    try:
        return _build_scenario(data, where)
    except RulesFileError as exc:
        # _check_keys and the embedded rules loader raise RulesFileError;
        # surface everything as one error type per input file kind.
        raise ScenarioError(str(exc)) from exc


def _build_scenario(data: dict, where: str) -> Scenario:
    _check_keys(data, _TOP_KEYS, where)

    meta = _table(data, "scenario", where, required=True)
    _check_keys(meta, _SCENARIO_KEYS, f"{where}: scenario")
    name = meta.get("name")
    if not name or not isinstance(name, str):
        raise ScenarioError(f"{where}: [scenario] needs a string 'name'")
    description = str(meta.get("description", ""))

    load = _table(data, "load", where)
    _check_keys(load, _LOAD_KEYS, f"{where}: load")
    kwargs = dict(load)
    if "rate_profile" in kwargs:
        kwargs["rate_profile"] = _rate_profile(
            kwargs["rate_profile"], where
        )

    degradation = _table(data, "degradation", where)
    if degradation:
        _check_keys(degradation, _DEGRADATION_KEYS, f"{where}: degradation")
        levels = degradation.get("levels")
        if (
            not isinstance(levels, list)
            or not levels
            or not all(isinstance(s, str) for s in levels)
        ):
            raise ScenarioError(
                f"{where}: degradation.levels must be a non-empty "
                "array of filter-spec strings"
            )
        kwargs["degradation_levels"] = tuple(levels)
        knobs = degradation.get("config")
        if knobs is not None:
            if not isinstance(knobs, dict):
                raise ScenarioError(
                    f"{where}: degradation.config must be a table/object"
                )
            kwargs["degradation_config"] = dict(knobs)

    try:
        config = LoadGenConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"{where}: load: {exc}") from exc

    chaos_raw = data.get("chaos", [])
    if not isinstance(chaos_raw, list) or not all(
        isinstance(e, dict) for e in chaos_raw
    ):
        raise ScenarioError(
            f"{where}: 'chaos' must be an array of tables "
            "([[chaos]] in TOML, a list of objects in JSON)"
        )
    ops = []
    for i, entry in enumerate(chaos_raw):
        label = f"{where}: chaos[{i}]"
        _check_keys(entry, _CHAOS_KEYS, label)
        if "op" not in entry or "at_s" not in entry:
            raise ScenarioError(f"{label}: needs 'at_s' and 'op'")
        try:
            ops.append(
                ChaosOp(
                    at_s=float(entry["at_s"]),
                    op=str(entry["op"]),
                    target=str(entry.get("target", "0")),
                    duration_s=float(entry.get("duration_s", 0.0)),
                )
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"{label}: {exc}") from exc

    watch_rules = None
    rules_table = data.get("watch_rules")
    if rules_table is not None:
        watch_rules = rules_config_from_dict(
            rules_table, where=f"{where}: watch_rules"
        )

    verdict = _table(data, "verdict", where)
    _check_keys(verdict, _VERDICT_KEYS, f"{where}: verdict")
    disabled = verdict.pop("disabled", {})
    if not isinstance(disabled, dict):
        raise ScenarioError(
            f"{where}: verdict.disabled must be a table/object"
        )
    _check_keys(disabled, _DISABLED_KEYS, f"{where}: verdict.disabled")
    expect = verdict.get("expect_events", [])
    if not isinstance(expect, list) or not all(
        isinstance(k, str) for k in expect
    ):
        raise ScenarioError(
            f"{where}: verdict.expect_events must be an array of "
            "event-kind strings"
        )

    return Scenario(
        name=name,
        description=description,
        config=config,
        chaos_ops=tuple(ops),
        verdict=dict(verdict),
        disabled_verdict=dict(disabled),
        watch_rules=watch_rules,
        path=None if where == "<inline>" else where,
    )


def _table(data: dict, key: str, where: str, required: bool = False) -> dict:
    value = data.get(key)
    if value is None:
        if required:
            raise ScenarioError(f"{where}: missing required [{key}] table")
        return {}
    if not isinstance(value, dict):
        raise ScenarioError(f"{where}: '{key}' must be a table/object")
    return dict(value)


def _rate_profile(raw, where: str) -> tuple[tuple[float, float], ...]:
    if not isinstance(raw, list):
        raise ScenarioError(
            f"{where}: load.rate_profile must be an array of "
            "[duration_s, multiplier] pairs"
        )
    profile = []
    for i, pair in enumerate(raw):
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ScenarioError(
                f"{where}: load.rate_profile[{i}] must be "
                "[duration_s, multiplier]"
            )
        profile.append((float(pair[0]), float(pair[1])))
    return tuple(profile)


# ---------------------------------------------------------------------------
# Running + grading
# ---------------------------------------------------------------------------
def _expected_apps(config: LoadGenConfig) -> list[str]:
    """The subscriber set the run attaches at start (no churn in
    scenarios, so this is also the set that should survive)."""
    count = SIZES[config.size]
    return [
        _app_name(config, stream, subscriber)
        for stream in range(config.sources)
        for subscriber in range(count)
    ]


def _event_kinds(out_dir: Optional[Path]) -> Optional[list[str]]:
    """Event kinds recorded by the run, from its ``events.jsonl``."""
    if out_dir is None:
        return None
    path = out_dir / "events.jsonl"
    if not path.exists():
        return None
    kinds = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            kinds.append(str(json.loads(line).get("kind", "")))
        except json.JSONDecodeError:
            continue
    return kinds


def run_scenario(
    scenario: Scenario,
    *,
    degradation: bool = True,
    out_dir: Optional[str | Path] = None,
) -> dict:
    """Run one scenario and grade it; returns the verdict manifest.

    ``degradation=False`` replays the identical load/chaos schedule with
    the ladder stripped and grades against ``[verdict.disabled]`` — the
    control run showing what the overload does *without* adaptive QoS.
    With ``out_dir`` the loadgen artifacts (``summary.json``,
    ``metrics.jsonl``, ``events.jsonl``, ``health.json``) land there and
    the manifest is also written as ``verdict.json``.
    """
    config = scenario.config
    if not degradation:
        config = replace(
            config, degradation_levels=(), degradation_config=None
        )
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        config = replace(config, out_dir=str(out_path))
    chaos = ChaosSchedule(scenario.chaos_ops) if scenario.chaos_ops else None
    summary = run_loadgen(
        config,
        chaos=chaos,
        watch_rules=scenario.watch_rules,
        collect_digests=True,
    )
    manifest = grade_scenario(
        scenario, summary, degradation=degradation, out_dir=out_path
    )
    if out_path is not None:
        (out_path / "verdict.json").write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
    return manifest


def grade_scenario(
    scenario: Scenario,
    summary: dict,
    *,
    degradation: bool = True,
    out_dir: Optional[Path] = None,
) -> dict:
    """Grade one finished run's summary against the scenario's verdict."""
    checks: list[dict] = []

    def check(name, ok, value=None, bound=None, detail="") -> None:
        checks.append(
            {
                "name": name,
                "ok": bool(ok),
                "value": value,
                "bound": bound,
                "detail": detail,
            }
        )

    expected = _expected_apps(scenario.config)
    final_apps = {app for app, _ in summary.get("final_subscriptions", [])}
    missing = sorted(set(expected) - final_apps)
    qos = summary.get("qos") or {}
    criteria = scenario.verdict if degradation else scenario.disabled_verdict

    if degradation:
        if criteria.get("require_all_connected", True):
            check(
                "subscribers_retained",
                not missing,
                value=len(expected) - len(missing),
                bound=len(expected),
                detail=(
                    f"shed: {', '.join(missing)}" if missing else
                    "every subscriber still connected"
                ),
            )
        bound = criteria.get("max_level")
        if bound is not None:
            check(
                "degradation_bounded",
                qos.get("max_level", 0) <= int(bound),
                value=qos.get("max_level", 0),
                bound=int(bound),
                detail="deepest ladder level reached vs. declared max",
            )
        if criteria.get("require_full_recovery", True) and (
            scenario.config.degradation_levels
        ):
            finals = qos.get("final_level_by_app", {})
            stuck = sorted(a for a, lvl in finals.items() if lvl != 0)
            check(
                "recovered_to_level_0",
                not stuck,
                value=len(stuck),
                bound=0,
                detail=(
                    f"still degraded: {', '.join(stuck)}" if stuck else
                    "all sessions back at level 0"
                ),
            )
        budget = criteria.get("max_recovery_s")
        if budget is not None:
            recovery = qos.get("recovery_time_s")
            check(
                "recovery_within_budget",
                recovery is not None and recovery <= float(budget),
                value=recovery,
                bound=float(budget),
                detail=(
                    "first degrade to last recover-to-0"
                    if recovery is not None
                    else "no full degrade->recover round trip recorded"
                ),
            )
        expect = criteria.get("expect_events", [])
        if expect:
            kinds = _event_kinds(out_dir)
            if kinds is None:
                check(
                    "events_observed",
                    False,
                    value=None,
                    bound=list(expect),
                    detail=(
                        "event log unavailable (run with out_dir and "
                        "trace_sample > 0)"
                    ),
                )
            else:
                absent = [k for k in expect if k not in kinds]
                check(
                    "events_observed",
                    not absent,
                    value=sorted(set(kinds) & set(expect)),
                    bound=list(expect),
                    detail=(
                        f"missing: {', '.join(absent)}" if absent else
                        "expected event chain observed"
                    ),
                )
        if criteria.get("require_digests", True):
            digests = summary.get("delivered_digest") or {}
            empty = sorted(
                app
                for app in final_apps
                if digests.get(app, {}).get("count", 0) <= 0
            )
            check(
                "digests_recorded",
                bool(digests) and not empty,
                value=len(digests),
                bound=len(final_apps),
                detail=(
                    f"no delivered stream for: {', '.join(empty)}"
                    if empty
                    else "per-subscriber delivered-stream digests recorded"
                ),
            )
    else:
        if criteria.get("require_shed", True):
            min_shed = int(criteria.get("min_shed", 1))
            check(
                "subscribers_shed",
                len(missing) >= min_shed,
                value=len(missing),
                bound=min_shed,
                detail=(
                    f"shed: {', '.join(missing)}" if missing else
                    "overload shed nobody - the control run proves nothing"
                ),
            )

    if scenario.chaos_ops and criteria.get("require_chaos_applied", True):
        applied = summary.get("chaos_applied") or []
        failed = [r for r in applied if not r.get("ok")]
        check(
            "chaos_applied",
            len(applied) == len(scenario.chaos_ops) and not failed,
            value=len(applied) - len(failed),
            bound=len(scenario.chaos_ops),
            detail=(
                "; ".join(
                    f"{r['op']}@{r['at_s']}s: {r.get('error')}"
                    for r in failed
                )
                if failed
                else "every scheduled fault injected"
            ),
        )

    min_delivered = int(criteria.get("min_delivered", 1))
    check(
        "delivered",
        summary.get("delivered_tuples", 0) >= min_delivered,
        value=summary.get("delivered_tuples", 0),
        bound=min_delivered,
        detail="total tuples delivered to subscribers",
    )

    if criteria.get("require_clean_shutdown", degradation):
        check(
            "clean_shutdown",
            summary.get("clean_shutdown", False),
            value=summary.get("clean_shutdown", False),
            bound=True,
            detail="; ".join(summary.get("errors", [])) or "no errors",
        )

    return {
        "schema": SCHEMA,
        "scenario": scenario.name,
        "description": scenario.description,
        "degradation": degradation,
        "passed": all(c["ok"] for c in checks),
        "checks": checks,
        "expected_subscribers": expected,
        "qos": qos or None,
        "chaos_applied": summary.get("chaos_applied"),
        "summary": summary,
    }
