"""Open- and closed-loop load generation against the live broker.

Replays a synthetic source trace (volcano, fire, cow, NAMOS, ...) into a
:class:`~repro.service.broker.DisseminationService` at a target
tuples/sec, with optional subscriber-churn schedules, and emits the
reproducibility-harness artifacts the related curv-embedding repo uses
for long-running systems: a ``metrics.jsonl`` stream of periodic
snapshots plus a ``summary.json`` run manifest (deterministic seeds,
config echo, totals, decide-latency percentiles, clean-shutdown flag).

Two offered-load models:

* **open loop** — arrivals follow the schedule regardless of service
  speed: each offer is a fire-and-forget task (bounded by
  ``max_in_flight``; excess arrivals are counted as *shed*), so queueing
  delay shows up as in-flight growth, the honest way to measure an
  overloaded broker;
* **closed loop** — each arrival awaits the previous offer, so a
  ``block`` overflow policy throttles the generator to the slowest
  consumer (end-to-end backpressure).

``verify=True`` replays the offered prefix through a fresh batch engine
built from the final subscription set afterwards and records whether
the live decided outputs match (exact equality for churn-free runs).
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import EngineResult
from repro.core.tuples import StreamTuple, Trace
from repro.experiments.configs import dc_specs_from_statistics
from repro.filters.spec import parse_filter
from repro.runtime.tasks import EngineConfig
from repro.service.broker import (
    DisseminationService,
    ServiceConfig,
    engine_from_config,
)
from repro.sources import CATALOG

__all__ = [
    "SIZES",
    "LOADGEN_SOURCES",
    "ChurnEvent",
    "LoadGenConfig",
    "default_churn",
    "make_trace",
    "run_loadgen",
    "decided_map",
]

#: Subscriber-count presets.
SIZES = {"tiny": 2, "small": 8, "medium": 32}

#: Catalog sources whose generators take plain ``(n, seed)`` kwargs.
LOADGEN_SOURCES = ("random_walk", "sine", "namos", "volcano", "fire", "cow")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled subscription change, ``at_s`` seconds into the run."""

    at_s: float
    op: str  # "subscribe" | "unsubscribe" | "re_filter"
    app: str
    spec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in ("subscribe", "unsubscribe", "re_filter"):
            raise ValueError(f"unknown churn op {self.op!r}")
        if self.op in ("subscribe", "re_filter") and self.spec is None:
            raise ValueError(f"churn op {self.op!r} needs a filter spec")


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation run, fully determined by this config + seeds."""

    source: str = "random_walk"
    size: str = "tiny"
    rate: float = 500.0
    duration_s: float = 2.0
    mode: str = "open"  # "open" | "closed"
    algorithm: str = "region"
    constraint_ms: Optional[float] = None
    seed: int = 7
    queue_capacity: int = 16
    overflow: str = "block"
    batch_max_items: int = 8
    batch_max_delay_ms: float = 50.0
    consumer_delay_ms: float = 0.0
    metrics_interval_s: float = 0.25
    max_in_flight: int = 4096
    churn: tuple[ChurnEvent, ...] = field(default_factory=tuple)
    out_dir: Optional[str] = None
    verify: bool = False

    def __post_init__(self) -> None:
        if self.source not in LOADGEN_SOURCES:
            raise ValueError(
                f"unknown loadgen source {self.source!r}; "
                f"expected one of {LOADGEN_SOURCES}"
            )
        if self.size not in SIZES:
            raise ValueError(f"unknown size {self.size!r}; expected {sorted(SIZES)}")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.rate <= 0.0:
            raise ValueError("rate must be positive")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")


def make_trace(config: LoadGenConfig) -> Trace:
    """The deterministic input trace a config replays (seeded, sized)."""
    n = max(16, int(config.rate * config.duration_s))
    return CATALOG.make(config.source, n=n, seed=config.seed)


def _subscriber_specs(config: LoadGenConfig, trace: Trace) -> list[str]:
    """Recipe-derived DC specs, one per subscriber, over the first attribute."""
    attribute = trace.attributes[0]
    count = SIZES[config.size]
    multipliers = [1.0 + 0.5 * (i % 4) for i in range(count)]
    return dc_specs_from_statistics(trace, attribute, multipliers)


def default_churn(
    config: LoadGenConfig, trace: Optional[Trace] = None
) -> tuple[ChurnEvent, ...]:
    """A representative schedule: re-filter early, subscribe, unsubscribe."""
    if trace is None:
        trace = make_trace(config)
    attribute = trace.attributes[0]
    tightened = dc_specs_from_statistics(trace, attribute, [0.8, 1.7])
    d = config.duration_s
    events = [
        ChurnEvent(at_s=0.4 * d, op="re_filter", app="app0", spec=tightened[0]),
        ChurnEvent(at_s=0.5 * d, op="subscribe", app="app-late", spec=tightened[1]),
    ]
    if SIZES[config.size] >= 2:
        events.append(ChurnEvent(at_s=0.7 * d, op="unsubscribe", app="app1"))
    return tuple(sorted(events, key=lambda e: e.at_s))


def decided_map(result: EngineResult) -> dict[str, list[tuple[int, ...]]]:
    """Per-filter decided tuple seqs, in decision order (tick-invariant)."""
    return {
        name: [tuple(item.seq for item in d.tuples) for d in decided]
        for name, decided in result.decisions.items()
    }


def _merge_decided(epochs: Sequence[EngineResult]) -> dict[str, list[tuple[int, ...]]]:
    merged: dict[str, list[tuple[int, ...]]] = {}
    for epoch in epochs:
        for name, rows in decided_map(epoch).items():
            merged.setdefault(name, []).extend(rows)
    return merged


def _batch_reference(
    subscriptions: Sequence[tuple[str, str]],
    items: Sequence[StreamTuple],
    engine_cfg: EngineConfig,
) -> EngineResult:
    """The batch engine's verdict on the same trace and final group.

    Built from the same :class:`EngineConfig` the live service runs:
    with ``constraint_ms`` set the service takes timely cuts, so an
    unconstrained reference would legitimately diverge and flag a
    correct run as non-equivalent.
    """
    filters = [parse_filter(spec, name=app) for app, spec in subscriptions]
    return engine_from_config(filters, engine_cfg).run(items)


async def _consume(session, delay_ms: float) -> int:
    total = 0
    async for batch in session.batches():
        total += len(batch)
        if delay_ms > 0.0:
            await asyncio.sleep(delay_ms / 1000.0)
    return total


async def _run_async(config: LoadGenConfig, on_record=None) -> dict:
    trace = make_trace(config)
    specs = _subscriber_specs(config, trace)
    source = config.source
    engine_cfg = EngineConfig(
        algorithm=config.algorithm, constraint_ms=config.constraint_ms
    )
    # Under verification a constrained run must restrict timely cuts to
    # arrivals: a tick-fired cut between two arrivals can legitimately
    # decide differently from the batch reference (GroupAwareEngine.tick).
    tick_cuts = not (config.verify and config.constraint_ms is not None)
    service = DisseminationService(
        ServiceConfig(
            engine=engine_cfg,
            batch_max_items=config.batch_max_items,
            batch_max_delay_ms=config.batch_max_delay_ms,
            queue_capacity=config.queue_capacity,
            overflow=config.overflow,
            tick_cuts=tick_cuts,
            seed=config.seed,
        ),
        nodes=["source-node"]
        + [f"host{i}" for i in range(len(specs) + len(config.churn) + 1)],
    )
    service.add_source(source, "source-node")

    consumers: dict[str, asyncio.Task] = {}

    async def attach(app: str, spec: str) -> None:
        session = await service.subscribe(app, source, spec)
        consumers[app] = asyncio.create_task(
            _consume(session, config.consumer_delay_ms)
        )

    for index, spec in enumerate(specs):
        await attach(f"app{index}", spec)

    records: list[dict] = []
    offered_items: list[StreamTuple] = []
    in_flight: set[asyncio.Task] = set()
    shed = 0
    started = time.perf_counter()
    # Stream-time milliseconds advanced per wall second at the target rate.
    stream_dt_ms = (
        trace[1].timestamp - trace[0].timestamp if len(trace) > 1 else 10.0
    )
    # Timestamp of the last tuple the service has *processed* (not merely
    # handed to create_task): in open-loop mode an appended offer may
    # still be a pending task, and ticking past an unprocessed arrival's
    # timestamp is exactly what breaks batch equivalence.
    processed_ts = 0.0

    async def offer_one(item: StreamTuple) -> None:
        nonlocal processed_ts
        await service.offer(source, item)
        processed_ts = max(processed_ts, item.timestamp)

    def stream_now() -> float:
        # Extrapolate stream time from the wall clock, but never run more
        # than one inter-arrival interval ahead of the last processed
        # tuple: ticking past the next arrival's timestamp could close a
        # region a lagging tuple would still join (see
        # GroupAwareEngine.tick).
        wall = (time.perf_counter() - started) * config.rate * stream_dt_ms
        return min(wall, processed_ts + stream_dt_ms)

    stop_metrics = asyncio.Event()

    async def metrics_loop() -> None:
        while not stop_metrics.is_set():
            try:
                await asyncio.wait_for(
                    stop_metrics.wait(), timeout=config.metrics_interval_s
                )
            except asyncio.TimeoutError:
                pass
            await service.tick(stream_now())
            snapshot = service.snapshot()
            record = {
                "t_s": round(time.perf_counter() - started, 4),
                "in_flight": len(in_flight),
                "shed": shed,
                **snapshot.to_dict(),
            }
            records.append(record)
            if on_record is not None:
                on_record(record)

    metrics_task = asyncio.create_task(metrics_loop())

    pending_churn = sorted(config.churn, key=lambda e: e.at_s)
    churn_applied: list[dict] = []

    async def apply_due_churn(elapsed: float) -> None:
        while pending_churn and pending_churn[0].at_s <= elapsed:
            event = pending_churn.pop(0)
            if event.op == "subscribe":
                await attach(event.app, event.spec)
            elif event.op == "unsubscribe":
                await service.unsubscribe(event.app)
            else:
                await service.re_filter(event.app, event.spec)
            churn_applied.append(asdict(event))

    deadline = started + config.duration_s
    for index, item in enumerate(trace):
        now = time.perf_counter()
        if now >= deadline:
            break
        target = started + index / config.rate
        if target > now:
            await asyncio.sleep(target - now)
            if time.perf_counter() >= deadline:
                break
        await apply_due_churn(time.perf_counter() - started)
        if config.mode == "closed":
            offered_items.append(item)
            await offer_one(item)
        else:
            if len(in_flight) >= config.max_in_flight:
                shed += 1
                continue
            offered_items.append(item)
            task = asyncio.create_task(offer_one(item))
            in_flight.add(task)
            task.add_done_callback(in_flight.discard)

    errors: list[str] = []
    if in_flight:
        offer_results = await asyncio.gather(
            *list(in_flight), return_exceptions=True
        )
        errors.extend(repr(r) for r in offer_results if isinstance(r, BaseException))
    # Late-scheduled churn (at_s near or past the feed's end) still runs
    # before shutdown; anything genuinely beyond the horizon is reported.
    await apply_due_churn(time.perf_counter() - started)
    stop_metrics.set()
    await metrics_task

    final_subscriptions = service.subscriptions(source)
    epochs = (await service.close())[source]
    consumer_results = await asyncio.gather(
        *consumers.values(), return_exceptions=True
    )
    errors.extend(repr(r) for r in consumer_results if isinstance(r, BaseException))
    delivered = [r for r in consumer_results if not isinstance(r, BaseException)]
    final_snapshot = service.snapshot()
    wall_s = time.perf_counter() - started

    equivalent: Optional[bool] = None
    if config.verify:
        reference = _batch_reference(final_subscriptions, offered_items, engine_cfg)
        live = _merge_decided(epochs)
        want = decided_map(reference)
        if config.churn:
            # Churn cuts epochs over mid-stream; only the final
            # subscription set's presence is checkable, not equality.
            equivalent = set(live) >= {app for app, _ in final_subscriptions}
        else:
            equivalent = live == want

    summary = {
        "schema": "repro-loadgen/v1",
        "config": {
            **asdict(replace(config, churn=())),
            "churn": [asdict(event) for event in config.churn],
        },
        "trace_tuples": len(trace),
        "offered": len(offered_items),
        "shed": shed,
        "offered_rate_tps": len(offered_items) / wall_s if wall_s > 0 else 0.0,
        "wall_s": round(wall_s, 4),
        "delivered_tuples": sum(delivered),
        "dropped_tuples": final_snapshot.dropped_tuples,
        "decided_emissions": final_snapshot.decided_emissions,
        "decide_latency_ms": {
            "p50": final_snapshot.decide_p50_ms,
            "p99": final_snapshot.decide_p99_ms,
        },
        "regroups": final_snapshot.regroups,
        "ticks": final_snapshot.ticks,
        "cuts_triggered": final_snapshot.cuts_triggered,
        "churn_applied": churn_applied,
        "churn_unapplied": [asdict(event) for event in pending_churn],
        "final_subscriptions": [list(pair) for pair in final_subscriptions],
        "equivalent_to_batch": equivalent,
        "errors": errors,
        "clean_shutdown": not errors and not in_flight,
    }
    records.append({"t_s": round(wall_s, 4), "final": True, **final_snapshot.to_dict()})

    if config.out_dir is not None:
        out = Path(config.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        with (out / "metrics.jsonl").open("w", encoding="utf-8") as stream:
            for record in records:
                stream.write(json.dumps(record) + "\n")
        (out / "summary.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
    return summary


def run_loadgen(config: LoadGenConfig, on_record=None) -> dict:
    """Run one load-generation session to completion (blocking wrapper).

    ``on_record`` is called with each periodic metrics record as it is
    captured (the ``serve`` CLI prints these live).
    """
    return asyncio.run(_run_async(config, on_record=on_record))
