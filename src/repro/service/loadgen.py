"""Open- and closed-loop load generation against the live broker.

Replays a synthetic source trace (volcano, fire, cow, NAMOS, ...) into a
:class:`~repro.service.broker.DisseminationService` at a target
tuples/sec, with optional subscriber-churn schedules, and emits the
reproducibility-harness artifacts the related curv-embedding repo uses
for long-running systems: a ``metrics.jsonl`` stream of periodic
snapshots plus a ``summary.json`` run manifest (deterministic seeds,
config echo, totals, decide-latency percentiles, clean-shutdown flag).

Two offered-load models:

* **open loop** — arrivals follow the schedule regardless of service
  speed: each offer is a fire-and-forget task (bounded by
  ``max_in_flight``; excess arrivals are counted as *shed*), so queueing
  delay shows up as in-flight growth, the honest way to measure an
  overloaded broker;
* **closed loop** — each arrival awaits the previous offer, so a
  ``block`` overflow policy throttles the generator to the slowest
  consumer (end-to-end backpressure).

Two transports, one run loop:

* ``transport="inproc"`` — offers are plain broker calls (the PR-2
  mode);
* ``transport="tcp"`` — every offer, subscription, tick and snapshot
  crosses a real localhost socket through
  :class:`~repro.transport.client.GatewayClient`.  By default the run
  self-hosts a :class:`~repro.transport.server.GatewayServer` on an
  ephemeral port; ``connect="host:port"`` targets an already-running
  ``repro serve`` instead (whose engine algorithm must match
  ``algorithm`` for verification to be meaningful).

``verify=True`` replays the offered prefix through a fresh batch engine
built from the final subscription set afterwards and records whether
the live decided outputs match (exact equality for churn-free runs).
When the broker is in-process (including the self-hosted TCP server)
the comparison is decision-by-decision; against an external server the
per-app *delivered* tuple streams are compared to the flattened batch
reference, which is exact for churn-free, drop-free runs.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field, replace
from hashlib import blake2s
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import EngineResult
from repro.core.tuples import StreamTuple, Trace
from repro.experiments.configs import dc_specs_from_statistics
from repro.filters.spec import parse_filter
from repro.obs import DEFAULT_SAMPLE_PERIOD, Telemetry, stage_id, stage_name
from repro.obs.trace import STAGE_SESSION_QUEUE
from repro.runtime.tasks import EngineConfig
from repro.service.broker import (
    DisseminationService,
    ServiceConfig,
    engine_from_config,
)
from repro.sources import CATALOG

__all__ = [
    "SIZES",
    "LOADGEN_SOURCES",
    "TRANSPORTS",
    "CODECS",
    "FANOUTS",
    "ChurnEvent",
    "LoadGenConfig",
    "default_churn",
    "make_trace",
    "run_loadgen",
    "decided_map",
]

#: Subscriber-count presets.
SIZES = {"tiny": 2, "small": 8, "medium": 32}

#: Catalog sources whose generators take plain ``(n, seed)`` kwargs.
LOADGEN_SOURCES = ("random_walk", "sine", "namos", "volcano", "fire", "cow")

#: How offered tuples reach the broker.
TRANSPORTS = ("inproc", "tcp")

#: Wire body codecs (tcp only; mirrors ``repro.transport.codec``,
#: duplicated here so the service package keeps its lazy transport import).
CODECS = ("json", "binary")

#: Decided-batch fan-out strategies (tcp self-hosted only).
FANOUTS = ("shared", "per_session")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled subscription change, ``at_s`` seconds into the run."""

    at_s: float
    op: str  # "subscribe" | "unsubscribe" | "re_filter"
    app: str
    spec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in ("subscribe", "unsubscribe", "re_filter"):
            raise ValueError(f"unknown churn op {self.op!r}")
        if self.op in ("subscribe", "re_filter") and self.spec is None:
            raise ValueError(f"churn op {self.op!r} needs a filter spec")


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation run, fully determined by this config + seeds."""

    source: str = "random_walk"
    size: str = "tiny"
    rate: float = 500.0
    duration_s: float = 2.0
    mode: str = "open"  # "open" | "closed"
    algorithm: str = "region"
    constraint_ms: Optional[float] = None
    seed: int = 7
    queue_capacity: int = 16
    overflow: str = "block"
    batch_max_items: int = 8
    batch_max_delay_ms: float = 50.0
    consumer_delay_ms: float = 0.0
    metrics_interval_s: float = 0.25
    max_in_flight: int = 4096
    churn: tuple[ChurnEvent, ...] = field(default_factory=tuple)
    out_dir: Optional[str] = None
    verify: bool = False
    #: "inproc" offers straight to the broker; "tcp" drives everything
    #: through a GatewayClient over a real localhost socket.
    transport: str = "inproc"
    #: "host:port" of an external gateway (tcp only); None self-hosts.
    connect: Optional[str] = None
    #: Simulated payload bytes per tuple: multicast accounting size and,
    #: over TCP, padding attached to each ingest frame so wire throughput
    #: reflects the configured tuple size.
    tuple_size_bytes: int = 64
    #: Preferred wire body codec (tcp only; the hello handshake may fall
    #: back to "json" against a server that refuses "binary").
    codec: str = "binary"
    #: Decided-batch fan-out strategy of the self-hosted gateway:
    #: "shared" is the encode-once segment path, "per_session" the PR-3
    #: re-serialize-per-subscriber baseline (kept for A/B benchmarks).
    fanout: str = "shared"
    #: Tuples per ingest frame / broker offer.  1 keeps the one-frame-
    #: per-tuple behaviour; larger values batch arrivals into
    #: ``ingest_batch`` frames (tcp) and ``offer_many`` calls (both
    #: transports), amortizing per-tuple wire and lock overhead.
    ingest_batch: int = 1
    #: Adaptive (AIMD) ingest batching — the default when
    #: ``ingest_batch > 1``: the knob becomes the *maximum* batch size
    #: and an :class:`~repro.transport.client.AdaptiveIngest` controller
    #: sizes each flush from observed ack latency; the summary records
    #: the size trajectory.  ``False`` restores the fixed-size knob.
    adaptive_batch: bool = True
    #: Independent source streams.  1 replays ``source`` exactly as
    #: before; N > 1 replays N seeded variants (``source-0`` ...
    #: ``source-N-1``), each with its own subscriber set, feeder task
    #: and (over TCP) its own gateway connection — the shape a sharded
    #: broker tier needs to show any parallelism.
    sources: int = 1
    #: Self-hosted broker worker processes (tcp only, ``connect=None``):
    #: > 1 builds a :mod:`repro.service.cluster` fleet behind the
    #: self-hosted gateway instead of one in-process broker.
    workers: int = 1
    #: Stage-trace roughly one in N tuples (deterministic on the tuple
    #: key, so client, gateway and broker all sample the same tuples).
    #: The sampled traces feed the summary's ``stage_latency`` block;
    #: 0 disables telemetry entirely (no registry, no traces, no
    #: event log — the overhead-gate baseline).
    trace_sample: int = DEFAULT_SAMPLE_PERIOD
    #: Offer the *entire* trace even when ``duration_s`` elapses first.
    #: Duration-bounded runs offer however much fit in the wall budget —
    #: fine for throughput cells, but a determinism comparison across
    #: runs (e.g. delivered-stream digests across worker counts) needs
    #: identical offered sets, which only a full-trace replay gives.
    drain_trace: bool = False
    #: Run a :class:`~repro.obs.watch.Watchtower` alongside the run
    #: (telemetry permitting): the summary gains a ``health`` block and
    #: ``--out`` manifests a ``health.json`` verdict file.
    watch: bool = True
    #: Watchtower poll cadence.
    watch_interval_s: float = 1.0
    #: Piecewise-constant load shape: ``(duration_s, rate_multiplier)``
    #: segments applied to ``rate`` in order (flash crowds, diurnal
    #: swells, correlated bursts).  Past the profile's total duration
    #: the base rate resumes; ``()`` keeps the historic constant rate.
    rate_profile: tuple[tuple[float, float], ...] = ()
    #: Server-side degradation ladder: coarser filter specs (level 1,
    #: 2, ... below each subscriber's own level-0 spec) every
    #: subscriber subscribes with.  Under overload the broker walks
    #: sessions down this ladder instead of dropping them, and the
    #: summary gains a ``qos`` block recording the transitions.
    degradation_levels: tuple[str, ...] = ()
    #: :class:`~repro.qos.controller.DegradationConfig` overrides (a
    #: plain kwargs dict, so the config stays JSON-round-trippable).
    degradation_config: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.source not in LOADGEN_SOURCES:
            raise ValueError(
                f"unknown loadgen source {self.source!r}; "
                f"expected one of {LOADGEN_SOURCES}"
            )
        if self.size not in SIZES:
            raise ValueError(f"unknown size {self.size!r}; expected {sorted(SIZES)}")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.rate <= 0.0:
            raise ValueError("rate must be positive")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; expected {TRANSPORTS}"
            )
        if self.connect is not None:
            if self.transport != "tcp":
                raise ValueError("connect= requires transport='tcp'")
            _, _, port_text = self.connect.rpartition(":")
            if not port_text.isdigit():
                raise ValueError(
                    f"connect= must be 'host:port', got {self.connect!r}"
                )
        if self.tuple_size_bytes < 0:
            raise ValueError("tuple_size_bytes must be non-negative")
        if self.codec not in CODECS:
            raise ValueError(
                f"unknown codec {self.codec!r}; expected one of {CODECS}"
            )
        if self.fanout not in FANOUTS:
            raise ValueError(
                f"unknown fanout {self.fanout!r}; expected one of {FANOUTS}"
            )
        if self.ingest_batch < 1:
            raise ValueError("ingest_batch must be at least 1")
        if self.sources < 1:
            raise ValueError("sources must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.workers > 1:
            if self.transport != "tcp":
                raise ValueError("workers > 1 requires transport='tcp'")
            if self.connect is not None:
                raise ValueError(
                    "workers > 1 self-hosts a cluster; it cannot target "
                    "an external server (drop connect=)"
                )
        if self.trace_sample < 0:
            raise ValueError("trace_sample must be non-negative (0 disables)")
        if self.churn and self.sources != 1:
            raise ValueError(
                "churn schedules name single-stream apps; use sources=1"
            )
        if self.drain_trace and self.mode != "closed":
            raise ValueError(
                "drain_trace promises an identical offered set across "
                "runs; open-loop shedding breaks that — use mode='closed'"
            )
        if self.watch_interval_s <= 0:
            raise ValueError("watch_interval_s must be positive")
        for i, segment in enumerate(self.rate_profile):
            if len(segment) != 2:
                raise ValueError(
                    f"rate_profile[{i}] must be (duration_s, multiplier)"
                )
            duration, multiplier = segment
            if duration <= 0 or multiplier <= 0:
                raise ValueError(
                    f"rate_profile[{i}] needs positive duration and "
                    f"multiplier, got {segment!r}"
                )
        if self.degradation_config is not None and not self.degradation_levels:
            raise ValueError(
                "degradation_config needs degradation_levels to apply to"
            )
        if self.degradation_levels and self.verify:
            raise ValueError(
                "degradation re-filters sessions mid-run, so the batch "
                "reference cannot match; use delivered digests instead "
                "of verify="
            )


class _RateSchedule:
    """Arrival pacing under a piecewise-constant rate profile.

    Maps tuple index → offer time (:meth:`time_for`) and elapsed time →
    expected offered count (:meth:`count_until`); the two are inverses.
    With an empty profile both reduce to the historic constant-rate
    arithmetic (``index / rate``), exactly.
    """

    def __init__(self, rate: float, profile) -> None:
        self.rate = rate
        #: ``(start_s, end_s, segment_rate, count_before)`` per segment.
        self._segments: list[tuple[float, float, float, float]] = []
        t = 0.0
        count = 0.0
        for duration, multiplier in profile:
            segment_rate = rate * multiplier
            self._segments.append((t, t + duration, segment_rate, count))
            count += segment_rate * duration
            t += duration
        self._tail_start = t
        self._tail_count = count

    def time_for(self, index: int) -> float:
        """Seconds into the run at which tuple ``index`` is due."""
        for start, end, segment_rate, before in self._segments:
            if index < before + segment_rate * (end - start):
                return start + (index - before) / segment_rate
        return self._tail_start + (index - self._tail_count) / self.rate

    def count_until(self, t_s: float) -> float:
        """Tuples due in the first ``t_s`` seconds."""
        total = 0.0
        for start, end, segment_rate, _ in self._segments:
            if t_s <= start:
                return total
            total += segment_rate * (min(t_s, end) - start)
        if t_s > self._tail_start:
            total += self.rate * (t_s - self._tail_start)
        return total


def _rate_schedule(config: LoadGenConfig) -> _RateSchedule:
    return _RateSchedule(config.rate, config.rate_profile)


def make_trace(config: LoadGenConfig, stream: int = 0) -> Trace:
    """The deterministic input trace a config replays (seeded, sized).

    ``stream`` selects one of the config's independent source streams
    (each stream reseeds the generator with ``seed + stream``, so the
    streams are distinct but every run of the config replays the same
    set).  Sizing integrates the rate profile, so a flash-crowd shape
    has the whole surge's tuples to offer.
    """
    n = max(16, int(_rate_schedule(config).count_until(config.duration_s)))
    return CATALOG.make(config.source, n=n, seed=config.seed + stream)


def _source_names(config: LoadGenConfig) -> list[str]:
    """Broker source names, one per stream (stable across worker counts:
    the cluster's hash placement keys on exactly these strings)."""
    if config.sources == 1:
        return [config.source]
    return [f"{config.source}-{i}" for i in range(config.sources)]


def _app_name(config: LoadGenConfig, stream: int, subscriber: int) -> str:
    """Subscriber app names; single-stream keeps the historic ``appN``."""
    if config.sources == 1:
        return f"app{subscriber}"
    return f"s{stream}.app{subscriber}"


def _subscriber_specs(config: LoadGenConfig, trace: Trace) -> list[str]:
    """Recipe-derived DC specs, one per subscriber, over the first attribute."""
    attribute = trace.attributes[0]
    count = SIZES[config.size]
    multipliers = [1.0 + 0.5 * (i % 4) for i in range(count)]
    return dc_specs_from_statistics(trace, attribute, multipliers)


def default_churn(
    config: LoadGenConfig, trace: Optional[Trace] = None
) -> tuple[ChurnEvent, ...]:
    """A representative schedule: re-filter early, subscribe, unsubscribe."""
    if trace is None:
        trace = make_trace(config)
    attribute = trace.attributes[0]
    tightened = dc_specs_from_statistics(trace, attribute, [0.8, 1.7])
    d = config.duration_s
    events = [
        ChurnEvent(at_s=0.4 * d, op="re_filter", app="app0", spec=tightened[0]),
        ChurnEvent(at_s=0.5 * d, op="subscribe", app="app-late", spec=tightened[1]),
    ]
    if SIZES[config.size] >= 2:
        events.append(ChurnEvent(at_s=0.7 * d, op="unsubscribe", app="app1"))
    return tuple(sorted(events, key=lambda e: e.at_s))


def _stream_digest(seqs: Sequence[int]) -> str:
    """Order-sensitive digest of one delivered seq stream.

    Two runs delivered byte-identical streams to an app iff their
    digests (and counts) match — the cross-worker-count determinism
    check compares these across independent processes, where comparing
    the raw lists would mean shipping them around.
    """
    digest = blake2s(digest_size=16)
    for seq in seqs:
        digest.update(seq.to_bytes(8, "big", signed=True))
    return digest.hexdigest()


def decided_map(result: EngineResult) -> dict[str, list[tuple[int, ...]]]:
    """Per-filter decided tuple seqs, in decision order (tick-invariant)."""
    return {
        name: [tuple(item.seq for item in d.tuples) for d in decided]
        for name, decided in result.decisions.items()
    }


def _merge_decided(epochs: Sequence[EngineResult]) -> dict[str, list[tuple[int, ...]]]:
    merged: dict[str, list[tuple[int, ...]]] = {}
    for epoch in epochs:
        for name, rows in decided_map(epoch).items():
            merged.setdefault(name, []).extend(rows)
    return merged


def _batch_reference(
    subscriptions: Sequence[tuple[str, str]],
    items: Sequence[StreamTuple],
    engine_cfg: EngineConfig,
) -> EngineResult:
    """The batch engine's verdict on the same trace and final group.

    Built from the same :class:`EngineConfig` the live service runs:
    with ``constraint_ms`` set the service takes timely cuts, so an
    unconstrained reference would legitimately diverge and flag a
    correct run as non-equivalent.
    """
    filters = [parse_filter(spec, name=app) for app, spec in subscriptions]
    return engine_from_config(filters, engine_cfg).run(items)


def _dead_snapshot() -> dict:
    """Summary-shaped zeros for a run whose broker became unreachable."""
    return {
        "dropped_tuples": 0,
        "decided_emissions": 0,
        "decide_p50_ms": 0.0,
        "decide_p99_ms": 0.0,
        "regroups": 0,
        "ticks": 0,
        "cuts_triggered": 0,
    }


async def _consume(
    handle,
    delay_ms: float,
    sink: Optional[list[int]] = None,
    stages: Optional[dict] = None,
    gate: Optional[asyncio.Event] = None,
) -> int:
    """Drain one subscription (in-process session or remote).

    ``sink`` collects the delivered tuple seqs — only external-server
    verification reads them, so every other mode passes ``None`` and a
    long run does not retain one int per delivered tuple.  ``stages``
    (``{stage_id: [dur_ns, ...]}``) accumulates the sampled stage
    traces that reach this subscriber, feeding the summary's
    ``stage_latency`` block.  ``gate`` (set = flowing) is the chaos
    harness's stalled-reader valve: while cleared, this consumer stops
    taking batches and backpressure does whatever the overflow policy
    says.
    """
    total = 0
    async for batch in handle.batches():
        total += len(batch)
        if sink is not None:
            sink.extend(item.seq for item in batch.items)
        if stages is not None:
            _collect_stages(handle, batch, stages)
        if delay_ms > 0.0:
            await asyncio.sleep(delay_ms / 1000.0)
        if gate is not None and not gate.is_set():
            await gate.wait()
    return total


_SID_SESSION_QUEUE = stage_id(STAGE_SESSION_QUEUE)


def _collect_stages(handle, batch, stages: dict) -> None:
    """Fold one delivered batch's sampled traces into ``stages``.

    Remote subscriptions store traces per tuple seq (already carrying
    every wire-measured stage); in-process sessions park them per batch
    with the enqueue timestamp, so the consumer-side queue dwell is
    measured here — the same interval the gateway's delivery pump
    observes on the TCP path.
    """
    claim = getattr(handle, "claim_trace", None)
    if claim is not None:
        for item in batch.items:
            claimed = claim(item.seq)
            if claimed is None:
                continue
            for sid, dur in claimed[0]:
                stages.setdefault(sid, []).append(dur)
        return
    pop = getattr(handle, "pop_traces", None)
    if pop is None:
        return
    noted = pop(batch)
    if noted is None:
        return
    enqueue_ns, traces = noted
    dwell = time.perf_counter_ns() - enqueue_ns
    for pairs in traces.values():
        for sid, dur in pairs:
            stages.setdefault(sid, []).append(dur)
        stages.setdefault(_SID_SESSION_QUEUE, []).append(dwell)


def _pctl_ns(ordered: Sequence[int], q: float) -> int:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def _stage_latency_summary(stages: dict) -> dict:
    """Per-stage p50/p99 (ms) from the run's sampled stage traces."""
    block: dict[str, dict] = {}
    for sid in sorted(stages):
        durs = sorted(stages[sid])
        block[stage_name(sid)] = {
            "count": len(durs),
            "p50_ms": round(_pctl_ns(durs, 0.50) / 1e6, 6),
            "p99_ms": round(_pctl_ns(durs, 0.99) / 1e6, 6),
        }
    return block


def _reconcile_stage_latency(block: Optional[dict], snapshot: dict) -> None:
    """Telemetry-honesty check: two independent latency measurements of
    the same interval must agree.

    The ``decide`` stage trace times arrival→emission per *sampled*
    tuple; the snapshot's ``decide_p50_ms`` is the percentile over
    *every* decide in the window.  Same quantity, different instruments
    — a large residual means one of them is lying (a stage boundary
    moved, a unit slipped, sampling went biased).  The residual is
    surfaced in the summary's ``stage_latency`` block; tolerance is
    generous (sampled percentiles over few tuples are noisy) because
    this is a sanity bound, not a benchmark.
    """
    if not block:
        return
    decide = block.get("decide")
    e2e_p50 = snapshot.get("decide_p50_ms") or 0.0
    if decide is None or decide.get("count", 0) < 5 or e2e_p50 <= 0:
        return
    stage_p50 = decide["p50_ms"]
    residual = stage_p50 - e2e_p50
    tolerance = max(5.0, 0.75 * e2e_p50)
    block["reconciliation"] = {
        "decide_p50_ms": e2e_p50,
        "stage_decide_p50_ms": stage_p50,
        "residual_ms": round(residual, 6),
        "tolerance_ms": round(tolerance, 6),
        "within_tolerance": abs(residual) <= tolerance,
    }


# ---------------------------------------------------------------------------
# Transport drivers: one run loop, two ways to reach the broker
# ---------------------------------------------------------------------------
def _broker_service(
    config: LoadGenConfig,
    engine_cfg: EngineConfig,
    tick_cuts: bool,
    hosts: int,
    sources: Sequence[str],
    telemetry: Optional[Telemetry] = None,
) -> DisseminationService:
    service = DisseminationService(
        ServiceConfig(
            engine=engine_cfg,
            batch_max_items=config.batch_max_items,
            batch_max_delay_ms=config.batch_max_delay_ms,
            queue_capacity=config.queue_capacity,
            overflow=config.overflow,
            tick_cuts=tick_cuts,
            tuple_size_bytes=config.tuple_size_bytes,
            seed=config.seed,
        ),
        nodes=["source-node"] + [f"host{i}" for i in range(hosts)],
        telemetry=telemetry,
    )
    for name in sources:
        service.add_source(name, "source-node")
    return service


async def _close_out(service: DisseminationService, sources: Sequence[str]):
    """Shared in-process close-out: ``(epochs by source, final snapshot
    dict, final subscriptions by source)`` — the subscriptions read
    before the close, straight from the broker (which may have detached
    disconnect-policy laggards the run loop never saw leave)."""
    subscriptions = {name: service.subscriptions(name) for name in sources}
    epochs_all = await service.close()
    epochs = {name: epochs_all[name] for name in sources}
    return epochs, service.snapshot().to_dict(), subscriptions


class _InProcDriver:
    """Offers and churn as plain broker calls (no sockets)."""

    def __init__(
        self,
        config: LoadGenConfig,
        engine_cfg: EngineConfig,
        tick_cuts: bool,
        hosts: int,
        sources: Sequence[str],
        telemetry: Optional[Telemetry] = None,
    ):
        self.sources = list(sources)
        self.service = _broker_service(
            config, engine_cfg, tick_cuts, hosts, self.sources, telemetry
        )

    async def start(self) -> None:
        pass

    @property
    def negotiated_codec(self) -> Optional[str]:
        return None

    async def attach(
        self,
        source: str,
        app: str,
        spec: str,
        degradation=None,
        degradation_config=None,
    ):
        return await self.service.subscribe(
            app,
            source,
            spec,
            degradation=degradation,
            degradation_config=degradation_config,
        )

    async def unsubscribe(self, app: str) -> None:
        await self.service.unsubscribe(app)

    async def re_filter(self, app: str, spec: str) -> None:
        await self.service.re_filter(app, spec)

    async def offer(self, source: str, item: StreamTuple, adapt=None) -> None:
        if adapt is None:
            await self.service.offer(source, item)
            return
        started = time.perf_counter()
        await self.service.offer(source, item)
        adapt.observe(1, time.perf_counter() - started)

    async def offer_many(
        self, source: str, items: Sequence[StreamTuple], adapt=None
    ) -> None:
        if adapt is None:
            await self.service.offer_many(source, items)
            return
        started = time.perf_counter()
        await self.service.offer_many(source, items)
        adapt.observe(len(items), time.perf_counter() - started)

    async def tick(self, now_ms: float) -> None:
        await self.service.tick(now_ms)

    async def snapshot(self) -> dict:
        return self.service.snapshot().to_dict()

    async def finish(self, live_apps: Sequence[str]):
        """Close out the run; returns ``(epochs by source or None, final
        snapshot dict, final subscriptions by source or None)``."""
        return await _close_out(self.service, self.sources)

    async def cleanup(self) -> None:
        pass


class _TcpDriver:
    """Everything — offers, churn, ticks, snapshots — over sockets.

    One gateway connection *per source stream*: the gateway dispatches a
    connection's frames inline (that is what carries backpressure), so
    parallel streams need parallel connections to let a sharded backend
    actually overlap their decides.  With ``workers > 1`` the
    self-hosted backend is a :class:`repro.service.cluster.ClusterService`
    fleet instead of one in-process broker.
    """

    def __init__(
        self,
        config: LoadGenConfig,
        engine_cfg: EngineConfig,
        tick_cuts: bool,
        hosts: int,
        sources: Sequence[str],
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config
        self.sources = list(sources)
        self.own_server = config.connect is None
        self.service: Optional[DisseminationService] = None
        self.cluster = None
        self.gateway = None
        self.clients: dict[str, object] = {}
        self.control = None
        self._app_client: dict[str, object] = {}
        self._engine_cfg = engine_cfg
        self._tick_cuts = tick_cuts
        self._hosts = hosts
        #: Shared with the self-hosted backend *and* every client: one
        #: process, one registry — the client-side ``ingest_send`` stage
        #: and the broker's stages land in the same histograms.
        self.telemetry = telemetry

    async def start(self) -> None:
        from repro.transport.client import GatewayClient
        from repro.transport.server import GatewayServer

        config = self.config
        if self.own_server:
            if config.workers > 1:
                from repro.service.cluster import ClusterConfig, ClusterService

                self.cluster = ClusterService(
                    ClusterConfig(
                        workers=config.workers,
                        sources=tuple(self.sources),
                        algorithm=config.algorithm,
                        constraint_ms=config.constraint_ms,
                        queue_capacity=config.queue_capacity,
                        overflow=config.overflow,
                        batch_max_items=config.batch_max_items,
                        batch_max_delay_ms=config.batch_max_delay_ms,
                        tick_cuts=self._tick_cuts,
                        seed=config.seed,
                        codec=config.codec,
                    ),
                    telemetry=self.telemetry,
                )
                await self.cluster.start()
                backend = self.cluster
            else:
                self.service = _broker_service(
                    config,
                    self._engine_cfg,
                    self._tick_cuts,
                    self._hosts,
                    self.sources,
                    self.telemetry,
                )
                backend = self.service
            self.gateway = GatewayServer(
                backend,
                host="127.0.0.1",
                port=0,
                fanout=config.fanout,
                telemetry=self.telemetry,
            )
        try:
            if self.own_server:
                await self.gateway.start()
                host, port = "127.0.0.1", self.gateway.port
            else:
                host, _, port_text = config.connect.rpartition(":")
                host = host or "127.0.0.1"
                port = int(port_text)
            for source in self.sources:
                client = await GatewayClient.connect(
                    host, port, codec=config.codec, telemetry=self.telemetry
                )
                await client.ensure_source(source)
                self.clients[source] = client
            self.control = self.clients[self.sources[0]]
        except BaseException:
            # A failure after the worker fleet came up must not strand
            # its subprocesses; tear down whatever exists (shutting the
            # gateway down closes the backend, cluster included).
            await self.cleanup()
            raise

    @property
    def negotiated_codec(self) -> Optional[str]:
        return self.control.codec if self.control is not None else None

    async def attach(
        self,
        source: str,
        app: str,
        spec: str,
        degradation=None,
        degradation_config=None,
    ):
        client = self.clients[source]
        subscription = await client.subscribe(
            app,
            source,
            spec,
            queue_capacity=self.config.queue_capacity,
            overflow=self.config.overflow,
            batch_max_items=self.config.batch_max_items,
            batch_max_delay_ms=self.config.batch_max_delay_ms,
            degradation=degradation,
            degradation_config=degradation_config,
        )
        self._app_client[app] = client
        return subscription

    async def unsubscribe(self, app: str) -> None:
        await self._app_client.pop(app, self.control).unsubscribe(app)

    async def re_filter(self, app: str, spec: str) -> None:
        await self._app_client.get(app, self.control).re_filter(app, spec)

    async def offer(self, source: str, item: StreamTuple, adapt=None) -> None:
        # ack=True gives the in-process completion semantics: the call
        # resolves when the broker has processed the tuple.
        await self.clients[source].ingest(
            source,
            item,
            pad_bytes=self.config.tuple_size_bytes,
            adapt=adapt,
        )

    async def offer_many(
        self, source: str, items: Sequence[StreamTuple], adapt=None
    ) -> None:
        # One frame, one ack, padded per tuple so wire bytes still
        # reflect the configured payload size.
        await self.clients[source].ingest_many(
            source,
            items,
            pad_bytes=self.config.tuple_size_bytes * len(items),
            adapt=adapt,
        )

    async def tick(self, now_ms: float) -> None:
        await self.control.tick(now_ms)

    async def snapshot(self) -> dict:
        return await self.control.snapshot()

    async def finish(self, live_apps: Sequence[str]):
        from repro.transport.client import GatewayError

        if self.own_server and self.cluster is None:
            # Same-process server: close it directly and verify against
            # the engines' own epoch record, exactly like inproc.
            return await _close_out(self.service, self.sources)
        # External server or worker fleet: the engines' epochs are not
        # reachable, but a pre-teardown snapshot records which of OUR
        # sessions the broker really holds (the falsifiable half of
        # churn verification); then unsubscribe (final-flushing each
        # session's batcher toward us) so the delivered streams are
        # complete, and snapshot once more for the summary totals.
        # Foreign subscribers on the same source are excluded from the
        # record — though note that their presence changes the filter
        # group, so external --verify is only meaningful when this
        # loadgen's subscribers are the source's only ones.
        ours = set(live_apps)
        pre = await self.control.snapshot()
        subscriptions: dict[str, list[tuple[str, str]]] = {
            source: [] for source in self.sources
        }
        for row in pre["sessions"]:
            if row["source_name"] in subscriptions and row["app_name"] in ours:
                subscriptions[row["source_name"]].append(
                    (row["app_name"], row["spec"])
                )
        for app in live_apps:
            try:
                await self._app_client.get(app, self.control).unsubscribe(app)
            except GatewayError:
                # Already gone server-side (e.g. disconnect-policy reap).
                pass
        return None, await self.control.snapshot(), subscriptions

    async def cleanup(self) -> None:
        for client in self.clients.values():
            await client.close()
        if self.gateway is not None:
            await self.gateway.shutdown()


@dataclass
class _Feed:
    """One source stream's replay state."""

    index: int
    source: str
    trace: Trace
    specs: list[str]
    dt_ms: float
    controller: Optional[object] = None
    offered: list[StreamTuple] = field(default_factory=list)
    pending: list[StreamTuple] = field(default_factory=list)
    #: Timestamp of the last tuple the service has *processed* for this
    #: stream (see the tick-clock clamp below).
    processed_ts: float = 0.0
    #: Set when this stream's feeder died on a transport error: it will
    #: never offer again, so it must stop clamping the tick clock for
    #: the surviving streams.
    failed: bool = False


async def _run_async(
    config: LoadGenConfig,
    on_record=None,
    *,
    chaos=None,
    watch_rules=None,
    collect_digests: bool = False,
) -> dict:
    names = _source_names(config)
    schedule = _rate_schedule(config)
    feeds: list[_Feed] = []
    for index, source in enumerate(names):
        trace = make_trace(config, stream=index)
        feeds.append(
            _Feed(
                index=index,
                source=source,
                trace=trace,
                specs=_subscriber_specs(config, trace),
                dt_ms=(
                    trace[1].timestamp - trace[0].timestamp
                    if len(trace) > 1
                    else 10.0
                ),
            )
        )
    engine_cfg = EngineConfig(
        algorithm=config.algorithm, constraint_ms=config.constraint_ms
    )
    # Under verification a constrained run must restrict timely cuts to
    # arrivals: a tick-fired cut between two arrivals can legitimately
    # decide differently from the batch reference (GroupAwareEngine.tick).
    tick_cuts = not (config.verify and config.constraint_ms is not None)
    hosts = sum(len(feed.specs) for feed in feeds) + len(config.churn) + 1
    tele = (
        Telemetry(sample_period=config.trace_sample)
        if config.trace_sample > 0
        else None
    )
    driver_cls = _TcpDriver if config.transport == "tcp" else _InProcDriver
    driver = driver_cls(config, engine_cfg, tick_cuts, hosts, names, tele)
    await driver.start()
    if config.adaptive_batch and config.ingest_batch > 1:
        # Lazy import: the service package must not import transport at
        # module load (circular import).
        from repro.transport.client import AdaptiveIngest

        for feed in feeds:
            feed.controller = AdaptiveIngest(
                config.ingest_batch,
                events=tele.events if tele is not None else None,
            )
    # Mid-run transport failures (a dying external server, a reaped
    # session) must degrade into a summary with recorded errors and a
    # cleaned-up driver, not a crash that leaks tasks and sockets.
    recoverable: tuple = (ConnectionError, OSError)
    if config.transport == "tcp":
        from repro.transport.client import GatewayError

        recoverable = (ConnectionError, OSError, GatewayError)

    #: Insertion-ordered (app -> (source, spec)), mirroring the broker's
    #: session dicts so the verification references group filters
    #: identically.
    live: dict[str, tuple[str, str]] = {}
    consumers: dict[str, asyncio.Task] = {}
    delivered_seqs: dict[str, list[int]] = {}
    #: Sampled stage durations pooled across every subscriber:
    #: ``{stage_id: [dur_ns, ...]}``.
    stage_samples: dict[int, list[int]] = {}

    # Delivered-seq collection feeds the external/cluster verify branch
    # and the cross-run stream digests; in-process runs verify against
    # engine epochs and skip the retention.  ``collect_digests`` forces
    # it on any transport — scenario verdicts want per-app delivered
    # digests even where verify= is unavailable (degradation re-filters
    # make the batch reference unmatchable).
    collect_seqs = (
        config.verify and config.transport == "tcp"
    ) or collect_digests

    #: Per-app consumer pause gates (set = flowing); the chaos
    #: harness's stall_reader op clears and restores these.
    gates: dict[str, asyncio.Event] = {}
    #: Applied qos transitions in arrival order (server-pushed level
    #: changes; the summary's ``qos`` block folds these).
    qos_transitions: list[dict] = []

    def _ladder(app: str, spec: str):
        from repro.qos.controller import DegradationConfig
        from repro.qos.spec import DegradationPolicy, QualitySpec

        policy = DegradationPolicy(
            app,
            tuple(
                QualitySpec(app, level_spec)
                for level_spec in (spec, *config.degradation_levels)
            ),
        )
        knobs = (
            DegradationConfig(**config.degradation_config)
            if config.degradation_config
            else None
        )
        return policy, knobs

    async def attach(source: str, app: str, spec: str) -> None:
        if config.degradation_levels:
            policy, knobs = _ladder(app, spec)
            handle = await driver.attach(
                source, app, spec, degradation=policy, degradation_config=knobs
            )

            def on_update(update: dict, _app=app) -> None:
                qos_transitions.append(
                    {
                        "t_s": round(time.perf_counter() - started, 4),
                        **update,
                    }
                )

            # In-process sessions push through the broker's listener
            # seam, remote subscriptions through the qos_update hook.
            if hasattr(handle, "on_qos_update"):
                handle.on_qos_update = on_update
            else:
                handle.qos_listener = on_update
        else:
            handle = await driver.attach(source, app, spec)
        live[app] = (source, spec)
        sink = delivered_seqs.setdefault(app, []) if collect_seqs else None
        gate = gates.setdefault(app, asyncio.Event())
        gate.set()
        consumers[app] = asyncio.create_task(
            _consume(
                handle,
                config.consumer_delay_ms,
                sink,
                stage_samples if tele is not None else None,
                gate,
            )
        )

    for feed in feeds:
        for subscriber, spec in enumerate(feed.specs):
            await attach(
                feed.source, _app_name(config, feed.index, subscriber), spec
            )

    # In-run health analysis: a Watchtower polling the same surfaces an
    # external scraper would (the cluster merge when one is self-hosted),
    # emitting verdict transitions into the run's event log.
    watchtower = None
    watch_task: Optional[asyncio.Task] = None
    if tele is not None and config.watch:
        from repro.obs.watch import LocalProbe, Watchtower

        backend = getattr(driver, "cluster", None) or getattr(
            driver, "service", None
        )
        watchtower = Watchtower(
            LocalProbe(tele, service=backend),
            interval_s=config.watch_interval_s,
            events=tele.events,
            rules=watch_rules.rules if watch_rules is not None else None,
            slos=watch_rules.slos if watch_rules is not None else None,
        )
        watch_task = asyncio.create_task(watchtower.run())

    chaos_task: Optional[asyncio.Task] = None
    if chaos is not None and chaos:
        from repro.service.chaos import ChaosContext

        chaos_ctx = ChaosContext(
            cluster=getattr(driver, "cluster", None),
            gates=gates,
            emit=(tele.events.emit if tele is not None else None),
        )
        chaos_task = asyncio.create_task(chaos.run(chaos_ctx))

    records: list[dict] = []
    in_flight: set[asyncio.Task] = set()
    shed = 0
    started = time.perf_counter()
    ingest_batch = config.ingest_batch
    #: Open-loop offers that failed on a recoverable transport error —
    #: expected during a chaos fault window (a killed worker fails
    #: ingest until its respawn), so they are counted and sampled
    #: instead of left as unretrieved task exceptions.
    offer_failures: dict = {"count": 0, "sample": []}

    async def offer_batch(feed: _Feed, batch: Sequence[StreamTuple]) -> None:
        if len(batch) == 1:
            await driver.offer(feed.source, batch[0], adapt=feed.controller)
        else:
            await driver.offer_many(feed.source, batch, adapt=feed.controller)
        feed.processed_ts = max(feed.processed_ts, batch[-1].timestamp)

    async def offer_tracked(feed: _Feed, batch: Sequence[StreamTuple]) -> None:
        try:
            await offer_batch(feed, batch)
        except recoverable as exc:
            offer_failures["count"] += 1
            if len(offer_failures["sample"]) < 3:
                offer_failures["sample"].append(repr(exc))

    def take_pending(feed: _Feed) -> list[StreamTuple]:
        batch = feed.pending[:]
        feed.pending.clear()
        return batch

    def dispatch_pending(feed: _Feed) -> None:
        """Fire-and-track the staged batch (open-loop mode)."""
        if not feed.pending:
            return
        task = asyncio.create_task(offer_tracked(feed, take_pending(feed)))
        in_flight.add(task)
        task.add_done_callback(in_flight.discard)

    async def flush_pending(feed: _Feed) -> None:
        """Offer the staged batch inline (closed-loop and boundaries)."""
        if feed.pending:
            await offer_batch(feed, take_pending(feed))

    def stream_now() -> float:
        # Extrapolate stream time from the wall clock, but never run
        # more than one inter-arrival interval ahead of any stream's
        # last *processed* tuple (not merely task-scheduled): ticking
        # past an unprocessed arrival's timestamp could close a region a
        # lagging tuple would still join (see GroupAwareEngine.tick).
        # Under a rate profile the due-count integral replaces the
        # constant-rate product (they agree when the profile is empty).
        wall = (
            schedule.count_until(time.perf_counter() - started)
            * feeds[0].dt_ms
        )
        # Failed feeds never offer again; including them would freeze
        # the clock (and every healthy stream's timely cuts) forever.
        caps = [
            feed.processed_ts + feed.dt_ms for feed in feeds if not feed.failed
        ]
        return min(wall, *caps) if caps else wall

    stop_metrics = asyncio.Event()

    async def metrics_loop() -> None:
        while not stop_metrics.is_set():
            try:
                await asyncio.wait_for(
                    stop_metrics.wait(), timeout=config.metrics_interval_s
                )
            except asyncio.TimeoutError:
                pass
            await driver.tick(stream_now())
            snapshot = await driver.snapshot()
            record = {
                "t_s": round(time.perf_counter() - started, 4),
                "in_flight": len(in_flight),
                "shed": shed,
                **snapshot,
            }
            records.append(record)
            if on_record is not None:
                on_record(record)

    metrics_task = asyncio.create_task(metrics_loop())

    pending_churn = sorted(config.churn, key=lambda e: e.at_s)
    churn_applied: list[dict] = []

    async def apply_due_churn(elapsed: float) -> None:
        # Churn schedules are single-stream (validated in the config):
        # events always target feed 0's source.
        if not (pending_churn and pending_churn[0].at_s <= elapsed):
            return
        # Staged tuples must precede the subscription change, exactly as
        # they would have with per-tuple offers.
        if config.mode == "closed":
            await flush_pending(feeds[0])
        else:
            dispatch_pending(feeds[0])
        while pending_churn and pending_churn[0].at_s <= elapsed:
            event = pending_churn.pop(0)
            if event.op == "subscribe":
                await attach(feeds[0].source, event.app, event.spec)
            elif event.op == "unsubscribe":
                await driver.unsubscribe(event.app)
                live.pop(event.app, None)
            else:
                await driver.re_filter(event.app, event.spec)
                live[event.app] = (feeds[0].source, event.spec)
            churn_applied.append(asdict(event))

    errors: list[str] = []
    deadline = started + config.duration_s

    async def run_feed(feed: _Feed) -> None:
        """Replay one source stream at the target rate.

        Every stream runs its own instance of this loop concurrently
        (its own pacing, staging and — over TCP — connection), so a
        sharded backend can overlap their decides; a recoverable
        transport failure stops this stream and is recorded without
        tearing the others down.
        """
        nonlocal shed
        try:
            for index, item in enumerate(feed.trace):
                now = time.perf_counter()
                if now >= deadline and not config.drain_trace:
                    break
                target = started + schedule.time_for(index)
                if target > now:
                    await asyncio.sleep(target - now)
                    if time.perf_counter() >= deadline and not config.drain_trace:
                        break
                if feed.index == 0:
                    await apply_due_churn(time.perf_counter() - started)
                limit = (
                    feed.controller.size
                    if feed.controller is not None
                    else ingest_batch
                )
                if config.mode == "closed":
                    feed.offered.append(item)
                    feed.pending.append(item)
                    if len(feed.pending) >= limit:
                        await flush_pending(feed)
                else:
                    if len(in_flight) >= config.max_in_flight:
                        shed += 1
                        continue
                    feed.offered.append(item)
                    feed.pending.append(item)
                    if len(feed.pending) >= limit:
                        dispatch_pending(feed)
            # The feed's tail may be staged but unsent; offer it before
            # the in-flight gather so "offered" means offered.
            if config.mode == "closed":
                await flush_pending(feed)
            else:
                dispatch_pending(feed)
        except recoverable as exc:
            errors.append(repr(exc))
            feed.pending.clear()
            feed.failed = True

    await asyncio.gather(*(run_feed(feed) for feed in feeds))

    if in_flight:
        offer_results = await asyncio.gather(
            *list(in_flight), return_exceptions=True
        )
        errors.extend(repr(r) for r in offer_results if isinstance(r, BaseException))
    if offer_failures["count"] and chaos is None:
        # Without a fault schedule there is nothing that legitimizes
        # failed offers: surface them as run errors (one line, sampled)
        # exactly like an inline transport failure would have been.
        errors.append(
            f"{offer_failures['count']} open-loop offers failed "
            f"(first: {offer_failures['sample'][0]})"
        )
    # Late-scheduled churn (at_s near or past the feed's end) still runs
    # before shutdown; anything genuinely beyond the horizon is reported.
    if not errors:
        try:
            await apply_due_churn(time.perf_counter() - started)
        except recoverable as exc:
            errors.append(repr(exc))
    if chaos_task is not None and not chaos_task.done():
        # Let in-flight fault windows close (they restore SIGCONT /
        # consumer gates in their finally blocks), bounded by the
        # schedule's own horizon so a mis-sized schedule cannot hang
        # the run.
        horizon = max(
            (op.at_s + op.duration_s for op in chaos.ops), default=0.0
        )
        grace = max(0.0, horizon - (time.perf_counter() - started)) + 1.0
        try:
            await asyncio.wait_for(chaos_task, timeout=grace)
        except asyncio.TimeoutError:
            chaos_task.cancel()
    if chaos_task is not None:
        try:
            await chaos_task
        except asyncio.CancelledError:
            pass
        except Exception as exc:  # chaos must never sink the summary
            errors.append(repr(exc))
    stop_metrics.set()
    try:
        await metrics_task
    except recoverable as exc:
        errors.append(repr(exc))
    if watch_task is not None:
        watch_task.cancel()
        try:
            await watch_task
        except asyncio.CancelledError:
            pass
        except recoverable as exc:
            errors.append(repr(exc))
    if watchtower is not None:
        # One last poll over the run's full counters, while the backend
        # (and any worker fleet) is still alive to answer.
        try:
            await watchtower.poll()
        except recoverable as exc:
            errors.append(repr(exc))

    try:
        epochs, final_snapshot, broker_subscriptions = await driver.finish(
            list(live)
        )
    except recoverable as exc:
        errors.append(repr(exc))
        epochs, final_snapshot, broker_subscriptions = None, _dead_snapshot(), None
        for handle in consumers.values():
            handle.cancel()
    if broker_subscriptions is not None:
        subs_by_source = broker_subscriptions
    else:
        subs_by_source = {feed.source: [] for feed in feeds}
        for app, (source, spec) in live.items():
            subs_by_source.setdefault(source, []).append((app, spec))
    final_subscriptions = [
        pair for feed in feeds for pair in subs_by_source.get(feed.source, [])
    ]
    consumer_results = await asyncio.gather(
        *consumers.values(), return_exceptions=True
    )
    errors.extend(
        repr(r)
        for r in consumer_results
        if isinstance(r, BaseException)
        and not isinstance(r, asyncio.CancelledError)
    )
    if tele is not None:
        # Self-hosted cluster: fold the workers' structured events into
        # the run's log while they are still alive to answer.
        pull = getattr(getattr(driver, "cluster", None), "pull_events", None)
        if pull is not None:
            try:
                await pull()
            except recoverable as exc:
                errors.append(repr(exc))
    try:
        await driver.cleanup()
    except recoverable as exc:
        errors.append(repr(exc))
    wall_s = time.perf_counter() - started
    delivered_total = sum(
        r for r in consumer_results if isinstance(r, int)
    )

    equivalent: Optional[bool] = None
    if config.verify:
        stream_ok: list[bool] = []
        for feed in feeds:
            subscriptions = subs_by_source.get(feed.source, [])
            reference = _batch_reference(
                subscriptions, feed.offered, engine_cfg
            )
            want = decided_map(reference)
            if epochs is not None:
                live_map = _merge_decided(epochs.get(feed.source, []))
                if config.churn:
                    # Churn cuts epochs over mid-stream; only the final
                    # subscription set's presence is checkable, not
                    # equality.
                    stream_ok.append(
                        set(live_map) >= {app for app, _ in subscriptions}
                    )
                else:
                    stream_ok.append(live_map == want)
            elif config.churn:
                # External server: the broker's actual session set
                # (pre-teardown snapshot) must match the churn
                # schedule's outcome.
                stream_ok.append(
                    dict(subscriptions)
                    == {
                        app: spec
                        for app, (source, spec) in live.items()
                        if source == feed.source
                    }
                )
            else:
                # External server or worker fleet: the engines are out
                # of reach, but with a drop-free policy the delivered
                # stream per app must equal the reference's decided
                # tuples, flattened in order — this is also what makes
                # worker counts comparable (sources are independent, so
                # any source→worker partitioning must deliver identical
                # per-subscriber streams).
                flattened = {
                    app: [seq for row in rows for seq in row]
                    for app, rows in want.items()
                }
                stream_ok.append(
                    {app: delivered_seqs.get(app, []) for app in flattened}
                    == flattened
                )
        equivalent = all(stream_ok)

    delivered_digest: Optional[dict] = None
    if collect_seqs:
        delivered_digest = {
            app: {
                "count": len(seqs),
                "blake2s": _stream_digest(seqs),
            }
            for app, seqs in sorted(delivered_seqs.items())
        }

    qos_block: Optional[dict] = None
    if config.degradation_levels:
        max_level: dict[str, int] = {}
        final_level: dict[str, int] = {}
        first_degrade_s: Optional[float] = None
        recovered_at_s: Optional[float] = None
        degraded = recovered = 0
        for update in qos_transitions:
            app = str(update.get("app"))
            level = int(update.get("level", 0))
            max_level[app] = max(max_level.get(app, 0), level)
            final_level[app] = level
            if update.get("action") == "degrade":
                degraded += 1
                if first_degrade_s is None:
                    first_degrade_s = update["t_s"]
            else:
                recovered += 1
            if level == 0 and update.get("action") == "recover":
                recovered_at_s = update["t_s"]
        fully_recovered = bool(final_level) and all(
            lvl == 0 for lvl in final_level.values()
        )
        qos_block = {
            "levels": len(config.degradation_levels) + 1,
            "degraded_events": degraded,
            "recovered_events": recovered,
            "max_level": max(max_level.values(), default=0),
            "max_level_by_app": dict(sorted(max_level.items())),
            "final_level_by_app": dict(sorted(final_level.items())),
            #: Overload-to-calm round trip: first degrade to the last
            #: recover-to-0 (None while any session is still degraded
            #: or nothing ever tripped).
            "recovery_time_s": (
                round(recovered_at_s - first_degrade_s, 4)
                if first_degrade_s is not None
                and recovered_at_s is not None
                and fully_recovered
                else None
            ),
            "transitions": qos_transitions,
        }

    summary = {
        "schema": "repro-loadgen/v1",
        "config": {
            **asdict(replace(config, churn=())),
            "churn": [asdict(event) for event in config.churn],
            # Tuple-typed fields as lists, so the in-memory summary is
            # byte-identical to its JSON round trip (summary.json).
            "rate_profile": [list(seg) for seg in config.rate_profile],
            "degradation_levels": list(config.degradation_levels),
        },
        "transport": config.transport,
        #: Actually negotiated wire codec (None in-process; may be
        #: "json" despite a "binary" preference against an old server).
        "codec": driver.negotiated_codec,
        "fanout": config.fanout if config.transport == "tcp" else None,
        "ingest_batch": config.ingest_batch,
        "adaptive_batch": feeds[0].controller is not None,
        "ingest_batch_trajectory": (
            {feed.source: feed.controller.trajectory for feed in feeds}
            if feeds[0].controller is not None
            else None
        ),
        "ingest_batch_final": (
            {feed.source: feed.controller.size for feed in feeds}
            if feeds[0].controller is not None
            else None
        ),
        "workers": config.workers,
        "source_streams": names,
        "trace_tuples": sum(len(feed.trace) for feed in feeds),
        "offered": sum(len(feed.offered) for feed in feeds),
        "shed": shed,
        "offered_rate_tps": (
            sum(len(feed.offered) for feed in feeds) / wall_s
            if wall_s > 0
            else 0.0
        ),
        "wall_s": round(wall_s, 4),
        "delivered_tuples": delivered_total,
        "dropped_tuples": final_snapshot["dropped_tuples"],
        "decided_emissions": final_snapshot["decided_emissions"],
        "decide_latency_ms": {
            "p50": final_snapshot["decide_p50_ms"],
            "p99": final_snapshot["decide_p99_ms"],
        },
        "regroups": final_snapshot["regroups"],
        "ticks": final_snapshot["ticks"],
        "cuts_triggered": final_snapshot["cuts_triggered"],
        #: Per-stage p50/p99 from the sampled traces (None when
        #: telemetry is off; stages appear as their samples do — an
        #: inproc run has no wire stages to report).
        "stage_latency": (
            _stage_latency_summary(stage_samples) if tele is not None else None
        ),
        #: Latest Watchtower report (None when telemetry/watch is off).
        "health": (
            watchtower.report.to_dict()
            if watchtower is not None and watchtower.report is not None
            else None
        ),
        "events_captured": len(tele.events) if tele is not None else 0,
        #: Server-driven degradation outcome (None without a ladder).
        "qos": qos_block,
        #: What the chaos schedule actually injected (None without one).
        "chaos_applied": list(chaos.applied) if chaos is not None else None,
        #: Open-loop offers lost to recoverable transport errors (the
        #: expected cost of a fault window; errors-proper without chaos).
        "offer_failures": offer_failures["count"],
        "offer_failure_sample": list(offer_failures["sample"]),
        "churn_applied": churn_applied,
        "churn_unapplied": [asdict(event) for event in pending_churn],
        "final_subscriptions": [list(pair) for pair in final_subscriptions],
        "equivalent_to_batch": equivalent,
        "delivered_digest": delivered_digest,
        "errors": errors,
        "clean_shutdown": not errors and not in_flight,
    }
    _reconcile_stage_latency(summary["stage_latency"], final_snapshot)
    records.append({"t_s": round(wall_s, 4), "final": True, **final_snapshot})

    if config.out_dir is not None:
        out = Path(config.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        with (out / "metrics.jsonl").open("w", encoding="utf-8") as stream:
            for record in records:
                stream.write(json.dumps(record) + "\n")
        (out / "summary.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        if tele is not None:
            (out / "events.jsonl").write_text(
                tele.events.to_jsonl(), encoding="utf-8"
            )
        if summary["health"] is not None:
            (out / "health.json").write_text(
                json.dumps(summary["health"], indent=2) + "\n",
                encoding="utf-8",
            )
    return summary


def run_loadgen(
    config: LoadGenConfig,
    on_record=None,
    *,
    chaos=None,
    watch_rules=None,
    collect_digests: bool = False,
) -> dict:
    """Run one load-generation session to completion (blocking wrapper).

    ``on_record`` is called with each periodic metrics record as it is
    captured (``loadgen --progress`` prints these live).  ``chaos`` (a
    :class:`~repro.service.chaos.ChaosSchedule`) injects scheduled
    faults into the run; ``watch_rules`` (a
    :class:`~repro.obs.rulesfile.RulesConfig`) replaces the in-run
    Watchtower's stock rules/SLOs; ``collect_digests`` records per-app
    delivered-stream digests regardless of ``verify=`` (the scenario
    harness's evidence of intact delivery).
    """
    return asyncio.run(
        _run_async(
            config,
            on_record=on_record,
            chaos=chaos,
            watch_rules=watch_rules,
            collect_digests=collect_digests,
        )
    )
