"""Open- and closed-loop load generation against the live broker.

Replays a synthetic source trace (volcano, fire, cow, NAMOS, ...) into a
:class:`~repro.service.broker.DisseminationService` at a target
tuples/sec, with optional subscriber-churn schedules, and emits the
reproducibility-harness artifacts the related curv-embedding repo uses
for long-running systems: a ``metrics.jsonl`` stream of periodic
snapshots plus a ``summary.json`` run manifest (deterministic seeds,
config echo, totals, decide-latency percentiles, clean-shutdown flag).

Two offered-load models:

* **open loop** — arrivals follow the schedule regardless of service
  speed: each offer is a fire-and-forget task (bounded by
  ``max_in_flight``; excess arrivals are counted as *shed*), so queueing
  delay shows up as in-flight growth, the honest way to measure an
  overloaded broker;
* **closed loop** — each arrival awaits the previous offer, so a
  ``block`` overflow policy throttles the generator to the slowest
  consumer (end-to-end backpressure).

Two transports, one run loop:

* ``transport="inproc"`` — offers are plain broker calls (the PR-2
  mode);
* ``transport="tcp"`` — every offer, subscription, tick and snapshot
  crosses a real localhost socket through
  :class:`~repro.transport.client.GatewayClient`.  By default the run
  self-hosts a :class:`~repro.transport.server.GatewayServer` on an
  ephemeral port; ``connect="host:port"`` targets an already-running
  ``repro serve`` instead (whose engine algorithm must match
  ``algorithm`` for verification to be meaningful).

``verify=True`` replays the offered prefix through a fresh batch engine
built from the final subscription set afterwards and records whether
the live decided outputs match (exact equality for churn-free runs).
When the broker is in-process (including the self-hosted TCP server)
the comparison is decision-by-decision; against an external server the
per-app *delivered* tuple streams are compared to the flattened batch
reference, which is exact for churn-free, drop-free runs.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.core.engine import EngineResult
from repro.core.tuples import StreamTuple, Trace
from repro.experiments.configs import dc_specs_from_statistics
from repro.filters.spec import parse_filter
from repro.runtime.tasks import EngineConfig
from repro.service.broker import (
    DisseminationService,
    ServiceConfig,
    engine_from_config,
)
from repro.sources import CATALOG

__all__ = [
    "SIZES",
    "LOADGEN_SOURCES",
    "TRANSPORTS",
    "CODECS",
    "FANOUTS",
    "ChurnEvent",
    "LoadGenConfig",
    "default_churn",
    "make_trace",
    "run_loadgen",
    "decided_map",
]

#: Subscriber-count presets.
SIZES = {"tiny": 2, "small": 8, "medium": 32}

#: Catalog sources whose generators take plain ``(n, seed)`` kwargs.
LOADGEN_SOURCES = ("random_walk", "sine", "namos", "volcano", "fire", "cow")

#: How offered tuples reach the broker.
TRANSPORTS = ("inproc", "tcp")

#: Wire body codecs (tcp only; mirrors ``repro.transport.codec``,
#: duplicated here so the service package keeps its lazy transport import).
CODECS = ("json", "binary")

#: Decided-batch fan-out strategies (tcp self-hosted only).
FANOUTS = ("shared", "per_session")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled subscription change, ``at_s`` seconds into the run."""

    at_s: float
    op: str  # "subscribe" | "unsubscribe" | "re_filter"
    app: str
    spec: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in ("subscribe", "unsubscribe", "re_filter"):
            raise ValueError(f"unknown churn op {self.op!r}")
        if self.op in ("subscribe", "re_filter") and self.spec is None:
            raise ValueError(f"churn op {self.op!r} needs a filter spec")


@dataclass(frozen=True)
class LoadGenConfig:
    """One load-generation run, fully determined by this config + seeds."""

    source: str = "random_walk"
    size: str = "tiny"
    rate: float = 500.0
    duration_s: float = 2.0
    mode: str = "open"  # "open" | "closed"
    algorithm: str = "region"
    constraint_ms: Optional[float] = None
    seed: int = 7
    queue_capacity: int = 16
    overflow: str = "block"
    batch_max_items: int = 8
    batch_max_delay_ms: float = 50.0
    consumer_delay_ms: float = 0.0
    metrics_interval_s: float = 0.25
    max_in_flight: int = 4096
    churn: tuple[ChurnEvent, ...] = field(default_factory=tuple)
    out_dir: Optional[str] = None
    verify: bool = False
    #: "inproc" offers straight to the broker; "tcp" drives everything
    #: through a GatewayClient over a real localhost socket.
    transport: str = "inproc"
    #: "host:port" of an external gateway (tcp only); None self-hosts.
    connect: Optional[str] = None
    #: Simulated payload bytes per tuple: multicast accounting size and,
    #: over TCP, padding attached to each ingest frame so wire throughput
    #: reflects the configured tuple size.
    tuple_size_bytes: int = 64
    #: Preferred wire body codec (tcp only; the hello handshake may fall
    #: back to "json" against a server that refuses "binary").
    codec: str = "binary"
    #: Decided-batch fan-out strategy of the self-hosted gateway:
    #: "shared" is the encode-once segment path, "per_session" the PR-3
    #: re-serialize-per-subscriber baseline (kept for A/B benchmarks).
    fanout: str = "shared"
    #: Tuples per ingest frame / broker offer.  1 keeps the one-frame-
    #: per-tuple behaviour; larger values batch arrivals into
    #: ``ingest_batch`` frames (tcp) and ``offer_many`` calls (both
    #: transports), amortizing per-tuple wire and lock overhead.
    ingest_batch: int = 1

    def __post_init__(self) -> None:
        if self.source not in LOADGEN_SOURCES:
            raise ValueError(
                f"unknown loadgen source {self.source!r}; "
                f"expected one of {LOADGEN_SOURCES}"
            )
        if self.size not in SIZES:
            raise ValueError(f"unknown size {self.size!r}; expected {sorted(SIZES)}")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.rate <= 0.0:
            raise ValueError("rate must be positive")
        if self.duration_s <= 0.0:
            raise ValueError("duration_s must be positive")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; expected {TRANSPORTS}"
            )
        if self.connect is not None:
            if self.transport != "tcp":
                raise ValueError("connect= requires transport='tcp'")
            _, _, port_text = self.connect.rpartition(":")
            if not port_text.isdigit():
                raise ValueError(
                    f"connect= must be 'host:port', got {self.connect!r}"
                )
        if self.tuple_size_bytes < 0:
            raise ValueError("tuple_size_bytes must be non-negative")
        if self.codec not in CODECS:
            raise ValueError(
                f"unknown codec {self.codec!r}; expected one of {CODECS}"
            )
        if self.fanout not in FANOUTS:
            raise ValueError(
                f"unknown fanout {self.fanout!r}; expected one of {FANOUTS}"
            )
        if self.ingest_batch < 1:
            raise ValueError("ingest_batch must be at least 1")


def make_trace(config: LoadGenConfig) -> Trace:
    """The deterministic input trace a config replays (seeded, sized)."""
    n = max(16, int(config.rate * config.duration_s))
    return CATALOG.make(config.source, n=n, seed=config.seed)


def _subscriber_specs(config: LoadGenConfig, trace: Trace) -> list[str]:
    """Recipe-derived DC specs, one per subscriber, over the first attribute."""
    attribute = trace.attributes[0]
    count = SIZES[config.size]
    multipliers = [1.0 + 0.5 * (i % 4) for i in range(count)]
    return dc_specs_from_statistics(trace, attribute, multipliers)


def default_churn(
    config: LoadGenConfig, trace: Optional[Trace] = None
) -> tuple[ChurnEvent, ...]:
    """A representative schedule: re-filter early, subscribe, unsubscribe."""
    if trace is None:
        trace = make_trace(config)
    attribute = trace.attributes[0]
    tightened = dc_specs_from_statistics(trace, attribute, [0.8, 1.7])
    d = config.duration_s
    events = [
        ChurnEvent(at_s=0.4 * d, op="re_filter", app="app0", spec=tightened[0]),
        ChurnEvent(at_s=0.5 * d, op="subscribe", app="app-late", spec=tightened[1]),
    ]
    if SIZES[config.size] >= 2:
        events.append(ChurnEvent(at_s=0.7 * d, op="unsubscribe", app="app1"))
    return tuple(sorted(events, key=lambda e: e.at_s))


def decided_map(result: EngineResult) -> dict[str, list[tuple[int, ...]]]:
    """Per-filter decided tuple seqs, in decision order (tick-invariant)."""
    return {
        name: [tuple(item.seq for item in d.tuples) for d in decided]
        for name, decided in result.decisions.items()
    }


def _merge_decided(epochs: Sequence[EngineResult]) -> dict[str, list[tuple[int, ...]]]:
    merged: dict[str, list[tuple[int, ...]]] = {}
    for epoch in epochs:
        for name, rows in decided_map(epoch).items():
            merged.setdefault(name, []).extend(rows)
    return merged


def _batch_reference(
    subscriptions: Sequence[tuple[str, str]],
    items: Sequence[StreamTuple],
    engine_cfg: EngineConfig,
) -> EngineResult:
    """The batch engine's verdict on the same trace and final group.

    Built from the same :class:`EngineConfig` the live service runs:
    with ``constraint_ms`` set the service takes timely cuts, so an
    unconstrained reference would legitimately diverge and flag a
    correct run as non-equivalent.
    """
    filters = [parse_filter(spec, name=app) for app, spec in subscriptions]
    return engine_from_config(filters, engine_cfg).run(items)


def _dead_snapshot() -> dict:
    """Summary-shaped zeros for a run whose broker became unreachable."""
    return {
        "dropped_tuples": 0,
        "decided_emissions": 0,
        "decide_p50_ms": 0.0,
        "decide_p99_ms": 0.0,
        "regroups": 0,
        "ticks": 0,
        "cuts_triggered": 0,
    }


async def _consume(
    handle, delay_ms: float, sink: Optional[list[int]] = None
) -> int:
    """Drain one subscription (in-process session or remote).

    ``sink`` collects the delivered tuple seqs — only external-server
    verification reads them, so every other mode passes ``None`` and a
    long run does not retain one int per delivered tuple.
    """
    total = 0
    async for batch in handle.batches():
        total += len(batch)
        if sink is not None:
            sink.extend(item.seq for item in batch.items)
        if delay_ms > 0.0:
            await asyncio.sleep(delay_ms / 1000.0)
    return total


# ---------------------------------------------------------------------------
# Transport drivers: one run loop, two ways to reach the broker
# ---------------------------------------------------------------------------
def _broker_service(
    config: LoadGenConfig, engine_cfg: EngineConfig, tick_cuts: bool, hosts: int
) -> DisseminationService:
    service = DisseminationService(
        ServiceConfig(
            engine=engine_cfg,
            batch_max_items=config.batch_max_items,
            batch_max_delay_ms=config.batch_max_delay_ms,
            queue_capacity=config.queue_capacity,
            overflow=config.overflow,
            tick_cuts=tick_cuts,
            tuple_size_bytes=config.tuple_size_bytes,
            seed=config.seed,
        ),
        nodes=["source-node"] + [f"host{i}" for i in range(hosts)],
    )
    service.add_source(config.source, "source-node")
    return service


async def _close_out(service: DisseminationService, source: str):
    """Shared in-process close-out: ``(epochs, final snapshot dict,
    final subscriptions)`` — the subscriptions read before the close,
    straight from the broker (which may have detached disconnect-policy
    laggards the run loop never saw leave)."""
    subscriptions = service.subscriptions(source)
    epochs = (await service.close())[source]
    return epochs, service.snapshot().to_dict(), subscriptions


class _InProcDriver:
    """Offers and churn as plain broker calls (no sockets)."""

    def __init__(
        self, config: LoadGenConfig, engine_cfg: EngineConfig, tick_cuts: bool,
        hosts: int,
    ):
        self.source = config.source
        self.service = _broker_service(config, engine_cfg, tick_cuts, hosts)

    async def start(self) -> None:
        pass

    @property
    def negotiated_codec(self) -> Optional[str]:
        return None

    async def attach(self, app: str, spec: str):
        return await self.service.subscribe(app, self.source, spec)

    async def unsubscribe(self, app: str) -> None:
        await self.service.unsubscribe(app)

    async def re_filter(self, app: str, spec: str) -> None:
        await self.service.re_filter(app, spec)

    async def offer(self, item: StreamTuple) -> None:
        await self.service.offer(self.source, item)

    async def offer_many(self, items: Sequence[StreamTuple]) -> None:
        await self.service.offer_many(self.source, items)

    async def tick(self, now_ms: float) -> None:
        await self.service.tick(now_ms)

    async def snapshot(self) -> dict:
        return self.service.snapshot().to_dict()

    async def finish(self, live_apps: Sequence[str]):
        """Close out the run; returns ``(epochs or None, final snapshot
        dict, final subscriptions or None)``."""
        return await _close_out(self.service, self.source)

    async def cleanup(self) -> None:
        pass


class _TcpDriver:
    """Everything — offers, churn, ticks, snapshots — over a socket."""

    def __init__(
        self, config: LoadGenConfig, engine_cfg: EngineConfig, tick_cuts: bool,
        hosts: int,
    ):
        self.config = config
        self.source = config.source
        self.own_server = config.connect is None
        self.service: Optional[DisseminationService] = None
        self.gateway = None
        self.client = None
        self._engine_cfg = engine_cfg
        self._tick_cuts = tick_cuts
        self._hosts = hosts

    async def start(self) -> None:
        from repro.transport.client import GatewayClient
        from repro.transport.server import GatewayServer

        if self.own_server:
            self.service = _broker_service(
                self.config, self._engine_cfg, self._tick_cuts, self._hosts
            )
            self.gateway = GatewayServer(
                self.service,
                host="127.0.0.1",
                port=0,
                fanout=self.config.fanout,
            )
            await self.gateway.start()
            host, port = "127.0.0.1", self.gateway.port
        else:
            host, _, port_text = self.config.connect.rpartition(":")
            host = host or "127.0.0.1"
            port = int(port_text)
        self.client = await GatewayClient.connect(
            host, port, codec=self.config.codec
        )
        await self.client.ensure_source(self.source)

    @property
    def negotiated_codec(self) -> Optional[str]:
        return self.client.codec if self.client is not None else None

    async def attach(self, app: str, spec: str):
        return await self.client.subscribe(
            app,
            self.source,
            spec,
            queue_capacity=self.config.queue_capacity,
            overflow=self.config.overflow,
            batch_max_items=self.config.batch_max_items,
            batch_max_delay_ms=self.config.batch_max_delay_ms,
        )

    async def unsubscribe(self, app: str) -> None:
        await self.client.unsubscribe(app)

    async def re_filter(self, app: str, spec: str) -> None:
        await self.client.re_filter(app, spec)

    async def offer(self, item: StreamTuple) -> None:
        # ack=True gives the in-process completion semantics: the call
        # resolves when the broker has processed the tuple.
        await self.client.ingest(
            self.source, item, pad_bytes=self.config.tuple_size_bytes
        )

    async def offer_many(self, items: Sequence[StreamTuple]) -> None:
        # One frame, one ack, padded per tuple so wire bytes still
        # reflect the configured payload size.
        await self.client.ingest_many(
            self.source,
            items,
            pad_bytes=self.config.tuple_size_bytes * len(items),
        )

    async def tick(self, now_ms: float) -> None:
        await self.client.tick(now_ms)

    async def snapshot(self) -> dict:
        return await self.client.snapshot()

    async def finish(self, live_apps: Sequence[str]):
        from repro.transport.client import GatewayError

        if self.own_server:
            # Same-process server: close it directly and verify against
            # the engines' own epoch record, exactly like inproc.
            return await _close_out(self.service, self.source)
        # External server: the engines' epochs are not reachable, but a
        # pre-teardown snapshot records which of OUR sessions the broker
        # really holds (the falsifiable half of churn verification);
        # then unsubscribe (final-flushing each session's batcher toward
        # us) so the delivered streams are complete, and snapshot once
        # more for the summary totals.  Foreign subscribers on the same
        # source are excluded from the record — though note that their
        # presence changes the filter group, so external --verify is
        # only meaningful when this loadgen's subscribers are the
        # source's only ones.
        ours = set(live_apps)
        pre = await self.client.snapshot()
        subscriptions = [
            (s["app_name"], s["spec"])
            for s in pre["sessions"]
            if s["source_name"] == self.source and s["app_name"] in ours
        ]
        for app in live_apps:
            try:
                await self.client.unsubscribe(app)
            except GatewayError:
                # Already gone server-side (e.g. disconnect-policy reap).
                pass
        return None, await self.client.snapshot(), subscriptions

    async def cleanup(self) -> None:
        if self.client is not None:
            await self.client.close()
        if self.gateway is not None:
            await self.gateway.shutdown()


async def _run_async(config: LoadGenConfig, on_record=None) -> dict:
    trace = make_trace(config)
    specs = _subscriber_specs(config, trace)
    engine_cfg = EngineConfig(
        algorithm=config.algorithm, constraint_ms=config.constraint_ms
    )
    # Under verification a constrained run must restrict timely cuts to
    # arrivals: a tick-fired cut between two arrivals can legitimately
    # decide differently from the batch reference (GroupAwareEngine.tick).
    tick_cuts = not (config.verify and config.constraint_ms is not None)
    hosts = len(specs) + len(config.churn) + 1
    driver_cls = _TcpDriver if config.transport == "tcp" else _InProcDriver
    driver = driver_cls(config, engine_cfg, tick_cuts, hosts)
    await driver.start()
    # Mid-run transport failures (a dying external server, a reaped
    # session) must degrade into a summary with recorded errors and a
    # cleaned-up driver, not a crash that leaks tasks and sockets.
    recoverable: tuple = (ConnectionError, OSError)
    if config.transport == "tcp":
        from repro.transport.client import GatewayError

        recoverable = (ConnectionError, OSError, GatewayError)

    #: Insertion-ordered (app -> spec), mirroring the broker's session
    #: dict so the verification reference groups filters identically.
    live: dict[str, str] = {}
    consumers: dict[str, asyncio.Task] = {}
    delivered_seqs: dict[str, list[int]] = {}

    # Only the external-server verify branch compares delivered seqs;
    # every other mode skips collecting them.
    collect_seqs = config.verify and config.connect is not None

    async def attach(app: str, spec: str) -> None:
        handle = await driver.attach(app, spec)
        live[app] = spec
        sink = delivered_seqs.setdefault(app, []) if collect_seqs else None
        consumers[app] = asyncio.create_task(
            _consume(handle, config.consumer_delay_ms, sink)
        )

    for index, spec in enumerate(specs):
        await attach(f"app{index}", spec)

    records: list[dict] = []
    offered_items: list[StreamTuple] = []
    in_flight: set[asyncio.Task] = set()
    shed = 0
    started = time.perf_counter()
    # Stream-time milliseconds advanced per wall second at the target rate.
    stream_dt_ms = (
        trace[1].timestamp - trace[0].timestamp if len(trace) > 1 else 10.0
    )
    # Timestamp of the last tuple the service has *processed* (not merely
    # handed to create_task): in open-loop mode an appended offer may
    # still be a pending task, and ticking past an unprocessed arrival's
    # timestamp is exactly what breaks batch equivalence.
    processed_ts = 0.0
    ingest_batch = config.ingest_batch
    #: Tuples accepted but not yet offered (batched-ingest staging).
    pending_offers: list[StreamTuple] = []

    async def offer_batch(batch: Sequence[StreamTuple]) -> None:
        nonlocal processed_ts
        if len(batch) == 1:
            await driver.offer(batch[0])
        else:
            await driver.offer_many(batch)
        processed_ts = max(processed_ts, batch[-1].timestamp)

    def take_pending() -> list[StreamTuple]:
        batch = pending_offers[:]
        pending_offers.clear()
        return batch

    def dispatch_pending() -> None:
        """Fire-and-track the staged batch (open-loop mode)."""
        if not pending_offers:
            return
        task = asyncio.create_task(offer_batch(take_pending()))
        in_flight.add(task)
        task.add_done_callback(in_flight.discard)

    async def flush_pending() -> None:
        """Offer the staged batch inline (closed-loop and boundaries)."""
        if pending_offers:
            await offer_batch(take_pending())

    def stream_now() -> float:
        # Extrapolate stream time from the wall clock, but never run more
        # than one inter-arrival interval ahead of the last processed
        # tuple: ticking past the next arrival's timestamp could close a
        # region a lagging tuple would still join (see
        # GroupAwareEngine.tick).
        wall = (time.perf_counter() - started) * config.rate * stream_dt_ms
        return min(wall, processed_ts + stream_dt_ms)

    stop_metrics = asyncio.Event()

    async def metrics_loop() -> None:
        while not stop_metrics.is_set():
            try:
                await asyncio.wait_for(
                    stop_metrics.wait(), timeout=config.metrics_interval_s
                )
            except asyncio.TimeoutError:
                pass
            await driver.tick(stream_now())
            snapshot = await driver.snapshot()
            record = {
                "t_s": round(time.perf_counter() - started, 4),
                "in_flight": len(in_flight),
                "shed": shed,
                **snapshot,
            }
            records.append(record)
            if on_record is not None:
                on_record(record)

    metrics_task = asyncio.create_task(metrics_loop())

    pending_churn = sorted(config.churn, key=lambda e: e.at_s)
    churn_applied: list[dict] = []

    async def apply_due_churn(elapsed: float) -> None:
        if not (pending_churn and pending_churn[0].at_s <= elapsed):
            return
        # Staged tuples must precede the subscription change, exactly as
        # they would have with per-tuple offers.
        if config.mode == "closed":
            await flush_pending()
        else:
            dispatch_pending()
        while pending_churn and pending_churn[0].at_s <= elapsed:
            event = pending_churn.pop(0)
            if event.op == "subscribe":
                await attach(event.app, event.spec)
            elif event.op == "unsubscribe":
                await driver.unsubscribe(event.app)
                live.pop(event.app, None)
            else:
                await driver.re_filter(event.app, event.spec)
                live[event.app] = event.spec
            churn_applied.append(asdict(event))

    errors: list[str] = []
    deadline = started + config.duration_s
    try:
        for index, item in enumerate(trace):
            now = time.perf_counter()
            if now >= deadline:
                break
            target = started + index / config.rate
            if target > now:
                await asyncio.sleep(target - now)
                if time.perf_counter() >= deadline:
                    break
            await apply_due_churn(time.perf_counter() - started)
            if config.mode == "closed":
                offered_items.append(item)
                pending_offers.append(item)
                if len(pending_offers) >= ingest_batch:
                    await flush_pending()
            else:
                if len(in_flight) >= config.max_in_flight:
                    shed += 1
                    continue
                offered_items.append(item)
                pending_offers.append(item)
                if len(pending_offers) >= ingest_batch:
                    dispatch_pending()
        # The feed's tail may be staged but unsent; offer it before the
        # in-flight gather so "offered" means offered.
        if config.mode == "closed":
            await flush_pending()
        else:
            dispatch_pending()
    except recoverable as exc:
        errors.append(repr(exc))
        pending_offers.clear()

    if in_flight:
        offer_results = await asyncio.gather(
            *list(in_flight), return_exceptions=True
        )
        errors.extend(repr(r) for r in offer_results if isinstance(r, BaseException))
    # Late-scheduled churn (at_s near or past the feed's end) still runs
    # before shutdown; anything genuinely beyond the horizon is reported.
    if not errors:
        try:
            await apply_due_churn(time.perf_counter() - started)
        except recoverable as exc:
            errors.append(repr(exc))
    stop_metrics.set()
    try:
        await metrics_task
    except recoverable as exc:
        errors.append(repr(exc))

    try:
        epochs, final_snapshot, broker_subscriptions = await driver.finish(
            list(live)
        )
    except recoverable as exc:
        errors.append(repr(exc))
        epochs, final_snapshot, broker_subscriptions = None, _dead_snapshot(), None
        for handle in consumers.values():
            handle.cancel()
    final_subscriptions = (
        broker_subscriptions
        if broker_subscriptions is not None
        else list(live.items())
    )
    consumer_results = await asyncio.gather(
        *consumers.values(), return_exceptions=True
    )
    errors.extend(
        repr(r)
        for r in consumer_results
        if isinstance(r, BaseException)
        and not isinstance(r, asyncio.CancelledError)
    )
    try:
        await driver.cleanup()
    except recoverable as exc:
        errors.append(repr(exc))
    wall_s = time.perf_counter() - started
    delivered_total = sum(
        r for r in consumer_results if isinstance(r, int)
    )

    equivalent: Optional[bool] = None
    if config.verify:
        reference = _batch_reference(final_subscriptions, offered_items, engine_cfg)
        want = decided_map(reference)
        if epochs is not None:
            live_map = _merge_decided(epochs)
            if config.churn:
                # Churn cuts epochs over mid-stream; only the final
                # subscription set's presence is checkable, not equality.
                equivalent = set(live_map) >= {
                    app for app, _ in final_subscriptions
                }
            else:
                equivalent = live_map == want
        else:
            # External server: the engines are out of reach, but with a
            # drop-free policy the delivered stream per app must equal
            # the reference's decided tuples, flattened in order.
            if config.churn:
                # The broker's actual session set (pre-teardown
                # snapshot) must match the churn schedule's outcome.
                equivalent = dict(final_subscriptions) == live
            else:
                flattened = {
                    app: [seq for row in rows for seq in row]
                    for app, rows in want.items()
                }
                equivalent = {
                    app: delivered_seqs.get(app, []) for app in flattened
                } == flattened

    summary = {
        "schema": "repro-loadgen/v1",
        "config": {
            **asdict(replace(config, churn=())),
            "churn": [asdict(event) for event in config.churn],
        },
        "transport": config.transport,
        #: Actually negotiated wire codec (None in-process; may be
        #: "json" despite a "binary" preference against an old server).
        "codec": driver.negotiated_codec,
        "fanout": config.fanout if config.transport == "tcp" else None,
        "ingest_batch": config.ingest_batch,
        "trace_tuples": len(trace),
        "offered": len(offered_items),
        "shed": shed,
        "offered_rate_tps": len(offered_items) / wall_s if wall_s > 0 else 0.0,
        "wall_s": round(wall_s, 4),
        "delivered_tuples": delivered_total,
        "dropped_tuples": final_snapshot["dropped_tuples"],
        "decided_emissions": final_snapshot["decided_emissions"],
        "decide_latency_ms": {
            "p50": final_snapshot["decide_p50_ms"],
            "p99": final_snapshot["decide_p99_ms"],
        },
        "regroups": final_snapshot["regroups"],
        "ticks": final_snapshot["ticks"],
        "cuts_triggered": final_snapshot["cuts_triggered"],
        "churn_applied": churn_applied,
        "churn_unapplied": [asdict(event) for event in pending_churn],
        "final_subscriptions": [list(pair) for pair in final_subscriptions],
        "equivalent_to_batch": equivalent,
        "errors": errors,
        "clean_shutdown": not errors and not in_flight,
    }
    records.append({"t_s": round(wall_s, 4), "final": True, **final_snapshot})

    if config.out_dir is not None:
        out = Path(config.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        with (out / "metrics.jsonl").open("w", encoding="utf-8") as stream:
            for record in records:
                stream.write(json.dumps(record) + "\n")
        (out / "summary.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
    return summary


def run_loadgen(config: LoadGenConfig, on_record=None) -> dict:
    """Run one load-generation session to completion (blocking wrapper).

    ``on_record`` is called with each periodic metrics record as it is
    captured (``loadgen --progress`` prints these live).
    """
    return asyncio.run(_run_async(config, on_record=on_record))
