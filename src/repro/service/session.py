"""Subscriber sessions with bounded outbound queues and backpressure.

Each live subscriber holds a :class:`SubscriberSession`: its filter spec,
a :class:`MicroBatcher` and a :class:`DeliveryQueue` bounded to
``capacity`` batches.  What happens when the queue is full is the
session's *overflow policy*:

* ``"block"`` — the broker awaits queue space, so a slow consumer slows
  the source feed down (closed-loop backpressure) instead of growing
  broker memory;
* ``"drop_oldest"`` — the oldest queued batch is evicted and counted, so
  a laggard sees fresh data with holes (the paper's timeliness-over-
  completeness stance, Chapter 3, applied to delivery);
* ``"disconnect"`` — the session is closed on the spot; the broker then
  unsubscribes the filter and regroups.

Sessions are re-filterable at runtime (:meth:`SubscriberSession.re_filter`):
the broker cuts the current engine over and rebuilds the group, which is
the filter-churn path of ``adaptive/regroup.py``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AsyncIterator, Callable, Optional

from repro.core.tuples import StreamTuple
from repro.service.batching import Batch, MicroBatcher

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.qos.controller import DegradationController
    from repro.service.broker import DisseminationService

__all__ = [
    "OVERFLOW_POLICIES",
    "SessionDisconnected",
    "SessionStats",
    "DeliveryQueue",
    "SubscriberSession",
]

OVERFLOW_POLICIES = ("block", "drop_oldest", "disconnect")


class SessionDisconnected(Exception):
    """Raised toward the broker when a ``disconnect`` session overflows."""


@dataclass
class SessionStats:
    """Monotonic per-session counters (never reset while live)."""

    staged_tuples: int = 0
    enqueued_batches: int = 0
    #: Tuples that entered the delivery queue (the session's outbound
    #: stream position).  After a batcher flush this equals every tuple
    #: ever routed to the session — the exact splice offset a warm
    #: standby's mirror stream is aligned against.
    shipped_tuples: int = 0
    delivered_batches: int = 0
    delivered_tuples: int = 0
    dropped_batches: int = 0
    dropped_tuples: int = 0


class DeliveryQueue:
    """Bounded asyncio FIFO of :class:`Batch` with an overflow policy."""

    def __init__(self, capacity: int = 16, policy: str = "block"):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {policy!r}; expected {OVERFLOW_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._batches: deque[Batch] = deque()
        self._changed = asyncio.Condition()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._batches)

    @property
    def closed(self) -> bool:
        return self._closed

    async def put(self, batch: Batch) -> Optional[Batch]:
        """Enqueue one batch, applying the overflow policy.

        Returns the batch that was *dropped* to make room (``drop_oldest``
        only), ``None`` otherwise.  Raises :class:`SessionDisconnected`
        when a ``disconnect`` queue overflows.  Puts to a closed queue are
        silently discarded (the consumer is gone).
        """
        async with self._changed:
            if self._closed:
                return batch
            if len(self._batches) >= self.capacity:
                if self.policy == "disconnect":
                    raise SessionDisconnected(
                        f"queue overflow at capacity {self.capacity}"
                    )
                if self.policy == "drop_oldest":
                    dropped = self._batches.popleft()
                    self._batches.append(batch)
                    self._changed.notify_all()
                    return dropped
                # "block": wait for the consumer — this await is the
                # backpressure edge from broker to source feed.
                while len(self._batches) >= self.capacity and not self._closed:
                    await self._changed.wait()
                if self._closed:
                    return batch
            self._batches.append(batch)
            self._changed.notify_all()
            return None

    async def get(self) -> Batch:
        """Dequeue the next batch; raises ``StopAsyncIteration`` when the
        queue is closed and drained."""
        async with self._changed:
            while not self._batches and not self._closed:
                await self._changed.wait()
            if not self._batches:
                raise StopAsyncIteration
            batch = self._batches.popleft()
            self._changed.notify_all()
            return batch

    def put_nowait(self, batch: Batch) -> Optional[Batch]:
        """Non-blocking enqueue for shutdown paths.

        Returns the batch that did not make it: the evicted oldest batch
        under ``drop_oldest``, or ``batch`` itself when the queue is full
        (``block``/``disconnect``) or closed.  Never waits, never raises.
        """
        if self._closed:
            return batch
        if len(self._batches) >= self.capacity:
            if self.policy == "drop_oldest":
                dropped = self._batches.popleft()
                self._batches.append(batch)
                return dropped
            return batch
        self._batches.append(batch)
        return None

    def drain_nowait(self) -> list[Batch]:
        """Synchronously empty the queue (post-run accounting)."""
        drained = list(self._batches)
        self._batches.clear()
        return drained

    async def close(self) -> None:
        """Close the queue; blocked producers and consumers wake up."""
        async with self._changed:
            self._closed = True
            self._changed.notify_all()


@dataclass
class SubscriberSession:
    """One application's live subscription to one source."""

    app_name: str
    source_name: str
    spec: str
    node: str
    queue: DeliveryQueue
    batcher: MicroBatcher
    stats: SessionStats = field(default_factory=SessionStats)
    disconnected: bool = False
    #: Server-driven quality adaptation (None = fixed-spec session).
    #: The broker evaluates it per dispatch and applies its decisions
    #: through the re-filter machinery; a *client* re-filter detaches it
    #: (an explicit spec choice overrides the automatic policy).
    degradation: Optional["DegradationController"] = None
    #: Called with every applied level transition (a plain dict update);
    #: the transport wires this to a ``qos_update`` push frame.  Invoked
    #: synchronously under the source lock, so listeners must only
    #: schedule work, never await.
    qos_listener: Optional[Callable[[dict], None]] = None
    _broker: Optional["DisseminationService"] = None
    #: Trace side channel, keyed by batch identity: ``id(batch) ->
    #: (enqueue_ns, {seq: [(stage_id, dur_ns), ...]})`` for sampled
    #: tuples in that batch.  Written by the broker at ship time, popped
    #: by the delivery pump to extend the trace with queue/write stages.
    #: Bounded: traces are advisory, so entries whose batches were
    #: dropped by overflow (never popped) are evicted oldest-first.
    _trace_notes: dict = field(default_factory=dict)

    #: Eviction bound for :attr:`_trace_notes`.
    _TRACE_NOTES_MAX = 64

    @property
    def degradation_level(self) -> int:
        """Active degradation level (0 = preferred quality / no policy)."""
        return self.degradation.level if self.degradation is not None else 0

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def __aiter__(self) -> AsyncIterator[Batch]:
        return self.batches()

    async def batches(self) -> AsyncIterator[Batch]:
        """Yield delivered batches until the session closes."""
        while True:
            try:
                batch = await self.queue.get()
            except StopAsyncIteration:
                return
            self.stats.delivered_batches += 1
            self.stats.delivered_tuples += len(batch)
            yield batch

    async def items(self) -> AsyncIterator[StreamTuple]:
        """Yield delivered tuples one by one (batch-flattening view)."""
        async for batch in self.batches():
            for item in batch.items:
                yield item

    async def re_filter(self, new_spec: str) -> None:
        """Swap this session's filter spec at runtime (forces a regroup)."""
        if self._broker is None:
            raise RuntimeError("session is not attached to a broker")
        await self._broker.re_filter(self.app_name, new_spec)

    # ------------------------------------------------------------------
    # Broker side
    # ------------------------------------------------------------------
    def _account(self, rejected: Optional[Batch], batch: Batch) -> bool:
        """Record one enqueue attempt's outcome.

        ``rejected`` is what the queue refused: the evicted oldest batch
        under ``drop_oldest``, ``batch`` itself when it did not make it,
        ``None`` on a clean enqueue.  Returns ``True`` when ``batch``
        entered the queue.
        """
        if rejected is not None:
            self.stats.dropped_batches += 1
            self.stats.dropped_tuples += len(rejected)
        if rejected is not batch:
            self.stats.enqueued_batches += 1
            self.stats.shipped_tuples += len(batch)
            return True
        return False

    async def deliver(self, batch: Batch) -> None:
        """Enqueue one flushed batch, recording drops/disconnects."""
        if self.disconnected:
            self.stats.dropped_batches += 1
            self.stats.dropped_tuples += len(batch)
            return
        try:
            rejected = await self.queue.put(batch)
        except SessionDisconnected:
            self.disconnected = True
            self.stats.dropped_batches += 1
            self.stats.dropped_tuples += len(batch)
            await self.queue.close()
            return
        self._account(rejected, batch)

    def deliver_nowait(self, batch: Batch) -> bool:
        """Non-blocking deliver for shutdown/detach paths.

        Never waits: a batch that cannot be enqueued (full ``block``/
        ``disconnect`` queue, closed queue, gone consumer) is counted as
        dropped instead of deadlocking teardown.  Returns ``True`` when
        ``batch`` itself made it into the queue.
        """
        if self.disconnected:
            self.stats.dropped_batches += 1
            self.stats.dropped_tuples += len(batch)
            return False
        return self._account(self.queue.put_nowait(batch), batch)

    def note_traces(
        self, batch: Batch, enqueue_ns: int, traces: dict
    ) -> None:
        """Attach sampled-tuple traces to one outbound batch."""
        notes = self._trace_notes
        while len(notes) >= self._TRACE_NOTES_MAX:
            del notes[next(iter(notes))]
        notes[id(batch)] = (enqueue_ns, traces)

    def pop_traces(self, batch: Batch):
        """Claim the traces noted for ``batch`` (``None`` if untraced)."""
        return self._trace_notes.pop(id(batch), None)

    async def close(self) -> None:
        await self.queue.close()
