"""Self-healing actuator: proposer → verifier → risk → scheduler.

The write half of the control loop the Watchtower's read half feeds.
A :class:`RemediationLoop` subscribes to verdict *transitions* (the
edge-triggered ``anomaly_*`` / ``slo_*`` output of
:class:`repro.obs.watch.Watchtower`) and turns them into safe cluster
actions through four strictly separated stages:

1. **Proposers** — pure functions from ``(transitions, fleet status)``
   to candidate :class:`Action` lists.  A proposer only *suggests*:
   promote the armed standby for a dead slot, respawn a dead process,
   live-migrate the hottest source off an overloaded worker, scale the
   tier up or down, shed the laggiest subscriber.
2. **Verifier** — pre-flight invariant checks against the live control
   plane (does the slot exist, is a standby actually armed, is the
   respawn budget spent, is the fleet big enough to shrink) and
   post-flight checks that the action achieved its stated goal (slot
   ready again, source on the target shard).
3. **Risk ranker** — every action carries a blast radius (fraction of
   the fleet its failure would touch) and a confidence (how sure the
   proposer is it addresses the verdict); ``risk = blast_radius ×
   (1 − confidence)`` orders candidates and the policy's ``max_risk``
   gates what may run unattended.
4. **Scheduler** — executes survivors serially, one action per verdict
   edge, under per-target cooldowns and a sliding-window action budget
   so a flapping verdict can never drive an actuation storm.

Every stage decision is emitted as a ``remediation_*`` event, so the
event log carries the full detect → propose → verify → execute chain
for each incident.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = [
    "Action",
    "RemediationPolicy",
    "RemediationLoop",
    "default_proposers",
    "propose_heal",
    "propose_rebalance",
    "propose_scale",
    "propose_shed",
]

#: Verdict names that mean "a worker process is gone".
_DEATH_VERDICTS = ("worker_dead", "worker_death_seen")

#: Verdict names that mean "the tier is saturated".
_SATURATION_VERDICTS = ("slo_decide_p99", "backpressure_stall")

#: Verdict names that mean "a consumer is drowning".
_OVERFLOW_VERDICTS = ("overflow_drops", "slo_overflow_drops", "queue_depth_anomaly")


@dataclass(frozen=True)
class Action:
    """One proposed cluster actuation, with its own risk assessment.

    ``kind`` is the actuator verb (``adopt_standby`` / ``respawn`` /
    ``migrate_source`` / ``add_worker`` / ``remove_worker`` /
    ``shed_load``); ``target`` its arguments.  ``blast_radius`` is the
    fraction of the fleet a *failed* execution would disturb and
    ``confidence`` the proposer's belief the action resolves the
    triggering verdict — both in [0, 1].
    """

    kind: str
    target: dict
    reason: str
    blast_radius: float
    confidence: float
    detail: str = ""

    @property
    def risk(self) -> float:
        """Expected damage: blast radius weighted by the chance the
        proposer is wrong (``blast_radius × (1 − confidence)``)."""
        return self.blast_radius * (1.0 - self.confidence)

    def key(self) -> tuple:
        """Cooldown identity: the verb plus its primary target."""
        return (self.kind, tuple(sorted(self.target.items())))

    def to_fields(self) -> dict:
        return {
            "action": self.kind,
            "target": dict(self.target),
            "reason": self.reason,
            "blast_radius": round(self.blast_radius, 4),
            "confidence": round(self.confidence, 4),
            "risk": round(self.risk, 4),
        }


@dataclass
class RemediationPolicy:
    """What the loop may do without a human.

    ``max_risk`` gates scheduling (an action above it is proposed,
    logged and skipped); the sliding ``actions_per_window`` budget
    bounds total actuation frequency; per-target ``cooldown_s`` stops a
    still-burning verdict from re-firing the same fix back-to-back.
    Scaling and load shedding are opt-in: they change capacity or
    disconnect subscribers, which not every deployment wants automated.
    """

    max_risk: float = 0.5
    cooldown_s: float = 15.0
    actions_per_window: int = 6
    window_s: float = 60.0
    allow_scale: bool = False
    allow_shed: bool = False
    max_workers: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_risk <= 1.0:
            raise ValueError("max_risk must be in [0, 1]")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.actions_per_window < 1:
            raise ValueError("actions_per_window must be at least 1")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")


# ---------------------------------------------------------------------------
# Proposers: (transitions, fleet, policy) -> [Action]
# ---------------------------------------------------------------------------
def _firing(transitions: Sequence[tuple], *names: str) -> list:
    """Verdicts in ``names`` that just transitioned *into* a bad state."""
    return [
        verdict
        for verdict, _previous in transitions
        if verdict.name in names and verdict.status != "ok"
    ]


def propose_heal(transitions, fleet: dict, policy: RemediationPolicy) -> list[Action]:
    """Dead worker → promote its armed standby, else respawn the slot.

    Adoption is both lower-risk and higher-confidence than a cold
    respawn: the standby's mirrored engines and shadow streams splice
    with zero delivery gap, while a respawn loses the dead epoch's
    state.  The ranker therefore always prefers it when one is armed.
    """
    verdicts = _firing(transitions, *_DEATH_VERDICTS)
    if not verdicts:
        return []
    reason = verdicts[0].name
    workers = fleet.get("workers", ())
    population = max(len(workers), 1)
    armed = {
        standby["mirror_of"]: standby
        for standby in fleet.get("standbys", ())
        if standby["alive"] and standby["ready"] and not standby["failed"]
    }
    actions: list[Action] = []
    for worker in workers:
        if worker["failed"] or (worker["alive"] and worker["ready"]):
            continue
        slot = worker["index"]
        standby = armed.get(slot)
        if standby is not None and standby["armed_sources"]:
            actions.append(
                Action(
                    kind="adopt_standby",
                    target={"worker": slot},
                    reason=reason,
                    blast_radius=1.0 / population,
                    confidence=0.9,
                    detail=f"standby {standby['index']} armed for "
                    f"{len(standby['armed_sources'])} source(s)",
                )
            )
        else:
            actions.append(
                Action(
                    kind="respawn",
                    target={"worker": slot},
                    reason=reason,
                    blast_radius=1.0 / population,
                    confidence=0.7,
                    detail="no armed standby; cold respawn loses the "
                    "dead epoch's decided state",
                )
            )
    # A dead standby is repaired too, at near-zero blast radius: no
    # subscriber traffic flows through it.
    for standby in fleet.get("standbys", ()):
        if standby["failed"] or (standby["alive"] and standby["ready"]):
            continue
        actions.append(
            Action(
                kind="respawn",
                target={"worker": standby["index"]},
                reason=reason,
                blast_radius=0.05,
                confidence=0.8,
                detail="standby process down; mirror tier degraded",
            )
        )
    return actions


def propose_rebalance(
    transitions, fleet: dict, policy: RemediationPolicy
) -> list[Action]:
    """Hot worker → live-migrate one source to the emptiest worker.

    Triggered by queue-depth anomalies: a single worker drowning while
    its peers idle is a placement problem, and the migration handshake
    moves a source with its subscribers attached (no teardown), so the
    cost of being wrong is a bounded drain pause — not an outage.
    """
    if not _firing(transitions, "queue_depth_anomaly"):
        return []
    workers = [
        w
        for w in fleet.get("workers", ())
        if w["alive"] and w["ready"] and not w["failed"]
    ]
    if len(workers) < 2:
        return []
    loaded = max(workers, key=lambda w: len(w["sources"]))
    idle = min(workers, key=lambda w: len(w["sources"]))
    if len(loaded["sources"]) - len(idle["sources"]) < 2:
        return []  # placement is already as even as it gets
    source = sorted(loaded["sources"])[0]
    total = max(len(fleet.get("sources", ())), 1)
    return [
        Action(
            kind="migrate_source",
            target={"source": source, "to": idle["index"]},
            reason="queue_depth_anomaly",
            blast_radius=1.0 / total,
            confidence=0.5,
            detail=f"worker {loaded['index']} serves "
            f"{len(loaded['sources'])} sources vs "
            f"{len(idle['sources'])} on worker {idle['index']}",
        )
    ]


def propose_scale(
    transitions, fleet: dict, policy: RemediationPolicy
) -> list[Action]:
    """Saturation → grow the tier; sustained calm → offer to shrink.

    Both directions ride the consistent-hash ring: growing moves ~1/N
    of the sources onto the new worker via live migration, shrinking
    migrates the retiring worker's sources out first.  Scale-down is
    proposed at low confidence on an all-ok edge, so it only ever runs
    under an explicitly permissive ``max_risk``.
    """
    if not policy.allow_scale:
        return []
    workers = fleet.get("workers", ())
    live = [w for w in workers if w["alive"] and not w["failed"]]
    actions: list[Action] = []
    if _firing(transitions, *_SATURATION_VERDICTS):
        if len(workers) < policy.max_workers:
            actions.append(
                Action(
                    kind="add_worker",
                    target={},
                    reason=_firing(transitions, *_SATURATION_VERDICTS)[0].name,
                    blast_radius=0.3,
                    confidence=0.5,
                    detail=f"tier at {len(workers)} workers, "
                    f"cap {policy.max_workers}",
                )
            )
    else:
        # An edge back to all-ok on the saturation verdicts: the tier
        # may be oversized.  Low confidence keeps this behind the risk
        # gate unless the operator opted into aggressive scaling.
        recovered = [
            verdict
            for verdict, previous in transitions
            if verdict.name in _SATURATION_VERDICTS
            and verdict.status == "ok"
            and previous != "ok"
        ]
        if recovered and len(live) > 2:
            actions.append(
                Action(
                    kind="remove_worker",
                    target={},
                    reason=recovered[0].name,
                    blast_radius=0.4,
                    confidence=0.3,
                    detail=f"saturation cleared with {len(live)} live "
                    "workers",
                )
            )
    return actions


def propose_shed(
    transitions, fleet: dict, policy: RemediationPolicy
) -> list[Action]:
    """Overflow storm → disconnect the subscriber causing it.

    Shedding is the paper's timeliness-over-completeness stance turned
    into an actuation: one drowning consumer must not be allowed to
    degrade delivery for everyone sharing its worker.  It is the most
    invasive verb here (a subscriber is torn down), so it is opt-in and
    carries the subscriber-scoped blast radius.
    """
    if not policy.allow_shed:
        return []
    verdicts = _firing(transitions, *_OVERFLOW_VERDICTS)
    if not verdicts:
        return []
    apps = [
        (worker, app)
        for worker in fleet.get("workers", ())
        for app in worker.get("apps", ())
    ]
    if not apps:
        return []
    # Without per-app drop attribution in the control plane, shed the
    # app on the worker with the most subscribers (the contention
    # point); the verifier re-checks the app still exists at run time.
    worker = max(fleet.get("workers", ()), key=lambda w: len(w["apps"]))
    if not worker["apps"]:
        return []
    return [
        Action(
            kind="shed_load",
            target={"app": sorted(worker["apps"])[0]},
            reason=verdicts[0].name,
            blast_radius=1.0 / max(len(apps), 1),
            confidence=0.4,
            detail=f"worker {worker['index']} carries "
            f"{len(worker['apps'])} subscriber(s)",
        )
    ]


def default_proposers() -> list[Callable]:
    return [propose_heal, propose_rebalance, propose_scale, propose_shed]


# ---------------------------------------------------------------------------
# The loop
# ---------------------------------------------------------------------------
class RemediationLoop:
    """Consume Watchtower verdict edges; actuate the cluster safely.

    Wiring: construct with the cluster and a Watchtower, call
    :meth:`attach` (hooks ``watchtower.on_transitions`` and switches
    the cluster's supervisor into *deferred* death handling so this
    loop owns heal decisions, with the supervisor's grace timeout as
    the backstop), then :meth:`close` to restore both.

    Execution is strictly serial: verdict edges enqueue, one worker
    task drains, and each batch of transitions runs the full
    propose → verify → rank → schedule → execute → verify chain before
    the next is considered.
    """

    def __init__(
        self,
        cluster,
        watchtower=None,
        *,
        policy: Optional[RemediationPolicy] = None,
        proposers: Optional[Sequence[Callable]] = None,
        events=None,
        clock=time.monotonic,
    ):
        self.cluster = cluster
        self.watchtower = watchtower
        self.policy = policy if policy is not None else RemediationPolicy()
        self.proposers = (
            list(proposers) if proposers is not None else default_proposers()
        )
        self.events = events
        self.clock = clock
        self.executed = 0
        self.skipped = 0
        self.failed = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._cooldowns: dict[tuple, float] = {}
        self._recent: deque[float] = deque()
        self._attached = False
        self._prior_defer = False

    # -- lifecycle ------------------------------------------------------
    def attach(self) -> None:
        """Hook the Watchtower edge stream and take over heal decisions."""
        if self._attached:
            return
        self._attached = True
        self._prior_defer = getattr(
            self.cluster, "defer_death_handling", False
        )
        self.cluster.defer_death_handling = True
        if self.watchtower is not None:
            self.watchtower.on_transitions = self.submit
        self._task = asyncio.ensure_future(self._run())
        self._emit("remediation_attached", policy=self._policy_fields())

    async def close(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.cluster.defer_death_handling = self._prior_defer
        if self.watchtower is not None and (
            self.watchtower.on_transitions is self.submit
        ):
            self.watchtower.on_transitions = None
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
            self._task = None

    def submit(self, transitions) -> None:
        """Enqueue one poll's verdict edges (the Watchtower hook)."""
        self._queue.put_nowait(list(transitions))

    # -- pipeline -------------------------------------------------------
    async def _run(self) -> None:
        while True:
            transitions = await self._queue.get()
            try:
                await self._handle(transitions)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # The loop must survive any single incident's failure.
                self._emit("remediation_error", error=str(exc))

    async def _handle(self, transitions) -> None:
        fleet = self.cluster.fleet_status()
        candidates: list[Action] = []
        for proposer in self.proposers:
            candidates.extend(proposer(transitions, fleet, self.policy))
        if not candidates:
            return
        for action in candidates:
            self._emit("remediation_proposed", **action.to_fields())
        # Rank: cheapest expected damage first; confidence breaks ties.
        ranked = sorted(
            candidates, key=lambda a: (a.risk, -a.confidence, a.kind)
        )
        for action in ranked:
            verdict = self._gate(action, fleet)
            if verdict is not None:
                self.skipped += 1
                self._emit(
                    "remediation_skipped",
                    **action.to_fields(),
                    why=verdict,
                )
                continue
            await self._execute(action)
            # One actuation per incident: re-evaluate the world before
            # doing anything else (the next verdict edge will re-fire
            # proposers against the post-action fleet).
            break

    # -- verifier (pre-flight) ------------------------------------------
    def _gate(self, action: Action, fleet: dict) -> Optional[str]:
        """Risk gate + pre-flight invariants; returns a skip reason."""
        now = self.clock()
        if action.risk > self.policy.max_risk:
            return "risk_gated"
        until = self._cooldowns.get(action.key())
        if until is not None and now < until:
            return "cooldown"
        while self._recent and now - self._recent[0] > self.policy.window_s:
            self._recent.popleft()
        if len(self._recent) >= self.policy.actions_per_window:
            return "budget_exhausted"
        return self._check_preconditions(action, fleet)

    def _check_preconditions(
        self, action: Action, fleet: dict
    ) -> Optional[str]:
        workers = {w["index"]: w for w in fleet.get("workers", ())}
        standbys = {s["index"]: s for s in fleet.get("standbys", ())}
        if action.kind in ("respawn", "adopt_standby"):
            slot = workers.get(action.target.get("worker")) or standbys.get(
                action.target.get("worker")
            )
            if slot is None:
                return "no_such_worker"
            if slot["failed"]:
                return "slot_lost"
            if slot["alive"] and slot["ready"]:
                return "already_healthy"
            if action.kind == "adopt_standby":
                standby = next(
                    (
                        s
                        for s in fleet.get("standbys", ())
                        if s["mirror_of"] == action.target["worker"]
                        and s["alive"]
                        and s["ready"]
                        and not s["failed"]
                    ),
                    None,
                )
                if standby is None:
                    return "no_armed_standby"
        elif action.kind == "migrate_source":
            if action.target.get("source") not in fleet.get("sources", {}):
                return "no_such_source"
            target = workers.get(action.target.get("to"))
            if target is None or not (target["alive"] and target["ready"]):
                return "target_not_ready"
        elif action.kind == "add_worker":
            if len(workers) >= self.policy.max_workers:
                return "at_max_workers"
        elif action.kind == "remove_worker":
            live = [
                w
                for w in workers.values()
                if w["alive"] and w["ready"] and not w["failed"]
            ]
            if len(live) <= 2:
                return "tier_too_small"
        elif action.kind == "shed_load":
            apps = {
                app
                for worker in fleet.get("workers", ())
                for app in worker.get("apps", ())
            }
            if action.target.get("app") not in apps:
                return "no_such_app"
        return None

    # -- scheduler + executor -------------------------------------------
    async def _execute(self, action: Action) -> None:
        now = self.clock()
        self._cooldowns[action.key()] = now + self.policy.cooldown_s
        self._recent.append(now)
        self._emit("remediation_scheduled", **action.to_fields())
        started = self.clock()
        try:
            outcome = await self._actuate(action)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.failed += 1
            self._emit(
                "remediation_failed",
                **action.to_fields(),
                error=str(exc),
                elapsed_ms=round((self.clock() - started) * 1e3, 1),
            )
            return
        ok, post = self._verify_post(action)
        self.executed += 1
        self._emit(
            "remediation_executed",
            **action.to_fields(),
            outcome=outcome,
            verified=ok,
            post=post,
            elapsed_ms=round((self.clock() - started) * 1e3, 1),
        )
        if not ok:
            self.failed += 1
            self._emit(
                "remediation_unverified", **action.to_fields(), post=post
            )

    async def _actuate(self, action: Action):
        cluster = self.cluster
        if action.kind == "adopt_standby":
            return await cluster.heal_worker(
                action.target["worker"], prefer_standby=True
            )
        if action.kind == "respawn":
            return await cluster.heal_worker(
                action.target["worker"], prefer_standby=False
            )
        if action.kind == "migrate_source":
            result = await cluster.migrate_source(
                action.target["source"], action.target["to"]
            )
            return "exact" if result.get("exact") else "lossy"
        if action.kind == "add_worker":
            return f"worker_{await cluster.add_worker()}"
        if action.kind == "remove_worker":
            return f"worker_{await cluster.remove_worker()}"
        if action.kind == "shed_load":
            await cluster.unsubscribe(action.target["app"])
            return "unsubscribed"
        raise ValueError(f"unknown action kind {action.kind!r}")

    def _verify_post(self, action: Action) -> tuple[bool, str]:
        """Post-flight invariant: did the action reach its stated goal?"""
        fleet = self.cluster.fleet_status()
        workers = {w["index"]: w for w in fleet.get("workers", ())}
        standbys = {s["index"]: s for s in fleet.get("standbys", ())}
        if action.kind == "adopt_standby":
            slot = workers.get(action.target["worker"])
            if slot is not None and slot["alive"] and slot["ready"]:
                return True, "slot_ready"
            return False, "slot_not_ready"
        if action.kind == "respawn":
            slot = workers.get(action.target["worker"]) or standbys.get(
                action.target["worker"]
            )
            if slot is None:
                return False, "slot_gone"
            if slot["failed"]:
                return False, "slot_lost"
            # A respawn is asynchronous under backoff: "scheduled and
            # not lost" is the strongest sound post-condition here.
            return True, "respawn_pending" if not slot["ready"] else "slot_ready"
        if action.kind == "migrate_source":
            placed = fleet.get("sources", {}).get(action.target["source"])
            if placed == action.target["to"]:
                return True, "source_on_target"
            return False, f"source_on_{placed}"
        if action.kind == "add_worker":
            return True, f"workers_{len(workers)}"
        if action.kind == "remove_worker":
            return True, f"workers_{len(workers)}"
        if action.kind == "shed_load":
            apps = {
                app
                for worker in fleet.get("workers", ())
                for app in worker.get("apps", ())
            }
            if action.target["app"] not in apps:
                return True, "app_gone"
            return False, "app_still_subscribed"
        return True, "unchecked"

    # -- plumbing -------------------------------------------------------
    def _policy_fields(self) -> dict:
        return {
            "max_risk": self.policy.max_risk,
            "cooldown_s": self.policy.cooldown_s,
            "actions_per_window": self.policy.actions_per_window,
            "window_s": self.policy.window_s,
            "allow_scale": self.policy.allow_scale,
            "allow_shed": self.policy.allow_shed,
        }

    def _emit(self, kind: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)
