"""Live dissemination service: asyncio broker over the batch engine.

The batch layers run one-shot experiments over pre-materialized traces;
this package turns the same engine into a long-running *service* the way
the paper's Solar prototype worked (section 4.1): dynamic subscriptions,
incremental decides on arrival and on timer ticks, per-session
micro-batched delivery with bounded queues and backpressure, and an
open/closed-loop load generator that emits replayable run manifests.
"""

from repro.service.batching import Batch, MicroBatcher
from repro.service.broker import DisseminationService, ServiceConfig
from repro.service.loadgen import (
    CODECS,
    FANOUTS,
    LOADGEN_SOURCES,
    SIZES,
    TRANSPORTS,
    ChurnEvent,
    LoadGenConfig,
    decided_map,
    default_churn,
    make_trace,
    run_loadgen,
)
from repro.service.remediate import (
    Action,
    RemediationLoop,
    RemediationPolicy,
    default_proposers,
)
from repro.service.session import (
    OVERFLOW_POLICIES,
    DeliveryQueue,
    SessionDisconnected,
    SessionStats,
    SubscriberSession,
)
from repro.service.snapshot import ServiceSnapshot, SessionSnapshot

__all__ = [
    "Action",
    "Batch",
    "CODECS",
    "ChurnEvent",
    "FANOUTS",
    "DeliveryQueue",
    "DisseminationService",
    "LOADGEN_SOURCES",
    "LoadGenConfig",
    "MicroBatcher",
    "OVERFLOW_POLICIES",
    "RemediationLoop",
    "RemediationPolicy",
    "ServiceConfig",
    "ServiceSnapshot",
    "SessionDisconnected",
    "SessionSnapshot",
    "SessionStats",
    "SubscriberSession",
    "decided_map",
    "default_churn",
    "default_proposers",
    "make_trace",
    "run_loadgen",
    "SIZES",
    "TRANSPORTS",
]
