"""Live stats snapshots of a running dissemination service.

A snapshot is a cheap, consistent-enough view for operators and for the
load generator's ``metrics.jsonl``: per-session queue depths and drop
counts, broker-wide offered/decided/delivered totals, and p50/p99 decide
latency over a sliding window (via :mod:`repro.metrics.latency`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.metrics.latency import latency_percentiles

__all__ = ["SessionSnapshot", "ServiceSnapshot"]


@dataclass(frozen=True)
class SessionSnapshot:
    """Point-in-time view of one subscriber session."""

    app_name: str
    source_name: str
    spec: str
    node: str
    policy: str
    queue_depth: int
    queue_capacity: int
    batcher_pending: int
    staged_tuples: int
    enqueued_batches: int
    delivered_batches: int
    delivered_tuples: int
    dropped_batches: int
    dropped_tuples: int
    disconnected: bool


@dataclass(frozen=True)
class ServiceSnapshot:
    """Point-in-time view of the whole broker."""

    #: Stream-time milliseconds of the latest processed tuple or tick.
    now_ms: float
    sources: tuple[str, ...]
    session_count: int
    offered: int
    decided_emissions: int
    delivered_tuples: int
    dropped_tuples: int
    regroups: int
    ticks: int
    cuts_triggered: int
    decide_p50_ms: float
    decide_p99_ms: float
    sessions: tuple[SessionSnapshot, ...]
    #: Final stats of sessions that were unsubscribed or disconnected;
    #: their delivered/dropped counts stay in the broker-wide totals.
    retired: tuple[SessionSnapshot, ...] = ()

    @classmethod
    def capture(
        cls,
        *,
        now_ms: float,
        sources: tuple[str, ...],
        sessions: tuple[SessionSnapshot, ...],
        retired: tuple[SessionSnapshot, ...],
        offered: int,
        decided_emissions: int,
        regroups: int,
        ticks: int,
        cuts_triggered: int,
        decide_window_ms: list[float],
    ) -> "ServiceSnapshot":
        percentiles = latency_percentiles(decide_window_ms, (50, 99))
        everyone = sessions + retired
        return cls(
            now_ms=now_ms,
            sources=sources,
            session_count=len(sessions),
            offered=offered,
            decided_emissions=decided_emissions,
            delivered_tuples=sum(s.delivered_tuples for s in everyone),
            dropped_tuples=sum(s.dropped_tuples for s in everyone),
            regroups=regroups,
            ticks=ticks,
            cuts_triggered=cuts_triggered,
            decide_p50_ms=percentiles["p50"],
            decide_p99_ms=percentiles["p99"],
            sessions=sessions,
            retired=retired,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form for ``metrics.jsonl`` records."""
        payload = asdict(self)
        payload["sources"] = list(payload["sources"])
        payload["sessions"] = [dict(s) for s in payload["sessions"]]
        payload["retired"] = [dict(s) for s in payload["retired"]]
        return payload

    @property
    def max_queue_depth(self) -> int:
        return max((s.queue_depth for s in self.sessions), default=0)
