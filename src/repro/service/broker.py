"""Long-running asyncio dissemination broker over the batch engine.

The paper's prototype is a *service* (section 4.1): applications
subscribe with filter specs at runtime and the group-aware filtering
engine streams decided tuples to them continuously.
:class:`DisseminationService` provides that shape on top of the existing
batch machinery:

* it owns a :class:`~repro.net.pubsub.StreamingSystem` (overlay +
  Scribe multicast) and one :class:`~repro.core.engine.GroupAwareEngine`
  per source *epoch*;
* tuples arrive incrementally (:meth:`offer` / :meth:`feed`) and drive
  candidate-set closing and region decisions on arrival; timer ticks
  (:meth:`tick`) drive timely cuts and latency-bounded batch flushes
  between arrivals;
* subscriptions are dynamic — :meth:`subscribe`, :meth:`unsubscribe` and
  :meth:`re_filter` *cut the current engine over* (open candidate sets
  are flushed and decided) and rebuild the filter group from the new
  subscription set, optionally regrouped via
  :mod:`repro.adaptive.regroup`;
* decided emissions are micro-batched per subscriber session and pushed
  into bounded queues whose overflow policy (block / drop-oldest /
  disconnect) makes slow consumers exert backpressure instead of
  growing broker memory.

For a fixed trace with static subscriptions the service calls exactly
the same engine methods in the same order as the batch path, so its
decided outputs are identical to ``GroupAwareEngine.run`` —
``tests/test_service.py`` asserts this for both decide algorithms.

When regrouping splits a source's filters into several subgroups, each
subgroup runs its own engine; with ``ServiceConfig.shards > 1`` the
subgroup decides for one arrival run in parallel on a thread pool, the
in-broker analogue of the ``repro.runtime`` shard executors (subgroup
placement reuses the same stable-key hashing).
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.adaptive.regroup import cap_group_size, partition_by_attribute
from repro.core.cuts import TimeConstraint
from repro.core.engine import EngineResult, GroupAwareEngine
from repro.core.output import (
    BatchedOutput,
    Emission,
    OutputStrategy,
    PerCandidateSetOutput,
    RegionOutput,
)
from repro.core.tuples import StreamTuple
from repro.filters.base import GroupAwareFilter
from repro.filters.spec import parse_filter
from repro.net.multicast import ScribeMulticast
from repro.net.overlay import OverlayNetwork
from repro.net.pubsub import StreamingSystem
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    STAGE_BATCH_FLUSH,
    STAGE_DECIDE,
    STAGE_DECIDE_EXEC,
    STAGE_INGEST_RECV,
    stage_id,
)
from repro.qos.controller import (
    DegradationConfig,
    DegradationController,
    DegradationDecision,
)
from repro.qos.spec import DegradationPolicy, QualitySpec, session_limits
from repro.runtime.partition import shard_for_key
from repro.runtime.tasks import EngineConfig
from repro.service.batching import MicroBatcher
from repro.service.session import (
    OVERFLOW_POLICIES,
    DeliveryQueue,
    SubscriberSession,
)
from repro.service.snapshot import ServiceSnapshot, SessionSnapshot

__all__ = ["ServiceConfig", "DisseminationService", "engine_from_config"]

#: Default overlay ring when the caller does not bring a system.
_DEFAULT_NODES = tuple(f"node{i}" for i in range(8))

#: Bound on per-source arrival-time tracking for decide latency: tuples
#: the engines dismiss are never emitted, so their entries linger until
#: the next rebuild; past this many the oldest are evicted.
_ARRIVAL_TRACK_MAX = 1 << 16

_SID_INGEST_RECV = stage_id(STAGE_INGEST_RECV)
_SID_DECIDE_EXEC = stage_id(STAGE_DECIDE_EXEC)
_SID_DECIDE = stage_id(STAGE_DECIDE)
_SID_BATCH_FLUSH = stage_id(STAGE_BATCH_FLUSH)


def _make_strategy(output: str, batch_size: int) -> OutputStrategy:
    if output == "region":
        return RegionOutput()
    if output == "pcs":
        return PerCandidateSetOutput()
    return BatchedOutput(batch_size)


def engine_from_config(
    filters: Sequence[GroupAwareFilter], engine_cfg: EngineConfig
) -> GroupAwareEngine:
    """Fresh :class:`GroupAwareEngine` mirroring a portable config.

    Both the broker's epoch engines and any batch reference used to
    verify the service must come through here: algorithm, output
    strategy and time constraint all shape decided outputs, so the two
    sides have to agree on every knob.
    """
    constraint = (
        TimeConstraint(engine_cfg.constraint_ms)
        if engine_cfg.constraint_ms is not None
        else None
    )
    return GroupAwareEngine(
        list(filters),
        algorithm=engine_cfg.algorithm,
        output_strategy=_make_strategy(engine_cfg.output, engine_cfg.batch_size),
        time_constraint=constraint,
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Broker-wide defaults; per-session knobs can override queueing."""

    #: Decide algorithm, output strategy and cut constraint — the same
    #: portable :class:`~repro.runtime.tasks.EngineConfig` vocabulary the
    #: sharded runtime uses.
    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Micro-batching bounds per session (see :mod:`repro.service.batching`).
    batch_max_items: int = 8
    batch_max_delay_ms: float = 50.0
    #: Session outbound queue bound and overflow policy defaults.
    queue_capacity: int = 16
    overflow: str = "block"
    #: Regrouping on subscription churn: cap subgroup size and/or split
    #: by attribute overlap (``adaptive/regroup.py``).  ``None``/False
    #: keeps one engine per source, which is the batch-identical mode.
    max_group_size: Optional[int] = None
    partition_attributes: bool = False
    #: Whether timer ticks may fire timely cuts between arrivals.  The
    #: live default is True (honest timeliness); False restricts cuts to
    #: arrivals so a constrained run stays deterministic against a batch
    #: reference (see GroupAwareEngine.tick) — the loadgen's verify mode.
    tick_cuts: bool = True
    #: Thread lanes for parallel subgroup decides (>1 only matters when
    #: regrouping produced several engines for one source).
    shards: int = 1
    tuple_size_bytes: int = 64
    #: Seed for the multicast loss model's injected RNG.
    seed: int = 0
    #: Sliding-window length for snapshot decide-latency percentiles
    #: (wall-clock arrival-to-emission milliseconds per decided tuple).
    decide_window: int = 4096
    #: Epoch-journal entry cap for live source migration.  The journal
    #: records every offer/tick fed to the current engine epoch so
    #: :meth:`export_source` can hand the epoch to another worker for
    #: byte-identical replay; past the cap the journal goes lossy and
    #: export falls back to cutover-flush semantics.
    migration_journal_cap: int = 100_000

    def __post_init__(self) -> None:
        if self.engine.algorithm == "self_interested":
            raise ValueError(
                "the live service coordinates filters; use the batch "
                "SelfInterestedEngine for the uncoordinated baseline"
            )
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.overflow!r}; "
                f"expected {OVERFLOW_POLICIES}"
            )
        if self.shards < 1:
            raise ValueError("shards must be at least 1")


@dataclass
class _EngineSlot:
    """One live engine (a whole source group or a regrouped subgroup)."""

    apps: tuple[str, ...]
    engine: GroupAwareEngine
    #: Emissions already routed to sessions, as a prefix length of the
    #: engine result's emission log (lets cutover route only the tail).
    routed: int = 0


@dataclass
class _SourceState:
    name: str
    node: str
    group_name: str
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    sessions: dict[str, SubscriberSession] = field(default_factory=dict)
    slots: list[_EngineSlot] = field(default_factory=list)
    #: Finished engine results, one per subscription epoch and subgroup.
    epochs: list[EngineResult] = field(default_factory=list)
    offered: int = 0
    #: Tuples fed to the current epoch's engines (resets on rebuild).
    fed: int = 0
    #: Wall-clock arrival time per offered-but-undecided tuple seq, for
    #: sub-tick decide-latency measurement (cleared on rebuild).
    arrivals_ns: dict[int, int] = field(default_factory=dict)
    #: Replayable record of the current epoch: ``("o", item)`` per offer
    #: and ``("t", now_ms)`` per tick fed to the live engines.  Because
    #: the epoch's engine state is a pure function of this sequence
    #: (engines are deterministic and rebuilt fresh on churn), replaying
    #: it into fresh engines reproduces the epoch exactly — the basis of
    #: live migration and warm-standby re-arm.  Cleared on rebuild.
    journal: list[tuple[str, object]] = field(default_factory=list)
    #: Set once the journal overflows its cap; export then falls back to
    #: a cutover flush instead of exact replay.
    journal_lossy: bool = False


class DisseminationService:
    """Live broker: incremental decides, dynamic sessions, backpressure."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        system: Optional[StreamingSystem] = None,
        nodes: Optional[Sequence[str]] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        if system is not None:
            if nodes is not None:
                raise ValueError("pass either a system or node names, not both")
            self.system = system
            self._nodes = tuple(system.overlay.names)
        else:
            self._nodes = tuple(nodes) if nodes is not None else _DEFAULT_NODES
            overlay = OverlayNetwork(list(self._nodes))
            self.system = StreamingSystem(
                overlay,
                multicast=ScribeMulticast(
                    overlay, rng=random.Random(self.config.seed)
                ),
                tuple_size_bytes=self.config.tuple_size_bytes,
            )
        self._sources: dict[str, _SourceState] = {}
        self._app_sources: dict[str, str] = {}
        self._retired: list[SessionSnapshot] = []
        self._decide_window: deque[float] = deque(maxlen=self.config.decide_window)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._now = 0.0
        self._offered = 0
        self._decided_emissions = 0
        self._regroups = 0
        self._ticks = 0
        self._closed = False
        self.telemetry = telemetry
        if telemetry is not None:
            registry = telemetry.registry
            self._m_offers = registry.counter(
                "repro_broker_offered_tuples_total",
                "Tuples offered to the broker.",
            )
            self._m_decided = registry.counter(
                "repro_broker_decided_emissions_total",
                "Decided emissions produced by the engines.",
            )
            self._m_ticks = registry.counter(
                "repro_broker_ticks_total", "Broker timer ticks."
            )
            self._m_cutovers = registry.counter(
                "repro_broker_cutovers_total",
                "Engine cutovers forced by subscription churn.",
            )
            self._m_cutover_ms = registry.histogram(
                "repro_broker_cutover_ms",
                "Wall-clock duration of one engine cutover.",
            )
            self._m_sessions = registry.gauge(
                "repro_broker_sessions", "Live subscriber sessions."
            )
            self._m_flushes = registry.counter(
                "repro_session_batch_flushes_total",
                "Micro-batch flushes shipped toward session queues.",
            )
            self._m_queue_hw = registry.gauge(
                "repro_session_queue_depth_high_water",
                "Highest observed session queue depth.",
                ("app",),
            )
            self._m_drops = registry.counter(
                "repro_session_overflow_dropped_tuples_total",
                "Tuples dropped by session overflow policy.",
                ("policy",),
            )
            self._m_degradation = registry.gauge(
                "repro_session_degradation_level",
                "Active QoS degradation level per session "
                "(0 = preferred quality).",
                ("app",),
            )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_source(self, source_name: str, node_name: Optional[str] = None) -> None:
        """Advertise a source; its proxy node defaults deterministically."""
        if node_name is None:
            node_name = self._place(f"src:{source_name}")
        try:
            self.system.add_source(source_name, node_name)
        except ValueError:
            # A source that migrated away and back keeps its overlay
            # proxy and multicast group; re-advertising is idempotent at
            # that layer (placement is deterministic per name).
            pass
        self._sources[source_name] = _SourceState(
            name=source_name,
            node=node_name,
            group_name=f"src:{source_name}",
        )

    def has_source(self, source_name: str) -> bool:
        return source_name in self._sources

    def sources(self) -> tuple[str, ...]:
        """Currently advertised source names."""
        return tuple(self._sources)

    def session_count(self) -> int:
        """Live subscriber sessions, without building a full snapshot."""
        return sum(len(src.sessions) for src in self._sources.values())

    def _place(self, key: str) -> str:
        """Stable node placement, reusing the runtime's key hashing."""
        return self._nodes[shard_for_key(key, len(self._nodes))]

    def _src(self, source_name: str) -> _SourceState:
        try:
            return self._sources[source_name]
        except KeyError:
            raise KeyError(f"unknown source {source_name!r}") from None

    # ------------------------------------------------------------------
    # Dynamic subscriptions
    # ------------------------------------------------------------------
    async def subscribe(
        self,
        app_name: str,
        source_name: str,
        spec: str,
        node: Optional[str] = None,
        *,
        queue_capacity: Optional[int] = None,
        overflow: Optional[str] = None,
        batch_max_items: Optional[int] = None,
        batch_max_delay_ms: Optional[float] = None,
        qos: Optional[QualitySpec] = None,
        degradation: Optional[DegradationPolicy] = None,
        degradation_level: int = 0,
        degradation_config: Optional[DegradationConfig] = None,
    ) -> SubscriberSession:
        """Attach a subscriber at runtime; forces an engine regroup.

        ``qos`` resolves the session's queue and batching bounds from the
        application's declared quality requirement (see
        :func:`repro.qos.spec.session_limits`); explicit keyword
        overrides win over the QoS mapping, and broker-wide defaults
        remain the fallback for everything else.

        ``degradation`` attaches a server-driven
        :class:`~repro.qos.controller.DegradationController`: under
        overload the broker steps the session down the policy's levels
        instead of letting its queue drop or disconnect, and probes back
        up AIMD-style once the session is healthy again.  ``spec`` must
        equal the active level's filter spec (the cluster's re-subscribe
        paths pass ``degradation_level`` > 0 so a degraded session
        resumes at its level after respawn/migration/failover).
        """
        src = self._src(source_name)
        controller: Optional[DegradationController] = None
        if degradation is not None:
            if degradation.app_name != app_name:
                raise ValueError(
                    f"degradation policy names app {degradation.app_name!r}, "
                    f"subscription is for {app_name!r}"
                )
            controller = DegradationController(
                degradation, degradation_config, level=degradation_level
            )
            if spec != controller.spec:
                raise ValueError(
                    "subscription spec must equal the degradation policy's "
                    f"active level spec {controller.spec!r}, got {spec!r}"
                )
            if qos is None:
                qos = degradation.levels[degradation_level]
        async with src.lock:
            if app_name in self._app_sources:
                raise ValueError(f"app {app_name!r} is already subscribed")
            if node is None:
                node = self._place(app_name)
            parse_filter(spec, name=app_name)  # validate before any churn
            cfg = self.config
            if qos is not None:
                if qos.app_name != app_name:
                    raise ValueError(
                        f"QoS profile names app {qos.app_name!r}, "
                        f"subscription is for {app_name!r}"
                    )
                limits = session_limits(
                    qos,
                    queue_capacity=cfg.queue_capacity,
                    overflow=cfg.overflow,
                    batch_max_items=cfg.batch_max_items,
                    batch_max_delay_ms=cfg.batch_max_delay_ms,
                )
                queue_capacity = (
                    limits.queue_capacity if queue_capacity is None else queue_capacity
                )
                overflow = limits.overflow if overflow is None else overflow
                batch_max_items = (
                    limits.batch_max_items
                    if batch_max_items is None
                    else batch_max_items
                )
                batch_max_delay_ms = (
                    limits.batch_max_delay_ms
                    if batch_max_delay_ms is None
                    else batch_max_delay_ms
                )
            # Everything fallible — spec parsing, per-session knob
            # validation (queue/batcher construction), registration node
            # checks — happens before the cutover: a failed subscribe
            # must leave the current epoch's engines serving, not a
            # stranded source.
            session = SubscriberSession(
                app_name=app_name,
                source_name=source_name,
                spec=spec,
                node=node,
                queue=DeliveryQueue(
                    capacity=queue_capacity
                    if queue_capacity is not None
                    else cfg.queue_capacity,
                    policy=overflow if overflow is not None else cfg.overflow,
                ),
                batcher=MicroBatcher(
                    max_items=batch_max_items
                    if batch_max_items is not None
                    else cfg.batch_max_items,
                    max_delay_ms=batch_max_delay_ms
                    if batch_max_delay_ms is not None
                    else cfg.batch_max_delay_ms,
                ),
                degradation=controller,
                _broker=self,
            )
            self.system.subscribe(app_name, node, source_name, spec)
            try:
                await self._cutover(src)
                src.sessions[app_name] = session
                self._app_sources[app_name] = source_name
                self._rebuild(src)
            except Exception:
                # The cutover already emptied the live engines; undo the
                # system registration and rebuild from the prior
                # subscription set so the source keeps serving and a
                # retry is not refused as "already subscribed".
                self.system.unsubscribe(app_name, source_name)
                src.sessions.pop(app_name, None)
                self._app_sources.pop(app_name, None)
                self._rebuild(src)
                raise
            if self.telemetry is not None:
                self._m_sessions.set(self.session_count())
                if controller is not None:
                    self._m_degradation.labels(app_name).set(controller.level)
                self.telemetry.events.emit(
                    "subscribe", app=app_name, source=source_name, spec=spec
                )
            return session

    async def unsubscribe(self, app_name: str) -> None:
        """Detach a subscriber at runtime; forces an engine regroup."""
        source_name = self._require_app(app_name)
        src = self._src(source_name)
        async with src.lock:
            await self._detach(src, app_name)

    async def re_filter(self, app_name: str, new_spec: str) -> None:
        """Swap a live subscriber's filter spec; forces an engine regroup.

        A client-driven re-filter on a degradable session detaches its
        :class:`DegradationController`: an explicit spec choice is a
        manual override, and keeping the controller would race it (the
        next stressed dispatch would immediately re-write the spec the
        client just chose).
        """
        source_name = self._require_app(app_name)
        src = self._src(source_name)
        async with src.lock:
            session = src.sessions[app_name]
            await self._re_filter_locked(src, session, new_spec)
            if session.degradation is not None:
                session.degradation = None
                if self.telemetry is not None:
                    self._m_degradation.labels(app_name).set(0)
            if self.telemetry is not None:
                self.telemetry.events.emit(
                    "re_filter", app=app_name, spec=new_spec
                )

    async def _re_filter_locked(
        self, src: _SourceState, session: SubscriberSession, new_spec: str
    ) -> None:
        """Spec-swap core (caller holds the source lock; no events)."""
        app_name = session.app_name
        source_name = src.name
        parse_filter(new_spec, name=app_name)
        old_spec = session.spec
        # Swap the registration before the cutover so a failure leaves
        # the old epoch intact (and the old spec restored).
        self.system.unsubscribe(app_name, source_name)
        try:
            self.system.subscribe(
                app_name, session.node, source_name, new_spec
            )
        except Exception:
            self.system.subscribe(
                app_name, session.node, source_name, old_spec
            )
            raise
        try:
            await self._cutover(src)
            session.spec = new_spec
            self._rebuild(src)
        except Exception:
            # Same contract as subscribe: a failed churn must leave
            # the source serving under the old spec, with the system
            # registration matching what the engines filter on.
            session.spec = old_spec
            self.system.unsubscribe(app_name, source_name)
            self.system.subscribe(
                app_name, session.node, source_name, old_spec
            )
            self._rebuild(src)
            raise

    def subscriptions(self, source_name: str) -> list[tuple[str, str]]:
        """Current ``(app, spec)`` pairs in broker (engine) order."""
        return [
            (s.app_name, s.spec) for s in self._src(source_name).sessions.values()
        ]

    def _require_app(self, app_name: str) -> str:
        try:
            return self._app_sources[app_name]
        except KeyError:
            raise KeyError(f"app {app_name!r} is not subscribed") from None

    async def _detach(self, src: _SourceState, app_name: str) -> None:
        """Remove one session (caller holds the source lock)."""
        session = src.sessions.get(app_name)
        if session is None:
            return
        try:
            await self._cutover(src)
        except Exception:
            # A failed cutover leaves half-finished engines; rebuild so
            # the source keeps serving (the session stays attached).
            self._rebuild(src)
            raise
        self.system.unsubscribe(app_name, src.name)
        del src.sessions[app_name]
        del self._app_sources[app_name]
        # Decided-but-staged tuples must not vanish uncounted: flush the
        # batcher toward the consumer (or into the drop counters) just
        # like close() does for still-attached sessions.
        self._final_flush(src, session)
        await session.close()
        # Keep the departed session's counters in broker-wide totals.
        self._retired.append(self._session_snapshot(session))
        self._rebuild(src)
        if self.telemetry is not None:
            self._m_sessions.set(self.session_count())
            if session.disconnected:
                self.telemetry.events.emit(
                    "overflow_disconnect",
                    app=app_name,
                    source=src.name,
                    policy=session.queue.policy,
                    dropped_tuples=session.stats.dropped_tuples,
                )
            else:
                self.telemetry.events.emit(
                    "unsubscribe", app=app_name, source=src.name
                )

    # ------------------------------------------------------------------
    # Engine lifecycle (epochs)
    # ------------------------------------------------------------------
    def _parse_group(self, src: _SourceState) -> list[GroupAwareFilter]:
        return [
            parse_filter(session.spec, name=app)
            for app, session in src.sessions.items()
        ]

    def _rebuild(self, src: _SourceState) -> None:
        """Fresh engines from the current subscription set."""
        filters = self._parse_group(src)
        if not filters:
            src.slots = []
            src.arrivals_ns.clear()
            src.journal.clear()
            src.journal_lossy = False
            return
        groups: list[list[GroupAwareFilter]] = (
            partition_by_attribute(filters)
            if self.config.partition_attributes
            else [list(filters)]
        )
        if self.config.max_group_size is not None:
            groups = [
                chunk
                for group in groups
                for chunk in cap_group_size(group, self.config.max_group_size)
            ]
        engine_cfg = self.config.engine
        src.fed = 0
        # A rebuild always follows a cutover: the old epoch's tuples were
        # emitted or dismissed with it, so their arrival times are dead.
        src.arrivals_ns.clear()
        src.journal.clear()
        src.journal_lossy = False
        src.slots = [
            _EngineSlot(
                apps=tuple(f.name for f in group),
                engine=engine_from_config(group, engine_cfg),
            )
            for group in groups
        ]
        self._regroups += 1

    async def _cutover(self, src: _SourceState) -> None:
        """Finish the live engines, delivering their tail emissions.

        Open candidate sets are flushed and decided (the same semantics as
        end-of-stream), so a subscription change never strands admitted
        tuples; the next epoch starts from clean coordination state.
        """
        if not src.slots:
            return
        if src.fed == 0:
            # Nothing was ever offered to this epoch: no candidate state
            # to flush, so skip the empty EngineResult entirely.
            src.slots = []
            return
        started_ns = time.perf_counter_ns()
        # Finish every slot before mutating any source state: a failure
        # partway must leave the epoch list untouched (no phantom epochs
        # whose tails were never routed) so the churn paths' rollback
        # handlers can rebuild from a consistent record.
        tails: list[Emission] = []
        results: list[EngineResult] = []
        for slot in src.slots:
            result = slot.engine.finish()
            tails.extend(result.emissions[slot.routed :])
            results.append(result)
        src.epochs.extend(results)
        src.slots = []
        self._note_emissions(src, tails)
        await self._route(src, tails, now=self._now)
        if self.telemetry is not None:
            self._m_cutovers.inc()
            self._m_cutover_ms.observe(
                (time.perf_counter_ns() - started_ns) / 1e6
            )

    # ------------------------------------------------------------------
    # Live migration (epoch journal replay)
    # ------------------------------------------------------------------
    def _journal(self, src: _SourceState, entry: tuple[str, object]) -> None:
        if src.journal_lossy:
            return
        if len(src.journal) >= self.config.migration_journal_cap:
            src.journal_lossy = True
            src.journal.clear()
            return
        src.journal.append(entry)

    async def export_source(self, source_name: str) -> dict:
        """Detach a source for live migration; returns its portable state.

        Flushes every session's staged batch (blocking — the subscribers
        stay live through a migration, unlike teardown), then detaches
        the sessions *without* a cutover: the epoch's engine state
        travels as the offer/tick journal instead of being flushed, so
        the importing worker reproduces it exactly and delivered streams
        stay byte-identical to an unmigrated run.  Each detached
        session's connection pump ends with the non-final
        ``"unsubscribed"`` reason, which the router's staged-migration
        continuation treats as a hand-off, not a teardown.

        If the journal overflowed its cap the epoch cannot replay; the
        fallback is a cutover (open candidate state is decided and
        delivered rather than dropped) and the returned state is marked
        ``exact: False``.

        The caller must stop routing offers to this worker first (the
        cluster router gates the source's offer path); an ingest racing
        the export can lose at most the tuples admitted between its
        source lookup and the lock acquisition here.
        """
        src = self._src(source_name)
        async with src.lock:
            for session in src.sessions.values():
                batch = session.batcher.flush(self._now)
                if batch is not None:
                    await self._ship(src, session, batch)
            exact = not src.journal_lossy
            if not exact and src.fed:
                await self._cutover(src)
            journal = list(src.journal)
            subscriptions = [
                (s.app_name, s.spec, s.node) for s in src.sessions.values()
            ]
            shipped = {
                s.app_name: s.stats.shipped_tuples
                for s in src.sessions.values()
            }
            fed = src.fed if exact else 0
            for app in list(src.sessions):
                session = src.sessions.pop(app)
                self.system.unsubscribe(app, source_name)
                del self._app_sources[app]
                await session.close()
                self._retired.append(self._session_snapshot(session))
            src.slots = []
            src.journal = []
            src.arrivals_ns.clear()
            offered = src.offered
            del self._sources[source_name]
            if self.telemetry is not None:
                self._m_sessions.set(self.session_count())
                self.telemetry.events.emit(
                    "migration_export",
                    source=source_name,
                    exact=exact,
                    journal_len=len(journal),
                    fed=fed,
                    subscribers=len(subscriptions),
                )
            return {
                "source": source_name,
                "node": src.node,
                "exact": exact,
                "journal": journal,
                "fed": fed,
                "offered": offered,
                "subscriptions": subscriptions,
                "shipped": shipped,
            }

    async def snapshot_source(self, source_name: str) -> dict:
        """Non-destructive copy of a source's replayable epoch state.

        The same payload :meth:`export_source` produces, but the source
        keeps serving — this is how a warm standby is re-armed after a
        failover consumed its predecessor.  Exact only while the journal
        has not overflowed; a lossy snapshot carries no journal and
        ``exact: False`` (importing it arms the standby for future
        epochs only).
        """
        src = self._src(source_name)
        async with src.lock:
            # Flush staged batches so each session's shipped count equals
            # everything ever routed to it — the exact stream position the
            # standby's mirror (whose replay is emission-suppressed) will
            # continue from.
            for session in src.sessions.values():
                batch = session.batcher.flush(self._now)
                if batch is not None:
                    await self._ship(src, session, batch)
            exact = not src.journal_lossy
            return {
                "source": source_name,
                "node": src.node,
                "exact": exact,
                "journal": list(src.journal),
                "fed": src.fed if exact else 0,
                "offered": src.offered,
                "subscriptions": [
                    (s.app_name, s.spec, s.node)
                    for s in src.sessions.values()
                ],
                "shipped": {
                    s.app_name: s.stats.shipped_tuples
                    for s in src.sessions.values()
                },
            }

    async def import_source(
        self, source_name: str, state: dict, *, force: bool = False
    ) -> int:
        """Adopt an exported source's epoch by journal replay.

        The source must already exist here with the migrated
        subscriptions attached in their original insertion order and
        nothing fed to the current epoch.  Engines are rebuilt fresh
        first (discarding any broadcast-tick contamination since the
        subscriptions attached), then the journal replays through the
        normal engine steps with *suppressed* emissions — each slot's
        ``routed`` prefix advances without routing, because those
        emissions were already delivered by the exporting worker.  The
        replayed journal is retained, so the adopted epoch can itself
        be exported again (chained migration, standby re-arm).

        Returns the number of journal entries replayed.
        """
        src = self._src(source_name)
        async with src.lock:
            if src.fed and not force:
                raise RuntimeError(
                    f"source {source_name!r} already has {src.fed} tuples "
                    "fed to its current epoch; import requires a clean one"
                )
            self._rebuild(src)
            journal = list(state.get("journal") or ())
            replayed = 0
            if src.slots:
                for entry in journal:
                    kind, payload = entry
                    if kind == "o":
                        item = payload
                        for slot in src.slots:
                            slot.routed += len(slot.engine.process(item))
                    else:
                        now_ms = float(payload)  # type: ignore[arg-type]
                        for slot in src.slots:
                            slot.routed += len(
                                slot.engine.tick(
                                    now_ms, cuts=self.config.tick_cuts
                                )
                            )
                    self._journal(src, entry)
                    replayed += 1
            src.fed = int(state.get("fed", 0))
            src.offered += int(state.get("offered", 0))
            if self.telemetry is not None:
                self.telemetry.events.emit(
                    "migration_import",
                    source=source_name,
                    exact=bool(state.get("exact", True)),
                    journal_len=replayed,
                    subscribers=len(src.sessions),
                )
            return replayed

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    async def offer(self, source_name: str, item: StreamTuple) -> int:
        """Feed one tuple; decide, batch and deliver what it triggers.

        Returns the number of emissions the arrival produced.  With a
        ``block`` overflow policy this call awaits queue space on slow
        consumers — backpressure reaches the source feed here.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        src = self._src(source_name)
        async with src.lock:
            return await self._offer_locked(src, item)

    async def offer_many(
        self, source_name: str, items: Sequence[StreamTuple]
    ) -> int:
        """Feed a batch of tuples under one lock acquisition.

        Decides, batches and delivers exactly as ``len(items)``
        consecutive :meth:`offer` calls would (arrival order preserved,
        one engine step per tuple), but pays the source-lock handshake
        and the asyncio scheduling overhead once per batch instead of
        once per tuple — the broker half of the wire protocol's
        ``ingest_batch`` fast path.  Returns the summed emission count.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        src = self._src(source_name)
        total = 0
        async with src.lock:
            for item in items:
                total += await self._offer_locked(src, item)
        return total

    async def _offer_locked(self, src: _SourceState, item: StreamTuple) -> int:
        """One arrival's decide + dispatch (caller holds the source lock)."""
        src.offered += 1
        src.fed += 1
        self._offered += 1
        self._now = max(self._now, item.timestamp)
        arrivals = src.arrivals_ns
        if len(arrivals) >= _ARRIVAL_TRACK_MAX:
            del arrivals[next(iter(arrivals))]
        arrival_ns = time.perf_counter_ns()
        arrivals[item.seq] = arrival_ns
        if src.slots:
            self._journal(src, ("o", item))
        t = self.telemetry
        traced = False
        if t is not None:
            self._m_offers.inc()
            if t.tracer.sampled(src.name, item.seq):
                traced = True
                key = (src.name, item.seq)
                if key in t.bag:
                    # The transport already opened this trace at frame
                    # receive; close the ingest stage at admission.
                    dur = t.bag.stamp(key, _SID_INGEST_RECV, arrival_ns)
                    if dur is not None:
                        t.observe_stage(STAGE_INGEST_RECV, dur)
                else:
                    t.bag.begin(key, arrival_ns)
        emissions = await self._run_slots(
            src, lambda engine: engine.process(item)
        )
        if traced:
            # Engine step time for this arrival, recorded without moving
            # the trace mark (the decide stage runs arrival -> emission).
            t.observe_stage(
                STAGE_DECIDE_EXEC, time.perf_counter_ns() - arrival_ns
            )
        await self._dispatch(src, emissions, now=item.timestamp)
        return len(emissions)

    async def feed(
        self,
        source_name: str,
        items: Iterable[StreamTuple],
        *,
        interval_s: float = 0.0,
    ) -> int:
        """Offer a whole iterable (optionally paced); returns tuple count."""
        count = 0
        for item in items:
            await self.offer(source_name, item)
            count += 1
            if interval_s > 0.0:
                await asyncio.sleep(interval_s)
        return count

    async def tick(
        self, now_ms: float, source_name: Optional[str] = None
    ) -> int:
        """Timer tick: timely cuts, region sweeps, latency-bound flushes."""
        if self._closed:
            raise RuntimeError("service is closed")
        targets = (
            [self._src(source_name)]
            if source_name is not None
            else list(self._sources.values())
        )
        emitted = 0
        self._ticks += 1
        if self.telemetry is not None:
            self._m_ticks.inc()
        for src in targets:
            async with src.lock:
                self._now = max(self._now, now_ms)
                if src.slots and src.fed:
                    # Idle epochs (nothing fed) need no tick replay:
                    # fresh engines have no admitted tuples whose timely
                    # cuts a tick could advance.
                    self._journal(src, ("t", now_ms))
                emissions = await self._run_slots(
                    src,
                    lambda engine: engine.tick(
                        now_ms, cuts=self.config.tick_cuts
                    ),
                )
                await self._dispatch(src, emissions, now=now_ms)
                emitted += len(emissions)
        return emitted

    async def _run_slots(
        self,
        src: _SourceState,
        step: Callable[[GroupAwareEngine], list[Emission]],
    ) -> list[Emission]:
        """Run one engine step on every slot, in parallel when sharded."""
        if not src.slots:
            return []
        if len(src.slots) == 1 or self.config.shards == 1:
            per_slot = [step(slot.engine) for slot in src.slots]
        else:
            loop = asyncio.get_running_loop()
            pool = self._decide_pool()
            per_slot = await asyncio.gather(
                *(
                    loop.run_in_executor(pool, step, slot.engine)
                    for slot in src.slots
                )
            )
        emissions: list[Emission] = []
        for slot, slot_emissions in zip(src.slots, per_slot):
            slot.routed += len(slot_emissions)
            emissions.extend(slot_emissions)
        self._note_emissions(src, emissions)
        return emissions

    def _decide_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.shards,
                thread_name_prefix="repro-decide",
            )
        return self._pool

    def _note_emissions(
        self, src: _SourceState, emissions: Sequence[Emission]
    ) -> None:
        """Count emissions and record their wall-clock decide latency.

        Latency is measured end-to-end with ``time.perf_counter_ns`` —
        from the tuple's arrival at the broker to its decided emission —
        not from stream-time timestamps, whose tick granularity (10 ms
        traces) used to pin the snapshot's ``decide_p50_ms`` at exactly
        one tick even when decides completed in microseconds.
        """
        self._decided_emissions += len(emissions)
        if not emissions:
            return
        now_ns = time.perf_counter_ns()
        arrivals = src.arrivals_ns
        window = self._decide_window
        t = self.telemetry
        if t is not None:
            self._m_decided.inc(len(emissions))
        for emission in emissions:
            # get, not pop: with regrouped subgroups one tuple can be
            # emitted by several slots (and again on later ticks); every
            # emission must record its real latency, not a 0 for the
            # repeats.  Entries are reclaimed by the rebuild clear and
            # the insertion-order eviction cap, so the map stays bounded.
            start_ns = arrivals.get(emission.item.seq)
            if start_ns is not None:
                window.append((now_ns - start_ns) / 1e6)
                if t is not None:
                    key = (src.name, emission.item.seq)
                    dur = t.bag.stamp(key, _SID_DECIDE, now_ns)
                    if dur is not None:
                        t.observe_stage(STAGE_DECIDE, dur)

    async def _dispatch(
        self, src: _SourceState, emissions: Sequence[Emission], now: float
    ) -> None:
        """Route emissions, run latency-due flushes, reap disconnects.

        Runs once per arrival and per tick, always under the source
        lock — which is what makes iterating the session dict directly
        safe (every mutator takes the same lock), so no per-arrival
        defensive copies."""
        await self._route(src, emissions, now)
        dead: Optional[list[str]] = None
        for session in src.sessions.values():
            if session.batcher.due(now):
                batch = session.batcher.flush(now)
                if batch is not None:
                    await self._ship(src, session, batch)
            if session.disconnected:
                if dead is None:
                    dead = []
                dead.append(session.app_name)
        if dead:
            for app in dead:
                await self._detach(src, app)
        await self._adapt_quality(src)

    async def _adapt_quality(self, src: _SourceState) -> None:
        """Evaluate degradation controllers; apply at most one step each.

        Runs under the source lock at the tail of every dispatch (so
        arrivals *and* idle ticks drive both directions — recovery
        probing needs the tick cadence when a burst has passed and
        arrivals are sparse).  Decisions are collected first and applied
        after the iteration: applying one runs a cutover + rebuild,
        which must not happen mid-iteration over the session dict.
        """
        decisions: Optional[
            list[tuple[SubscriberSession, DegradationDecision]]
        ] = None
        tuple_bytes = self.config.tuple_size_bytes
        for session in src.sessions.values():
            controller = session.degradation
            if controller is None or session.disconnected:
                continue
            decision = controller.observe(
                time.monotonic(),
                queue_depth=session.queue.depth,
                queue_capacity=session.queue.capacity,
                dropped_tuples=session.stats.dropped_tuples,
                egress_bytes=session.stats.shipped_tuples * tuple_bytes,
            )
            if decision is not None:
                if decisions is None:
                    decisions = []
                decisions.append((session, decision))
        if not decisions:
            return
        for session, decision in decisions:
            await self._apply_degradation(src, session, decision)

    async def _apply_degradation(
        self,
        src: _SourceState,
        session: SubscriberSession,
        decision: DegradationDecision,
    ) -> None:
        """Push one controller decision through the re-filter machinery."""
        try:
            await self._re_filter_locked(src, session, decision.spec)
        except Exception:
            # Degradation is best-effort: a failed autonomous re-filter
            # must not break the ingest path.  The rollback inside
            # _re_filter_locked left the old spec serving; rewind the
            # controller to match.
            controller = session.degradation
            if controller is not None:
                controller.level = decision.from_level
                controller.trajectory.pop()
            return
        if self.telemetry is not None:
            self._m_degradation.labels(session.app_name).set(decision.to_level)
            self.telemetry.events.emit(
                "qos_degraded" if decision.action == "degrade"
                else "qos_recovered",
                app=session.app_name,
                source=src.name,
                from_level=decision.from_level,
                level=decision.to_level,
                spec=decision.spec,
                signal=decision.signal,
                value=round(decision.value, 4),
                threshold=decision.threshold,
            )
        if session.qos_listener is not None:
            session.qos_listener(
                {
                    "app": session.app_name,
                    "source": src.name,
                    "action": decision.action,
                    "level": decision.to_level,
                    "spec": decision.spec,
                    "signal": decision.signal,
                    "value": decision.value,
                    "threshold": decision.threshold,
                }
            )

    async def _route(
        self, src: _SourceState, emissions: Sequence[Emission], now: float
    ) -> None:
        for emission in emissions:
            for app in sorted(emission.recipients):
                session = src.sessions.get(app)
                if session is None or session.disconnected:
                    continue
                session.stats.staged_tuples += 1
                batch = session.batcher.stage(emission.item, emission.emit_ts)
                if batch is not None:
                    await self._ship(src, session, batch)

    async def _ship(
        self, src: _SourceState, session: SubscriberSession, batch
    ) -> None:
        t = self.telemetry
        dropped_before = 0
        if t is not None:
            self._m_flushes.inc()
            dropped_before = session.stats.dropped_tuples
            if t.tracer.enabled:
                self._note_batch_traces(src, session, batch)
        controller = session.degradation
        if controller is not None:
            # A blocking put that waits is the clearest per-session
            # stress signal there is (the consumer is pacing the broker);
            # measure it so the controller sees it even when the policy
            # never drops.
            ship_started_ns = time.perf_counter_ns()
            await session.deliver(batch)
            controller.note_flush_wait(
                (time.perf_counter_ns() - ship_started_ns) / 1e6
            )
        else:
            await session.deliver(batch)
        if t is not None:
            dropped = session.stats.dropped_tuples - dropped_before
            if dropped:
                self._m_drops.labels(session.queue.policy).inc(dropped)
            self._m_queue_hw.labels(session.app_name).max(
                session.queue.depth
            )
        if session.disconnected or session.queue.closed:
            return
        self._publish_batch(src, session, batch)

    def _note_batch_traces(
        self, src: _SourceState, session: SubscriberSession, batch
    ) -> None:
        """Attach sampled items' accumulated stages to the outbound batch.

        The per-connection delivery pump picks these notes up (keyed by
        batch identity) to extend the trace with the session-queue and
        socket-write stages and put it on the wire.  The batch-flush
        interval is measured against the shared trace mark without
        moving it, so every fan-out recipient sees the same decide
        boundary.
        """
        t = self.telemetry
        now_ns = time.perf_counter_ns()
        notes: Optional[dict[int, list[tuple[int, int]]]] = None
        for item in batch.items:
            key = (src.name, item.seq)
            pairs = t.bag.peek(key)
            if pairs is None:
                continue
            dur = t.bag.since_mark(key, now_ns)
            if dur is not None:
                pairs.append((_SID_BATCH_FLUSH, dur))
                t.observe_stage(STAGE_BATCH_FLUSH, dur)
            if notes is None:
                notes = {}
            notes[item.seq] = pairs
        if notes:
            session.note_traces(batch, now_ns, notes)

    def _publish_batch(
        self, src: _SourceState, session: SubscriberSession, batch
    ) -> None:
        # Tuple-level multicast accounting: one publish per flushed batch,
        # labelled for this session only (per-session batching trades the
        # shared-emission publish of the batch path for bounded queues).
        self.system.multicast.publish(
            src.group_name,
            src.node,
            frozenset({session.app_name}),
            len(batch) * self.config.tuple_size_bytes,
            batch.flushed_ms,
        )

    def _final_flush(
        self, src: _SourceState, session: SubscriberSession
    ) -> None:
        """Flush a session's batcher without blocking (teardown paths)."""
        batch = session.batcher.flush(self._now)
        if batch is not None and session.deliver_nowait(batch):
            self._publish_batch(src, session, batch)

    # ------------------------------------------------------------------
    # Observation and shutdown
    # ------------------------------------------------------------------
    @staticmethod
    def _session_snapshot(session: SubscriberSession) -> SessionSnapshot:
        return SessionSnapshot(
            app_name=session.app_name,
            source_name=session.source_name,
            spec=session.spec,
            node=session.node,
            policy=session.queue.policy,
            queue_depth=session.queue.depth,
            queue_capacity=session.queue.capacity,
            batcher_pending=session.batcher.pending,
            staged_tuples=session.stats.staged_tuples,
            enqueued_batches=session.stats.enqueued_batches,
            delivered_batches=session.stats.delivered_batches,
            delivered_tuples=session.stats.delivered_tuples,
            dropped_batches=session.stats.dropped_batches,
            dropped_tuples=session.stats.dropped_tuples,
            disconnected=session.disconnected,
        )

    def decide_window(self) -> list[float]:
        """The sliding window of wall-clock decide latencies (ms).

        Exposed so a front-tier router can merge several workers'
        windows into one percentile computation instead of averaging
        already-computed percentiles (which is not meaningful).
        """
        return list(self._decide_window)

    def snapshot(self) -> ServiceSnapshot:
        """Live stats: sessions, queue depths, drops, decide percentiles."""
        sessions = tuple(
            self._session_snapshot(session)
            for src in self._sources.values()
            for session in src.sessions.values()
        )
        # Finished epochs plus the still-running engines: live cuts must
        # show up in periodic snapshots, not only after a cutover/close.
        cuts = sum(
            epoch.cuts_triggered
            for src in self._sources.values()
            for epoch in src.epochs
        ) + sum(
            slot.engine.cuts_triggered
            for src in self._sources.values()
            for slot in src.slots
        )
        return ServiceSnapshot.capture(
            now_ms=self._now,
            sources=tuple(self._sources),
            sessions=sessions,
            retired=tuple(self._retired),
            offered=self._offered,
            decided_emissions=self._decided_emissions,
            regroups=self._regroups,
            ticks=self._ticks,
            cuts_triggered=cuts,
            decide_window_ms=list(self._decide_window),
        )

    def results(self, source_name: str) -> list[EngineResult]:
        """Finished engine epochs for one source (complete after close)."""
        return list(self._src(source_name).epochs)

    async def close(self) -> dict[str, list[EngineResult]]:
        """Flush everything, finish engines, close sessions.

        Final flushes never block: if a closing batch cannot be enqueued
        it is counted as dropped rather than deadlocking shutdown.
        """
        if self._closed:
            return {src.name: list(src.epochs) for src in self._sources.values()}
        for src in self._sources.values():
            async with src.lock:
                await self._cutover(src)
                for session in src.sessions.values():
                    self._final_flush(src, session)
                    await session.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._closed = True
        return {src.name: list(src.epochs) for src in self._sources.values()}
