"""Simulated Solar-like dissemination substrate.

Implements, as a discrete-event simulation, the infrastructure the
paper's prototype ran on: a DHT-ring overlay (section 2.2.1), a
Scribe-style application-level multicast with tuple-level recipient
labels (sections 1.2 and 4.1.1), per-link bandwidth accounting and a
publish/subscribe layer that deploys group-aware filters on source
nodes (Figure 4.1).
"""

from repro.net.accounting import BandwidthAccounting, LinkUsage
from repro.net.multicast import MulticastGroup, PublishReceipt, ScribeMulticast
from repro.net.overlay import LinkModel, OverlayNetwork, OverlayNode, key_for
from repro.net.pubsub import Delivery, DisseminationResult, StreamingSystem
from repro.net.sim import Simulator

__all__ = [
    "BandwidthAccounting",
    "Delivery",
    "DisseminationResult",
    "LinkModel",
    "LinkUsage",
    "MulticastGroup",
    "OverlayNetwork",
    "OverlayNode",
    "PublishReceipt",
    "ScribeMulticast",
    "Simulator",
    "StreamingSystem",
    "key_for",
]
