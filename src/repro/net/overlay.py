"""Peer-to-peer overlay with DHT-style key routing.

Solar's dissemination runs over "a p2p overlay infrastructure in which
each overlay node supports a suite of data-dissemination services"
(section 4.1.1), with multicast "built on top of its peer-to-peer
distributed hash table-based routing substrate (Scribe)".  This module
provides the ring: nodes own numeric ids, keys route greedily to their
successor, and every hop crosses a configurable link (latency plus
bandwidth-dependent transmission delay), as in the Emulab setup of
1-5 Mbps links.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

__all__ = ["LinkModel", "OverlayNode", "OverlayNetwork", "key_for"]

_ID_BITS = 32
_ID_SPACE = 1 << _ID_BITS


def key_for(name: str) -> int:
    """Stable hash of a name into the id space (SHA-1 truncated)."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % _ID_SPACE


@dataclass(frozen=True)
class LinkModel:
    """Per-hop cost model.

    ``bandwidth_mbps`` is the *effective* bandwidth ("the effective
    bandwidth in a wireless mesh network is typically much smaller than
    its link capacity", section 1.1); ``latency_ms`` is propagation plus
    per-hop forwarding software delay.
    """

    bandwidth_mbps: float = 1.0
    latency_ms: float = 5.0

    def transfer_ms(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` across one hop."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        bits = size_bytes * 8
        return self.latency_ms + bits / (self.bandwidth_mbps * 1000.0)


@dataclass(frozen=True)
class OverlayNode:
    name: str
    node_id: int


class OverlayNetwork:
    """A ring of overlay nodes with greedy successor routing.

    Routing walks the ring clockwise from the source toward the key's
    successor using each node's finger table (successor plus
    exponentially spaced shortcuts), giving O(log n) hops like
    Pastry/Chord - adequate fidelity for hop-count and delay accounting.
    """

    def __init__(self, names: list[str], link: LinkModel | None = None):
        if not names:
            raise ValueError("an overlay needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.link = link if link is not None else LinkModel()
        self._nodes: dict[str, OverlayNode] = {}
        used_ids: set[int] = set()
        for name in names:
            node_id = key_for(name)
            while node_id in used_ids:  # resolve (unlikely) collisions
                node_id = (node_id + 1) % _ID_SPACE
            used_ids.add(node_id)
            self._nodes[name] = OverlayNode(name, node_id)
        self._ring = sorted(used_ids)
        self._by_id = {node.node_id: node for node in self._nodes.values()}
        self._fingers: dict[int, list[int]] = {
            node_id: self._build_fingers(node_id) for node_id in self._ring
        }

    # ------------------------------------------------------------------
    def node(self, name: str) -> OverlayNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; overlay has {sorted(self._nodes)}"
            ) from None

    @property
    def names(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def successor(self, key: int) -> OverlayNode:
        """The node owning ``key``: first node id >= key on the ring."""
        index = bisect.bisect_left(self._ring, key % _ID_SPACE)
        if index == len(self._ring):
            index = 0
        return self._by_id[self._ring[index]]

    def _build_fingers(self, node_id: int) -> list[int]:
        fingers = []
        for k in range(_ID_BITS):
            target = (node_id + (1 << k)) % _ID_SPACE
            fingers.append(self.successor(target).node_id)
        return sorted(set(fingers))

    def route(self, source: str, key: int) -> list[OverlayNode]:
        """Hop-by-hop path from ``source`` to the key's owner."""
        owner = self.successor(key)
        current = self.node(source)
        path = [current]
        visited = {current.node_id}
        while current.node_id != owner.node_id:
            best = None
            best_remaining = None
            for finger in self._fingers[current.node_id]:
                if finger in visited and finger != owner.node_id:
                    continue
                remaining = (owner.node_id - finger) % _ID_SPACE
                if best_remaining is None or remaining < best_remaining:
                    best_remaining = remaining
                    best = finger
            assert best is not None, "ring routing cannot strand"
            current = self._by_id[best]
            visited.add(current.node_id)
            path.append(current)
        return path

    def route_between(self, source: str, destination: str) -> list[OverlayNode]:
        return self.route(source, self.node(destination).node_id)
