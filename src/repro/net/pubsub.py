"""Solar-like publish/subscribe streaming system.

Ties the substrate together the way the prototype did (Figure 4.1 and
section 4.1): sources advertise on overlay nodes, applications subscribe
with a filter specification, the group-aware filtering service deploys
one group-aware filter per subscriber *on the source node*, and the
union of the filters' outputs is published through the overlay's
multicast facility with per-tuple recipient labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cuts import TimeConstraint
from repro.core.engine import (
    EngineResult,
    GroupAwareEngine,
    GroupFilterProtocol,
    SelfInterestedEngine,
)
from repro.core.output import OutputStrategy
from repro.core.tuples import StreamTuple, Trace
from repro.filters.spec import parse_filter
from repro.net.accounting import BandwidthAccounting
from repro.net.multicast import ScribeMulticast
from repro.net.overlay import OverlayNetwork

__all__ = ["Delivery", "DisseminationResult", "StreamingSystem"]


@dataclass(frozen=True)
class Delivery:
    """One tuple arriving at one application."""

    item: StreamTuple
    app_name: str
    delivered_ms: float

    @property
    def end_to_end_ms(self) -> float:
        return self.delivered_ms - self.item.timestamp


@dataclass
class DisseminationResult:
    """Everything measured for one source's dissemination run."""

    engine_result: EngineResult
    accounting: BandwidthAccounting
    deliveries: list[Delivery] = field(default_factory=list)
    tuple_size_bytes: int = 64

    def deliveries_for(self, app_name: str) -> list[Delivery]:
        return [d for d in self.deliveries if d.app_name == app_name]

    def mean_end_to_end_ms(self, app_name: Optional[str] = None) -> float:
        relevant = (
            self.deliveries
            if app_name is None
            else self.deliveries_for(app_name)
        )
        if not relevant:
            return 0.0
        return sum(d.end_to_end_ms for d in relevant) / len(relevant)

    @property
    def total_link_bytes(self) -> int:
        return self.accounting.total_bytes


@dataclass
class _Source:
    name: str
    node: str
    group_name: str


@dataclass
class _Subscription:
    app_name: str
    node: str
    source_name: str
    filter: GroupFilterProtocol


class StreamingSystem:
    """Sources, subscriptions and group-aware dissemination over an overlay."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        multicast: Optional[ScribeMulticast] = None,
        tuple_size_bytes: int = 64,
    ):
        self.overlay = overlay
        self.multicast = (
            multicast if multicast is not None else ScribeMulticast(overlay)
        )
        self.tuple_size_bytes = tuple_size_bytes
        self._sources: dict[str, _Source] = {}
        self._subscriptions: dict[str, list[_Subscription]] = {}

    # ------------------------------------------------------------------
    def add_source(self, source_name: str, node_name: str) -> None:
        """Advertise a data source on an overlay node (a source proxy)."""
        if source_name in self._sources:
            raise ValueError(f"source {source_name!r} already registered")
        self.overlay.node(node_name)  # validate
        group_name = f"src:{source_name}"
        self.multicast.create_group(group_name)
        self._sources[source_name] = _Source(source_name, node_name, group_name)
        self._subscriptions[source_name] = []

    def subscribe(
        self,
        app_name: str,
        node_name: str,
        source_name: str,
        filter_spec: GroupFilterProtocol | str,
    ) -> None:
        """Subscribe an application with its quality specification.

        ``filter_spec`` may be a filter instance or the paper's textual
        notation (e.g. ``"DC1(tmpr4, 0.031, 0.0155)"``); the filter is
        named after the application so multicast labels line up.
        """
        source = self._source(source_name)
        flt = (
            parse_filter(filter_spec, name=app_name)
            if isinstance(filter_spec, str)
            else filter_spec
        )
        if flt.name != app_name:
            raise ValueError(
                f"filter name {flt.name!r} must equal app name {app_name!r}"
            )
        if any(
            s.app_name == app_name for s in self._subscriptions[source_name]
        ):
            raise ValueError(
                f"app {app_name!r} is already subscribed to {source_name!r}"
            )
        group = self.multicast.group(source.group_name)
        if app_name not in group.members:
            # Re-subscribing after an unsubscribe reuses the grafted tree
            # branch instead of joining the Scribe group twice.
            self.multicast.join(source.group_name, app_name, node_name)
        elif group.members[app_name] != node_name:
            raise ValueError(
                f"app {app_name!r} re-subscribed from node {node_name!r} but "
                f"is grafted at {group.members[app_name]!r}"
            )
        self._subscriptions[source_name].append(
            _Subscription(app_name, node_name, source_name, flt)
        )

    def unsubscribe(self, app_name: str, source_name: str) -> None:
        """Withdraw an application's subscription.

        The Scribe tree branch stays grafted (re-joins are cheap and the
        paper's tuple-level multicast never forwards to a branch with no
        interested member), but the filter leaves the source's group so
        later dissemination excludes the application.
        """
        subscriptions = self._subscriptions[self._source(source_name).name]
        for index, subscription in enumerate(subscriptions):
            if subscription.app_name == app_name:
                del subscriptions[index]
                return
        raise KeyError(
            f"app {app_name!r} is not subscribed to source {source_name!r}"
        )

    def subscribers(self, source_name: str) -> list[str]:
        return [s.app_name for s in self._subscriptions[self._source(source_name).name]]

    def _source(self, source_name: str) -> _Source:
        try:
            return self._sources[source_name]
        except KeyError:
            raise KeyError(f"unknown source {source_name!r}") from None

    # ------------------------------------------------------------------
    def disseminate(
        self,
        source_name: str,
        trace: Trace,
        algorithm: str = "region",
        output_strategy: Optional[OutputStrategy] = None,
        time_constraint: Optional[TimeConstraint] = None,
    ) -> DisseminationResult:
        """Replay ``trace`` through the source's filter group and multicast.

        ``algorithm`` is ``"region"``, ``"per_candidate_set"`` or
        ``"self_interested"`` (the baseline).  Each emission is published
        with its recipient labels; deliveries and per-link bandwidth are
        recorded in the returned result.
        """
        source = self._source(source_name)
        subscriptions = self._subscriptions[source_name]
        if not subscriptions:
            raise ValueError(f"source {source_name!r} has no subscribers")
        filters = [s.filter for s in subscriptions]

        if algorithm == "self_interested":
            engine_result = SelfInterestedEngine(filters).run(trace)
        else:
            engine = GroupAwareEngine(
                filters,
                algorithm=algorithm,
                output_strategy=output_strategy,
                time_constraint=time_constraint,
            )
            engine_result = engine.run(trace)

        accounting = self.multicast.accounting
        result = DisseminationResult(
            engine_result=engine_result,
            accounting=accounting,
            tuple_size_bytes=self.tuple_size_bytes,
        )
        for emission in sorted(engine_result.emissions, key=lambda e: e.emit_ts):
            receipt = self.multicast.publish(
                source.group_name,
                source.node,
                emission.recipients,
                self.tuple_size_bytes,
                emission.emit_ts,
            )
            for app_name, delivered_ms in receipt.delivery_ms.items():
                result.deliveries.append(
                    Delivery(emission.item, app_name, delivered_ms)
                )
        return result
