"""Scribe-style application-level multicast with tuple-level groups.

Solar "disseminates events with an application-level multicast facility
built on top of its peer-to-peer distributed hash table-based routing
substrate (Scribe)" (section 4.1.1).  As in Scribe, each group has a
rendezvous node (the owner of the group key); members join by routing
toward the rendezvous, and the reverse paths form the dissemination
tree.

The paper requires *tuple-level* multicast: "each tuple may or may not
share the same multicast group" - i.e. every published tuple carries a
recipient subset, and forwarding is pruned to branches that lead to an
interested member, so "each tuple is transmitted at most once on any
link" (section 1.2).  ``software_overhead_ms`` models the dominant cost
the paper measured: "more than 50 ms for invoking application-level
multicast" / "about 130 ms" on the 1 Mbps Emulab overlay (section 4.1.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.accounting import BandwidthAccounting
from repro.net.overlay import OverlayNetwork, OverlayNode, key_for

__all__ = ["MulticastGroup", "ScribeMulticast", "PublishReceipt"]


@dataclass
class MulticastGroup:
    name: str
    rendezvous: OverlayNode
    #: application name -> hosting overlay node name
    members: dict[str, str] = field(default_factory=dict)
    #: dissemination tree: child node -> parent node (toward rendezvous)
    parent: dict[str, str] = field(default_factory=dict)
    children: dict[str, set[str]] = field(default_factory=dict)

    def nodes_hosting(self, apps: frozenset[str]) -> set[str]:
        missing = [app for app in apps if app not in self.members]
        if missing:
            raise KeyError(f"apps {missing} are not members of group {self.name!r}")
        return {self.members[app] for app in apps}


@dataclass(frozen=True)
class PublishReceipt:
    """Outcome of publishing one tuple to a recipient subset."""

    delivery_ms: dict[str, float]
    link_transmissions: int
    bytes_sent: int


class ScribeMulticast:
    """Group management and pruned tree forwarding over an overlay."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        accounting: BandwidthAccounting | None = None,
        software_overhead_ms: float = 50.0,
        delivery_overhead_ms: float = 1.0,
        loss_rate: float = 0.0,
        max_retries: int = 8,
        seed: int = 0,
        rng: random.Random | None = None,
    ):
        """``loss_rate`` models lossy wireless hops: each transmission
        fails independently with that probability and is retransmitted
        (hop-by-hop ARQ) up to ``max_retries`` times, costing extra
        bandwidth and latency - the wireless-dynamics dimension the
        dissertation leaves to future work (section 6.2).

        ``rng`` injects the loss-model randomness source; pass a
        ``random.Random(seed)`` shared with the rest of a run so service
        runs and tests are deterministic end to end.  When omitted, a
        private ``random.Random(seed)`` is used."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.overlay = overlay
        self.accounting = accounting if accounting is not None else BandwidthAccounting()
        self.software_overhead_ms = software_overhead_ms
        self.delivery_overhead_ms = delivery_overhead_ms
        self.loss_rate = loss_rate
        self.max_retries = max_retries
        self._rng = rng if rng is not None else random.Random(seed)
        self.retransmissions = 0
        self._groups: dict[str, MulticastGroup] = {}
        #: Memoized publish routing: (group, publisher, recipients) ->
        #: (up edges, BFS-ordered down edges, app -> node).  The live
        #: broker publishes once per flushed batch with the same
        #: single-app recipient set, so the DHT route and the pruned
        #: tree walk are recomputed only after membership changes
        #: (:meth:`join` clears the cache).
        self._plan_cache: dict[tuple, tuple] = {}

    def _hop_attempts(self) -> int:
        """Number of transmissions needed to get one message across a hop."""
        attempts = 1
        while (
            self.loss_rate > 0.0
            and attempts <= self.max_retries
            and self._rng.random() < self.loss_rate
        ):
            attempts += 1
        return attempts

    # ------------------------------------------------------------------
    # Group membership
    # ------------------------------------------------------------------
    def create_group(self, name: str) -> MulticastGroup:
        if name in self._groups:
            raise ValueError(f"group {name!r} already exists")
        rendezvous = self.overlay.successor(key_for(name))
        group = MulticastGroup(name=name, rendezvous=rendezvous)
        self._groups[name] = group
        return group

    def group(self, name: str) -> MulticastGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise KeyError(f"unknown group {name!r}") from None

    def join(self, group_name: str, app_name: str, node_name: str) -> None:
        """Route toward the rendezvous, grafting onto the tree (Scribe)."""
        group = self.group(group_name)
        if app_name in group.members:
            raise ValueError(f"app {app_name!r} already joined {group_name!r}")
        # Routing validates the node; only then register the member, so a
        # join from an unknown node leaves no half-grafted residue that
        # would poison the app name for every later (valid) re-join.
        path = self.overlay.route(node_name, group.rendezvous.node_id)
        group.members[app_name] = node_name
        self._plan_cache.clear()  # membership/tree changed; routes may too
        for child, parent in zip(path, path[1:]):
            if child.name in group.parent:
                break  # already grafted onto the tree
            group.parent[child.name] = parent.name
            group.children.setdefault(parent.name, set()).add(child.name)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        group_name: str,
        publisher_node: str,
        recipients: frozenset[str],
        size_bytes: int,
        send_ms: float,
    ) -> PublishReceipt:
        """Send one tuple to the recipient subset, pruning the tree.

        Returns per-app delivery times and the link cost.  The message
        travels publisher -> rendezvous, then down only the tree edges
        that lead to a node hosting an interested member.
        """
        group = self.group(group_name)
        if not recipients:
            return PublishReceipt({}, 0, 0)
        up_edges, down_edges, member_nodes = self._plan(
            group, group_name, publisher_node, recipients
        )
        record = self.accounting.record
        hop_ms = self.overlay.link.transfer_ms(size_bytes)
        lossless = self.loss_rate == 0.0
        transmissions = 0

        # Phase 1: publisher to rendezvous.
        at_rendezvous_ms = send_ms + self.software_overhead_ms
        for sender, receiver in up_edges:
            attempts = 1 if lossless else self._hop_attempts()
            for _ in range(attempts):
                record(sender, receiver, size_bytes)
            transmissions += attempts
            self.retransmissions += attempts - 1
            at_rendezvous_ms += attempts * hop_ms

        # Phase 2: pruned tree dissemination along the plan's edges
        # (BFS-ordered, so a parent is always timed before its children).
        arrival_ms: dict[str, float] = {group.rendezvous.name: at_rendezvous_ms}
        for parent, child in down_edges:
            attempts = 1 if lossless else self._hop_attempts()
            for _ in range(attempts):
                record(parent, child, size_bytes)
            transmissions += attempts
            self.retransmissions += attempts - 1
            arrival_ms[child] = arrival_ms[parent] + attempts * hop_ms

        delivery = {}
        for app in recipients:
            node_arrival = arrival_ms.get(member_nodes[app])
            if node_arrival is None:
                # The member sits on the rendezvous or the publisher itself.
                node_arrival = at_rendezvous_ms
            delivery[app] = node_arrival + self.delivery_overhead_ms
        return PublishReceipt(
            delivery_ms=delivery,
            link_transmissions=transmissions,
            bytes_sent=transmissions * size_bytes,
        )

    def _plan(
        self,
        group: MulticastGroup,
        group_name: str,
        publisher_node: str,
        recipients: frozenset[str],
    ) -> tuple:
        """The (cached) routing work of one publish.

        Everything here is deterministic given the overlay and the
        group's tree: the DHT up-route, the union of tree paths to the
        interested nodes in the exact traversal order the un-cached walk
        used (so the loss model consumes its RNG in the same sequence),
        and the member -> node map.  Only the per-hop attempt draws and
        accounting remain per publish."""
        key = (group_name, publisher_node, recipients)
        plan = self._plan_cache.get(key)
        if plan is not None:
            return plan
        target_nodes = group.nodes_hosting(recipients)
        up_path = self.overlay.route(publisher_node, group.rendezvous.node_id)
        up_edges = tuple(
            (sender.name, receiver.name)
            for sender, receiver in zip(up_path, up_path[1:])
        )
        needed_edges: set[tuple[str, str]] = set()
        for node_name in target_nodes:
            current = node_name
            while current != group.rendezvous.name:
                parent = group.parent.get(current)
                if parent is None:
                    raise RuntimeError(
                        f"node {current!r} is not grafted onto group {group_name!r}"
                    )
                needed_edges.add((parent, current))
                current = parent
        ordered: list[tuple[str, str]] = []
        seen = {group.rendezvous.name}
        frontier = [group.rendezvous.name]
        while frontier:
            parent = frontier.pop()
            for child in sorted(group.children.get(parent, ())):
                if (parent, child) not in needed_edges or child in seen:
                    continue
                ordered.append((parent, child))
                seen.add(child)
                frontier.append(child)
        member_nodes = {app: group.members[app] for app in recipients}
        plan = (up_edges, tuple(ordered), member_nodes)
        self._plan_cache[key] = plan
        return plan
