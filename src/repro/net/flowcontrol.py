"""Input-buffer flow control (section 4.8).

"Yet, with a large group size, the overhead can cause congestion at the
input buffer of the filter.  The system needs to resort to other
mechanisms to resolve it.  For example, Solar installs flow-control
filters in the buffer to alleviate congestion.  The system may also
employ more aggressive sampling to shed data load, or gracefully degrade
the quality requirements of the filters."

This module provides a bounded input buffer with three shedding
policies:

* ``drop_tail``    - refuse arrivals when full (classic tail drop);
* ``drop_random``  - evict a random buffered tuple (unbiased shedding,
  like Aurora's random drop operators);
* ``sample``       - admit only every k-th tuple once congested
  (aggressive sampling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.tuples import StreamTuple

__all__ = ["FlowControlledBuffer", "BufferStats"]

_POLICIES = ("drop_tail", "drop_random", "sample")


@dataclass
class BufferStats:
    arrived: int = 0
    admitted: int = 0
    shed: int = 0
    peak_occupancy: int = 0

    @property
    def shed_fraction(self) -> float:
        if self.arrived == 0:
            return 0.0
        return self.shed / self.arrived


@dataclass
class FlowControlledBuffer:
    """Bounded FIFO with a load-shedding policy."""

    capacity: int
    policy: str = "drop_tail"
    sample_stride: int = 2
    seed: int = 0
    stats: BufferStats = field(default_factory=BufferStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        if self.sample_stride < 1:
            raise ValueError("sample_stride must be at least 1")
        self._queue: list[StreamTuple] = []
        self._rng = random.Random(self.seed)
        self._congested_count = 0

    # ------------------------------------------------------------------
    def offer(self, item: StreamTuple) -> bool:
        """Present an arriving tuple; returns True if it was admitted."""
        self.stats.arrived += 1
        if len(self._queue) < self.capacity:
            self._admit(item)
            return True
        # Congested: apply the shedding policy.
        if self.policy == "drop_tail":
            self.stats.shed += 1
            return False
        if self.policy == "drop_random":
            victim_index = self._rng.randrange(len(self._queue))
            self._queue.pop(victim_index)
            self.stats.shed += 1
            self._admit(item)
            return True
        # "sample": admit every sample_stride-th congested arrival by
        # displacing the oldest buffered tuple.
        self._congested_count += 1
        if self._congested_count % self.sample_stride == 0:
            self._queue.pop(0)
            self.stats.shed += 1
            self._admit(item)
            return True
        self.stats.shed += 1
        return False

    def _admit(self, item: StreamTuple) -> None:
        self._queue.append(item)
        self.stats.admitted += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._queue))

    # ------------------------------------------------------------------
    def take(self) -> Optional[StreamTuple]:
        """Dequeue the next tuple for the filter stage, FIFO order."""
        if not self._queue:
            return None
        return self._queue.pop(0)

    def __len__(self) -> int:
        return len(self._queue)

    def drain(self) -> list[StreamTuple]:
        items, self._queue = self._queue, []
        return items
