"""Per-link bandwidth accounting.

The point of group-aware filtering is fewer bytes on the wire; this
module counts them.  Every transmission of a message across one overlay
hop is recorded, so experiments can compare total link transmissions and
bytes between self-interested and group-aware dissemination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LinkUsage", "BandwidthAccounting"]


@dataclass
class LinkUsage:
    messages: int = 0
    bytes: int = 0


@dataclass
class BandwidthAccounting:
    """Tallies of traffic per directed overlay link."""

    links: dict[tuple[str, str], LinkUsage] = field(default_factory=dict)

    def record(self, sender: str, receiver: str, size_bytes: int) -> None:
        if sender == receiver:
            return  # local hand-off, nothing crosses the network
        usage = self.links.setdefault((sender, receiver), LinkUsage())
        usage.messages += 1
        usage.bytes += size_bytes

    @property
    def total_messages(self) -> int:
        return sum(usage.messages for usage in self.links.values())

    @property
    def total_bytes(self) -> int:
        return sum(usage.bytes for usage in self.links.values())

    def busiest_links(self, top: int = 5) -> list[tuple[tuple[str, str], LinkUsage]]:
        ranked = sorted(
            self.links.items(), key=lambda item: item[1].bytes, reverse=True
        )
        return ranked[:top]

    def merge(self, other: "BandwidthAccounting") -> None:
        for link, usage in other.links.items():
            mine = self.links.setdefault(link, LinkUsage())
            mine.messages += usage.messages
            mine.bytes += usage.bytes
