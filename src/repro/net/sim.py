"""Discrete-event simulation kernel for the overlay substrate.

The paper's prototype ran on Solar over Emulab; this reproduction runs
the same logical system over a simulated network.  The kernel is a plain
event queue with a millisecond clock - deterministic, single-threaded,
and fast enough to disseminate hundreds of thousands of tuples.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

__all__ = ["Simulator"]


class Simulator:
    """Priority-queue discrete-event scheduler (time unit: milliseconds)."""

    def __init__(self, start_ms: float = 0.0):
        self._now = start_ms
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay_ms`` from the current time."""
        if delay_ms < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay_ms})")
        self.schedule_at(self._now + delay_ms, action)

    def schedule_at(self, time_ms: float, action: Callable[[], None]) -> None:
        if time_ms < self._now:
            raise ValueError(
                f"cannot schedule at {time_ms} before current time {self._now}"
            )
        heapq.heappush(self._queue, (time_ms, next(self._counter), action))

    def run(self, until_ms: Optional[float] = None) -> float:
        """Drain the event queue (optionally up to ``until_ms``).

        Returns the final clock value.  Events scheduled while running
        are processed in timestamp order; ties run in scheduling order.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        try:
            while self._queue:
                time_ms, _, action = self._queue[0]
                if until_ms is not None and time_ms > until_ms:
                    break
                heapq.heappop(self._queue)
                self._now = time_ms
                action()
            if until_ms is not None and until_ms > self._now:
                self._now = until_ms
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        return len(self._queue)
