"""TCP gateway: the dissemination broker behind real sockets.

:class:`GatewayServer` accepts TCP connections speaking the
length-prefixed JSON protocol of :mod:`repro.transport.protocol` and
bridges them onto a live :class:`~repro.service.broker.DisseminationService`:

* **ingest producers** send ``ingest`` frames; each is offered to the
  broker *inline* in the connection's read loop, so a ``block`` overflow
  policy on any subscriber propagates as backpressure all the way to the
  producer's socket (the server simply stops reading further frames
  until the offer completes);
* **subscribers** send ``subscribe``; the server attaches a
  :class:`~repro.service.session.SubscriberSession` and starts a *pump*
  task that forwards every delivered batch as a ``decided`` frame.  The
  pump awaits ``drain()`` on the socket, so a remote reader that stops
  consuming fills the kernel buffers, stalls the pump, and lets the
  session's bounded queue apply its overflow policy — ``drop_oldest``
  drops server-side, ``disconnect`` reaps the session *and closes the
  socket*;
* a connection may do both at once, and many connections multiplex onto
  one broker.

Connection teardown — a clean ``bye``, an abrupt reset, or EOF — always
reclaims the connection's subscriptions: sessions are unsubscribed from
the broker (which final-flushes their batchers and removes the pub/sub
registration), so a vanished client never leaks filter-group state.

:meth:`GatewayServer.shutdown` is the graceful path used by ``repro
serve`` on SIGINT/SIGTERM: stop accepting, close the service (cutover +
final-flush of every session batcher), let the pumps drain the closing
batches onto the sockets, send ``bye``, and return a terminal snapshot.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Optional

from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    STAGE_SESSION_QUEUE,
    STAGE_SOCKET_WRITE,
    stage_id,
)
from repro.qos.controller import policy_from_profile
from repro.qos.spec import QualitySpec
from repro.service.broker import DisseminationService
from repro.service.session import SubscriberSession
from repro.transport.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    FANOUT_SHARED,
    FANOUTS,
    SUPPORTED_CODECS,
    FrameEncoder,
    NameTable,
    SegmentCache,
    make_encoder,
    negotiate,
)
from repro.transport.protocol import (
    FEATURE_QOS,
    FEATURE_TRACE,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    negotiate_features,
    pack_header,
    traces_from_wire,
    tuple_from_wire,
    tuple_to_wire,
)

__all__ = ["GatewayServer", "service_snapshot_dict"]

#: Read-chunk size for the per-connection frame loop.
_READ_CHUNK = 1 << 16

_SID_SESSION_QUEUE = stage_id(STAGE_SESSION_QUEUE)


class _TransportMetrics:
    """Shared transport-layer instrument handles for all connections."""

    def __init__(self, telemetry: Telemetry):
        registry = telemetry.registry
        self.frames = registry.counter(
            "repro_transport_frames_total",
            "Wire frames by direction and connection codec.",
            ("direction", "codec"),
        )
        self.bytes = registry.counter(
            "repro_transport_bytes_total",
            "Wire bytes by direction and connection codec.",
            ("direction", "codec"),
        )
        self.stall = registry.counter(
            "repro_transport_backpressure_stall_seconds_total",
            "Cumulative time writes spent awaiting socket drain.",
        )
        self.connections = registry.gauge(
            "repro_transport_connections", "Open gateway connections."
        )


async def service_snapshot_dict(service) -> dict:
    """A service's snapshot as a plain dict, whatever its surface.

    ``DisseminationService.snapshot`` is sync and returns a dataclass;
    the cluster router's is a coroutine returning an already-merged
    dict.  Every front end (gateway, HTTP) funnels through here.
    """
    snapshot = service.snapshot()
    if asyncio.iscoroutine(snapshot):
        snapshot = await snapshot
    return snapshot if isinstance(snapshot, dict) else snapshot.to_dict()


class _BadRequest(Exception):
    """A well-framed request the service refused; reply, keep serving."""


def _field(frame: dict, name: str):
    try:
        return frame[name]
    except KeyError:
        raise _BadRequest(
            f"frame {frame.get('t')!r} is missing field {name!r}"
        ) from None


class _Connection:
    """Per-socket state: write serialization and owned subscriptions."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame_bytes: int,
        encoder: FrameEncoder,
        metrics: Optional[_TransportMetrics] = None,
    ):
        self.reader = reader
        self.writer = writer
        self.max_frame_bytes = max_frame_bytes
        #: Negotiated sending-side codec (JSON until the hello upgrades it).
        self.encoder = encoder
        #: Features agreed in the hello (empty for v1 peers).
        self.features: list[str] = []
        self.metrics = metrics
        self.pumps: dict[str, asyncio.Task] = {}
        self.sessions: dict[str, SubscriberSession] = {}
        self._write_lock = asyncio.Lock()
        self.peer = writer.get_extra_info("peername")

    async def _drain(self) -> None:
        """Drain the socket, charging wait time to the stall counter."""
        if self.metrics is None:
            await self.writer.drain()
            return
        started = time.perf_counter()
        await self.writer.drain()
        self.metrics.stall.inc(time.perf_counter() - started)

    async def send(self, frame: dict) -> None:
        """Write one frame; pumps and replies interleave whole frames."""
        payload = encode_frame(frame, max_frame_bytes=self.max_frame_bytes)
        async with self._write_lock:
            self.writer.write(payload)
            await self._drain()
        if self.metrics is not None:
            self.metrics.frames.labels("out", self.encoder.codec).inc()
            self.metrics.bytes.labels("out", self.encoder.codec).inc(
                len(payload)
            )

    async def send_decided(
        self, app: str, batch, *, shared: bool, traces=None
    ) -> None:
        """Fan one decided batch out as header + shared body pieces.

        Encoding happens *inside* the write lock: the binary encoder's
        attribute-name deltas must hit the wire in the order they were
        computed, or a concurrent pump could use an id before the frame
        that defines it is written.  The pieces are the per-tuple
        segments shared by every session this batch's tuples fanned out
        to — ``writelines`` ships them by reference, nothing is
        re-serialized or joined per session.
        """
        async with self._write_lock:
            pieces, total = self.encoder.decided_pieces(
                app,
                batch,
                max_frame_bytes=self.max_frame_bytes,
                shared=shared,
                traces=traces,
            )
            self.writer.write(pack_header(total))
            self.writer.writelines(memoryview(piece) for piece in pieces)
            await self._drain()
        if self.metrics is not None:
            self.metrics.frames.labels("out", self.encoder.codec).inc()
            self.metrics.bytes.labels("out", self.encoder.codec).inc(
                total + 4
            )

    async def send_quiet(self, frame: dict) -> None:
        """Best-effort send on teardown paths (peer may be gone)."""
        try:
            await self.send(frame)
        except (ConnectionError, RuntimeError):
            pass

    def abort(self) -> None:
        transport = self.writer.transport
        if transport is not None and not transport.is_closing():
            transport.abort()


class GatewayServer:
    """Asyncio TCP front end for one dissemination service.

    ``service`` is usually a :class:`DisseminationService`; any object
    with the same async data-path surface works — the multi-process
    router (:class:`repro.service.cluster.ClusterService`) plugs in
    here, which is what makes the front tier reusable: client
    connections, subscriptions and decided fan-out are identical whether
    one broker or N worker processes sit behind them.  ``snapshot()``,
    ``close()`` and ``add_source()`` may be coroutines on such services;
    the dispatch paths await them when they are.
    """

    def __init__(
        self,
        service: DisseminationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        sndbuf_bytes: Optional[int] = None,
        codecs: tuple[str, ...] = SUPPORTED_CODECS,
        fanout: str = FANOUT_SHARED,
        segment_cache_size: int = 4096,
        telemetry: Optional[Telemetry] = None,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self.auth_token = auth_token
        self.max_frame_bytes = max_frame_bytes
        #: Shrink each connection's socket send buffer (tests and
        #: benchmarks use this to make slow-consumer backpressure kick in
        #: after kilobytes instead of megabytes of kernel buffering).
        self.sndbuf_bytes = sndbuf_bytes
        #: Codecs this server will agree to in the hello negotiation
        #: (restrict to ("json",) to force the fallback path).
        self.codecs = tuple(codecs)
        if fanout not in FANOUTS:
            raise ValueError(
                f"unknown fanout {fanout!r}; expected one of {FANOUTS}"
            )
        #: "shared" assembles decided frames from per-tuple segments
        #: encoded once per codec; "per_session" re-serializes every
        #: batch for every subscriber (the PR-3 baseline, kept for A/B
        #: benchmarking).
        self.fanout = fanout
        # Encode-once state shared by every connection: one sender-side
        # attribute-name table (binary ids are global to the server) and
        # one segment cache per codec.
        self._name_table = NameTable()
        self._segment_caches = {
            CODEC_JSON: SegmentCache(segment_cache_size),
            CODEC_BINARY: SegmentCache(segment_cache_size),
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set[_Connection] = set()
        self._handlers: set[asyncio.Task] = set()
        self._shutting_down = False
        # Live-migration staging: exported journals awaiting chunked
        # pulls and inbound chunks awaiting an import commit.  Journals
        # can exceed one frame, so the handshake streams them.
        self._export_stash: dict[str, list] = {}
        self._import_stash: dict[str, list] = {}
        self.telemetry = telemetry
        self._metrics: Optional[_TransportMetrics] = None
        if telemetry is not None:
            self._metrics = _TransportMetrics(telemetry)
            cache_hits = telemetry.registry.counter(
                "repro_transport_segment_cache_hits_total",
                "Encode-once segment cache hits, by codec.",
                ("codec",),
            )
            cache_misses = telemetry.registry.counter(
                "repro_transport_segment_cache_misses_total",
                "Encode-once segment cache misses, by codec.",
                ("codec",),
            )

            def _collect_caches() -> None:
                for codec, cache in self._segment_caches.items():
                    cache_hits.labels(codec).value = float(cache.hits)
                    cache_misses.labels(codec).value = float(cache.misses)

            telemetry.registry.register_collector(_collect_caches)

    def _make_encoder(self, codec: str) -> FrameEncoder:
        return make_encoder(
            codec,
            table=self._name_table,
            cache=self._segment_caches[codec],
        )

    async def _snapshot_dict(self) -> dict:
        return await service_snapshot_dict(self.service)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves an ephemeral ``port=0`` after start)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )

    async def shutdown(
        self, *, reason: str = "shutdown", drain_timeout_s: float = 5.0
    ) -> dict:
        """Graceful stop; returns the terminal service snapshot dict.

        Order matters: the service closes *first* (cutover of every live
        engine plus a final flush of every session batcher into its
        queue), so the still-running pumps drain those closing batches
        onto the sockets before the connections are dismissed with
        ``bye``.  A pump wedged on an unresponsive peer is given
        ``drain_timeout_s`` and then cancelled — shutdown never hangs on
        a dead consumer.
        """
        self._shutting_down = True
        if self._server is not None:
            # Stop accepting, but do NOT await wait_closed() yet: since
            # Python 3.12.1 it waits for every connection handler to
            # finish, and ours only finish after the teardown below.
            self._server.close()
        # service.close() can wedge: a producer's inline offer may hold a
        # source lock while blocked on a full `block`-policy queue whose
        # pump is stalled against an unresponsive reader.  Give the
        # close a drain window; on timeout, declare every *full* gateway
        # session dead (close its queue, waking the blocked producer and
        # releasing the lock) and let the close finish.  Idle sessions
        # keep their queues open and still get their final flush.
        close_task = asyncio.ensure_future(self.service.close())
        done, _ = await asyncio.wait({close_task}, timeout=drain_timeout_s)
        if close_task not in done:
            for conn in list(self._connections):
                for session in list(conn.sessions.values()):
                    queue = session.queue
                    if not queue.closed and queue.depth >= queue.capacity:
                        session.disconnected = True
                        await queue.close()
        await close_task
        for conn in list(self._connections):
            pumps = [task for task in conn.pumps.values() if not task.done()]
            wedged = False
            if pumps:
                _, pending = await asyncio.wait(
                    pumps, timeout=drain_timeout_s
                )
                for task in pending:
                    task.cancel()
                wedged = bool(pending)
            if wedged:
                # The peer stopped reading: its socket buffers are full,
                # so a polite bye (or a graceful close waiting to flush)
                # would block forever.  Drop the transport.
                conn.abort()
                continue
            try:
                await asyncio.wait_for(
                    conn.send_quiet({"t": "bye", "reason": reason}),
                    timeout=drain_timeout_s,
                )
            except asyncio.TimeoutError:
                conn.abort()
                continue
            conn.writer.close()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        return await self._snapshot_dict()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(
            reader,
            writer,
            self.max_frame_bytes,
            self._make_encoder(CODEC_JSON),
            metrics=self._metrics,
        )
        if self._metrics is not None:
            self._metrics.connections.inc()
        if self.sndbuf_bytes is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.sndbuf_bytes
                )
            writer.transport.set_write_buffer_limits(high=self.sndbuf_bytes)
        self._connections.add(conn)
        try:
            await self._serve_connection(conn)
        except ProtocolError as exc:
            await conn.send_quiet(
                {"t": "error", "code": exc.code, "message": str(exc)}
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if self._metrics is not None:
                self._metrics.connections.dec()
            self._connections.discard(conn)
            await self._reap(conn)
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, conn: _Connection) -> None:
        decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        greeted = False
        while True:
            data = await conn.reader.read(_READ_CHUNK)
            if not data:
                return
            frames = decoder.feed(data)
            if self._metrics is not None:
                self._metrics.bytes.labels("in", conn.encoder.codec).inc(
                    len(data)
                )
                if frames:
                    self._metrics.frames.labels(
                        "in", conn.encoder.codec
                    ).inc(len(frames))
            for frame in frames:
                if not greeted:
                    if not await self._greet(conn, frame):
                        return
                    greeted = True
                    continue
                if frame.get("t") == "bye":
                    return
                await self._dispatch(conn, frame)

    async def _greet(self, conn: _Connection, frame: dict) -> bool:
        seq = frame.get("seq")
        if frame.get("t") != "hello":
            raise ProtocolError("the first frame must be 'hello'")
        if frame.get("v") != PROTOCOL_VERSION:
            await conn.send_quiet(
                {
                    "t": "error",
                    "reply_to": seq,
                    "code": "version",
                    "message": f"server speaks v{PROTOCOL_VERSION}, "
                    f"client offered {frame.get('v')!r}",
                }
            )
            return False
        if self.auth_token is not None and frame.get("token") != self.auth_token:
            await conn.send_quiet(
                {
                    "t": "error",
                    "reply_to": seq,
                    "code": "auth",
                    "message": "bad or missing auth token",
                }
            )
            return False
        offered = frame.get("codecs")
        if offered is not None and (
            not isinstance(offered, list)
            or not all(isinstance(name, str) for name in offered)
        ):
            raise ProtocolError("hello 'codecs' must be a list of strings")
        codec = negotiate(offered, self.codecs)
        offered_features = frame.get("features")
        if offered_features is not None and (
            not isinstance(offered_features, list)
            or not all(isinstance(name, str) for name in offered_features)
        ):
            raise ProtocolError("hello 'features' must be a list of strings")
        features = negotiate_features(offered_features)
        await conn.send(
            {
                "t": "welcome",
                "reply_to": seq,
                "v": PROTOCOL_VERSION,
                "server": "repro-gateway",
                "sources": list(self.service.sources()),
                "codec": codec,
                "features": features,
            }
        )
        conn.features = features
        # Upgrade only after the welcome is on the wire: everything the
        # client saw so far was JSON, everything after may be binary.
        if codec != conn.encoder.codec:
            conn.encoder = self._make_encoder(codec)
        return True

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, conn: _Connection, frame: dict) -> None:
        kind = frame.get("t")
        seq = frame.get("seq")
        try:
            if kind == "ingest":
                await self._on_ingest(conn, frame, seq)
            elif kind == "ingest_batch":
                await self._on_ingest_batch(conn, frame, seq)
            elif kind == "subscribe":
                await self._on_subscribe(conn, frame, seq)
            elif kind == "unsubscribe":
                await self.service.unsubscribe(_field(frame, "app"))
                await conn.send({"t": "ok", "reply_to": seq})
            elif kind == "re_filter":
                await self.service.re_filter(
                    _field(frame, "app"), _field(frame, "spec")
                )
                await conn.send({"t": "ok", "reply_to": seq})
            elif kind == "tick":
                emissions = await self.service.tick(
                    float(_field(frame, "now_ms"))
                )
                if seq is not None:
                    await conn.send(
                        {"t": "ok", "reply_to": seq, "emissions": emissions}
                    )
            elif kind == "snapshot":
                snapshot = await self._snapshot_dict()
                if frame.get("window") and hasattr(self.service, "decide_window"):
                    # Raw latency window for cross-process percentile
                    # merging (a router cannot merge percentiles).
                    snapshot = {
                        **snapshot,
                        "decide_window_ms": list(self.service.decide_window()),
                    }
                await conn.send(
                    {
                        "t": "snapshot",
                        "reply_to": seq,
                        "snapshot": snapshot,
                    }
                )
            elif kind == "export_source":
                await self._send_source_state(
                    conn,
                    seq,
                    _field(frame, "source"),
                    destructive=True,
                )
            elif kind == "snapshot_source":
                await self._send_source_state(
                    conn,
                    seq,
                    _field(frame, "source"),
                    destructive=False,
                )
            elif kind == "export_pull":
                name = _field(frame, "source")
                offset = int(_field(frame, "offset"))
                count = max(1, int(_field(frame, "count")))
                entries = self._export_stash.get(name, [])
                chunk = entries[offset : offset + count]
                done = offset + len(chunk) >= len(entries)
                if done:
                    self._export_stash.pop(name, None)
                await conn.send(
                    {
                        "t": "ok",
                        "reply_to": seq,
                        "entries": chunk,
                        "done": done,
                    }
                )
            elif kind == "import_begin":
                self._import_stash[_field(frame, "source")] = []
                await conn.send({"t": "ok", "reply_to": seq})
            elif kind == "import_chunk":
                name = _field(frame, "source")
                if name not in self._import_stash:
                    raise _BadRequest(
                        f"no import in progress for source {name!r}"
                    )
                self._import_stash[name].extend(_field(frame, "entries"))
                await conn.send({"t": "ok", "reply_to": seq})
            elif kind == "import_commit":
                await self._on_import_commit(conn, frame, seq)
            elif kind == "ensure_source":
                name = _field(frame, "source")
                created = not self.service.has_source(name)
                if created:
                    result = self.service.add_source(name)
                    if asyncio.iscoroutine(result):
                        await result
                await conn.send(
                    {"t": "ok", "reply_to": seq, "created": created}
                )
            else:
                raise ProtocolError(
                    f"unknown frame type {kind!r}", code="unknown_type"
                )
        except (
            _BadRequest,
            KeyError,
            ValueError,
            TypeError,
            AttributeError,
            RuntimeError,
        ) as exc:
            # Includes mistyped payloads (float() of a list, a string
            # where the qos object belongs): reply and keep serving
            # rather than tearing down every subscription on the socket.
            message = str(exc) or repr(exc)
            await conn.send(
                {
                    "t": "error",
                    "reply_to": seq,
                    "code": "bad_request",
                    "message": message,
                }
            )

    def _open_traces(self, frame: dict, source: str, items) -> None:
        """Open traces for sampled tuples before they reach the broker.

        The bag entry carries any ``(stage, ns)`` pairs accumulated by
        upstream hops (client, router) off the wire frame; the broker
        closes the ``ingest_recv`` stage at admission.
        """
        tele = self.telemetry
        if tele is None or not tele.tracer.enabled:
            return
        sampled = [
            item for item in items if tele.tracer.sampled(source, item.seq)
        ]
        if not sampled:
            return
        carried = traces_from_wire(frame)
        recv_ns = time.perf_counter_ns()
        for item in sampled:
            tele.bag.begin(
                (source, item.seq), recv_ns, carried.get(item.seq)
            )

    async def _send_source_state(
        self, conn: _Connection, seq, name: str, *, destructive: bool
    ) -> None:
        """Reply with a source's portable epoch state; journal chunked.

        ``export_source`` detaches the source (migration);
        ``snapshot_source`` copies it non-destructively (standby
        arming).  Either way the reply carries the state minus the
        journal (which can exceed one frame); the caller streams it
        with ``export_pull`` until ``done``, freeing the stash.
        """
        if destructive:
            state = await self.service.export_source(name)
        else:
            state = await self.service.snapshot_source(name)
        entries = [
            ["o", tuple_to_wire(entry[1])]
            if entry[0] == "o"
            else ["t", entry[1]]
            for entry in state.pop("journal")
        ]
        if entries:
            self._export_stash[name] = entries
        state["journal_len"] = len(entries)
        state["subscriptions"] = [list(sub) for sub in state["subscriptions"]]
        await conn.send({"t": "ok", "reply_to": seq, "state": state})

    async def _on_import_commit(
        self, conn: _Connection, frame: dict, seq
    ) -> None:
        name = _field(frame, "source")
        entries = self._import_stash.pop(name, [])
        journal = [
            ("o", tuple_from_wire(entry[1]))
            if entry[0] == "o"
            else ("t", float(entry[1]))
            for entry in entries
        ]
        replayed = await self.service.import_source(
            name,
            {
                "journal": journal,
                "fed": int(frame.get("fed", 0)),
                "offered": int(frame.get("offered", 0)),
                "exact": bool(frame.get("exact", True)),
            },
            force=bool(frame.get("force", False)),
        )
        await conn.send({"t": "ok", "reply_to": seq, "replayed": replayed})

    async def _on_ingest(
        self, conn: _Connection, frame: dict, seq
    ) -> None:
        source = _field(frame, "source")
        item = tuple_from_wire(_field(frame, "tuple"))
        self._open_traces(frame, source, (item,))
        emissions = await self.service.offer(source, item)
        if seq is not None:
            await conn.send(
                {"t": "ok", "reply_to": seq, "emissions": emissions}
            )

    async def _on_ingest_batch(
        self, conn: _Connection, frame: dict, seq
    ) -> None:
        # Inline like single ingest: a block-policy stall anywhere in the
        # batch pauses this connection's read loop, so batched producers
        # inherit the same backpressure semantics.
        source = _field(frame, "source")
        items = [tuple_from_wire(t) for t in _field(frame, "tuples")]
        self._open_traces(frame, source, items)
        emissions = await self.service.offer_many(source, items)
        if seq is not None:
            await conn.send(
                {"t": "ok", "reply_to": seq, "emissions": emissions}
            )

    async def _on_subscribe(
        self, conn: _Connection, frame: dict, seq
    ) -> None:
        app = _field(frame, "app")
        spec = _field(frame, "spec")
        qos_profile = frame.get("qos")
        qos: Optional[QualitySpec] = None
        if qos_profile is not None:
            tolerance = qos_profile.get("latency_tolerance_ms")
            qos = QualitySpec(
                app_name=app,
                filter_spec=spec,
                latency_tolerance_ms=(
                    float(tolerance) if tolerance is not None else None
                ),
                priority=int(qos_profile.get("priority", 0)),
            )
        ladder = frame.get("degradation")
        degradation = None
        degradation_level = 0
        degradation_config = None
        if ladder is not None:
            # Malformed profiles raise ValueError, which _dispatch turns
            # into a bad_request reply instead of a socket teardown.
            degradation, degradation_level, degradation_config = (
                policy_from_profile(ladder, app)
            )
        session = await self.service.subscribe(
            app,
            _field(frame, "source"),
            spec,
            queue_capacity=frame.get("queue_capacity"),
            overflow=frame.get("overflow"),
            batch_max_items=frame.get("batch_max_items"),
            batch_max_delay_ms=frame.get("batch_max_delay_ms"),
            qos=qos,
            degradation=degradation,
            degradation_level=degradation_level,
            degradation_config=degradation_config,
        )
        if degradation is not None and FEATURE_QOS in conn.features:
            # Invoked synchronously under the source lock: only schedule
            # the push, never await on the listener path.
            def _push_qos(update: dict, conn=conn) -> None:
                asyncio.ensure_future(
                    conn.send_quiet({"t": "qos_update", **update})
                )

            session.qos_listener = _push_qos
        conn.sessions[app] = session
        conn.pumps[app] = asyncio.ensure_future(
            self._pump(conn, app, session)
        )
        await conn.send(
            {
                "t": "ok",
                "reply_to": seq,
                "queue_capacity": session.queue.capacity,
                "overflow": session.queue.policy,
                "batch_max_items": session.batcher.max_items,
                "batch_max_delay_ms": session.batcher.max_delay_ms,
            }
        )

    # ------------------------------------------------------------------
    # Delivery pumps
    # ------------------------------------------------------------------
    async def _pump(
        self, conn: _Connection, app: str, session: SubscriberSession
    ) -> None:
        """Forward one session's delivered batches onto the socket.

        ``conn.send`` awaits ``drain()``: a remote reader that stops
        consuming eventually stalls this pump, the session queue fills,
        and the overflow policy takes over — the socket inherits the
        broker's backpressure semantics.
        """
        oversized = False
        shared = self.fanout == FANOUT_SHARED
        tele = self.telemetry
        try:
            async for batch in session.batches():
                wire_traces = None
                write_start_ns = 0
                if tele is not None:
                    notes = session.pop_traces(batch)
                    if notes is not None:
                        enqueue_ns, tmap = notes
                        now_ns = time.perf_counter_ns()
                        qdur = now_ns - enqueue_ns
                        tele.observe_stage(STAGE_SESSION_QUEUE, qdur)
                        for pairs in tmap.values():
                            pairs.append((_SID_SESSION_QUEUE, qdur))
                        if FEATURE_TRACE in conn.features:
                            wire_traces = tmap
                        write_start_ns = now_ns
                try:
                    await conn.send_decided(
                        app, batch, shared=shared, traces=wire_traces
                    )
                    if write_start_ns:
                        # Encode + write + drain for the whole decided
                        # frame; measured after the fact, so this stage is
                        # histogram-only (never rides the wire).
                        tele.observe_stage(
                            STAGE_SOCKET_WRITE,
                            time.perf_counter_ns() - write_start_ns,
                        )
                except ProtocolError:
                    # The batch encodes past max_frame_bytes and cannot
                    # be delivered whole; end the subscription honestly
                    # rather than dropping it silently (or dying and
                    # leaving a full queue to wedge the broker).
                    oversized = True
                    break
        except (ConnectionError, RuntimeError):
            # Socket died mid-delivery; the handler's teardown reclaims
            # the subscription (and the broker re-counts the loss).
            return
        # The subscription is over (unsubscribe, shutdown, overflow or an
        # oversized batch below): forget it, so a later teardown of this
        # connection cannot unsubscribe a re-registered app of the same
        # name now owned by someone else.  Guard against a re-subscribe
        # having already replaced the entries.
        if conn.sessions.get(app) is session:
            del conn.sessions[app]
        if conn.pumps.get(app) is asyncio.current_task():
            del conn.pumps[app]
        if oversized:
            # Close the queue before unsubscribing: a producer blocked on
            # this full queue holds the source lock, and waking it (its
            # put is discarded and drop-counted) is what lets the
            # unsubscribe acquire that lock.
            session.disconnected = True
            await session.queue.close()
            try:
                await self.service.unsubscribe(app)
            except (KeyError, RuntimeError):
                pass
            await conn.send_quiet(
                {"t": "closed", "app": app, "reason": "frame_too_large"}
            )
            return
        if session.disconnected:
            reason = "overflow_disconnect"
        elif self._shutting_down:
            reason = "shutdown"
        else:
            reason = "unsubscribed"
        await conn.send_quiet({"t": "closed", "app": app, "reason": reason})
        if session.disconnected:
            # The disconnect overflow policy means it: drop the socket,
            # not just the session, so the laggard notices immediately.
            conn.writer.close()

    async def _reap(self, conn: _Connection) -> None:
        """Reclaim a dead connection's subscriptions and pump tasks."""
        conn.abort()
        for app in list(conn.pumps):
            if self._shutting_down:
                continue
            try:
                await self.service.unsubscribe(app)
            except (KeyError, RuntimeError):
                # Already detached (broker-side disconnect) or the
                # service closed underneath us.
                pass
        if conn.pumps:
            await asyncio.gather(
                *conn.pumps.values(), return_exceptions=True
            )
            conn.pumps.clear()
