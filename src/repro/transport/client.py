"""Asyncio client for the dissemination gateway.

:class:`GatewayClient` speaks the :mod:`repro.transport.protocol` wire
format over one TCP connection, multiplexing request/response calls
(``ingest``, ``subscribe``, ``tick``, ``snapshot``, ...) with unsolicited
``decided`` delivery frames.  Subscriptions come back as
:class:`RemoteSubscription` objects whose :meth:`~RemoteSubscription.batches`
iterator mirrors the in-process
:meth:`~repro.service.session.SubscriberSession.batches` — the load
generator, the tests and the examples drive either side of the socket
through the same shape.

Backpressure: each subscription buffers at most ``queue_capacity``
batches client-side.  When a consumer stops draining, the read loop
blocks putting the next batch, the client stops reading the socket, the
kernel windows fill, and the *server's* session queue applies its
overflow policy — slow consumption propagates across the wire instead of
ballooning client memory.  (This also means one wedged consumer stalls
the whole connection, acks included; give independent consumers their
own connections.)
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import AsyncIterator, Mapping, Optional, Sequence, Union

from repro.core.tuples import StreamTuple
from repro.obs.telemetry import Telemetry
from repro.obs.trace import STAGE_INGEST_SEND, stage_id
from repro.qos.controller import DegradationConfig, policy_to_profile
from repro.qos.spec import DegradationPolicy, QualitySpec
from repro.service.batching import Batch
from repro.transport.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    SUPPORTED_CODECS,
    make_encoder,
)
from repro.transport.protocol import (
    FEATURE_QOS,
    FEATURE_TRACE,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    batch_from_wire,
    encode_frame,
    pack_header,
    traces_from_wire,
)

__all__ = [
    "AdaptiveIngest",
    "GatewayError",
    "RemoteSubscription",
    "GatewayClient",
]

_READ_CHUNK = 1 << 16

#: Journal entries per frame while streaming a live-migration transfer
#: (kept well under MAX_FRAME_BYTES at typical tuple widths).
_MIGRATION_CHUNK = 1024

_SID_INGEST_SEND = stage_id(STAGE_INGEST_SEND)


class AdaptiveIngest:
    """AIMD sizing of ingest batches from observed ack latency.

    A fixed ``--ingest-batch`` knob forces one batch size onto every
    broker state: too small and the per-frame overhead dominates, too
    large and a loaded broker holds the ack (and the producer's staged
    tuples) for whole scheduling quanta.  This controller replaces the
    fixed knob with the classic congestion-control shape:

    * **additive increase** — while an ack's per-tuple latency stays
      within ``backoff_ratio`` of the best per-tuple latency seen, grow
      the next batch by one tuple (up to ``max_size``);
    * **multiplicative decrease** — an ack slower than that bound halves
      the batch size (down to ``min_size``), so a broker entering
      backpressure (a ``block``-policy stall, a saturated worker) sheds
      staging latency within a few acks.

    The latency baseline inflates by ``baseline_decay`` per observation,
    so one unrepresentatively fast ack early in a run cannot poison the
    backoff threshold forever.  ``trajectory`` records every size change
    as ``(observation_index, new_size)`` — run manifests persist it so a
    sweep can show how the controller settled.
    """

    def __init__(
        self,
        max_size: int,
        *,
        min_size: int = 1,
        backoff_ratio: float = 2.0,
        baseline_decay: float = 1.02,
        trajectory_limit: int = 512,
        events=None,
    ):
        if min_size < 1:
            raise ValueError("min_size must be at least 1")
        if max_size < min_size:
            raise ValueError("max_size must be at least min_size")
        if backoff_ratio <= 1.0:
            raise ValueError("backoff_ratio must exceed 1.0")
        if baseline_decay < 1.0:
            raise ValueError("baseline_decay must be at least 1.0")
        self.min_size = min_size
        self.max_size = max_size
        self.backoff_ratio = backoff_ratio
        self.baseline_decay = baseline_decay
        self.size = min_size
        self.observations = 0
        self.backoffs = 0
        self._best_per_tuple_s: Optional[float] = None
        self._trajectory: list[tuple[int, int]] = [(0, min_size)]
        self._trajectory_limit = trajectory_limit
        #: Optional :class:`repro.obs.events.EventLog`: every size change
        #: is emitted as an ``adaptive_resize`` event.
        self._events = events

    def observe(self, batch_len: int, ack_latency_s: float) -> None:
        """Feed one acked flush; adjusts :attr:`size` for the next one."""
        if batch_len < 1 or ack_latency_s < 0.0:
            return
        self.observations += 1
        per_tuple = ack_latency_s / batch_len
        best = self._best_per_tuple_s
        if best is None:
            best = per_tuple
        else:
            best = min(best * self.baseline_decay, per_tuple)
        self._best_per_tuple_s = best
        previous = self.size
        if per_tuple > self.backoff_ratio * best:
            self.size = max(self.min_size, self.size // 2)
            self.backoffs += 1
        else:
            self.size = min(self.max_size, self.size + 1)
        if self.size != previous:
            if len(self._trajectory) < self._trajectory_limit:
                self._trajectory.append((self.observations, self.size))
            if self._events is not None:
                self._events.emit(
                    "adaptive_resize",
                    observation=self.observations,
                    size=self.size,
                    previous=previous,
                )

    @property
    def trajectory(self) -> list[tuple[int, int]]:
        """Size changes as ``(observation_index, new_size)`` pairs."""
        return list(self._trajectory)


class GatewayError(Exception):
    """An ``error`` frame from the server, surfaced to the caller."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class RemoteSubscription:
    """Client-side view of one app's subscription on the gateway."""

    def __init__(self, app: str, source: str, spec: str, capacity: int = 0):
        self.app = app
        self.source = source
        self.spec = spec
        #: Why the server closed this subscription (None while live).
        self.closed_reason: Optional[str] = None
        #: Server-resolved session bounds echoed by the subscribe reply
        #: (queue_capacity / overflow / batch_max_items /
        #: batch_max_delay_ms); the cluster router re-subscribes crashed
        #: workers' sessions with exactly these.
        self.resolved: dict = {}
        #: ``capacity=0`` means unbounded — used for the one-round-trip
        #: window before the server echoes the resolved queue bound.
        self._queue: asyncio.Queue[Optional[Batch]] = asyncio.Queue(
            maxsize=max(0, capacity)
        )
        #: Space signal for the (single-producer) read loop: set whenever
        #: the consumer pops or the stream ends, so a push blocked on a
        #: full buffer can always be released by :meth:`close_local` —
        #: ``asyncio.Queue`` alone has no close, and a putter parked on
        #: a queue whose consumer is gone would wait forever.
        self._space = asyncio.Event()
        #: Set when the client has removed this subscription from its
        #: registry (server ``closed`` frame or connection death) — a
        #: re-subscribe of the same app waits on it so a late ``closed``
        #: frame lands on this object, never on the replacement.
        self._removed = asyncio.Event()
        self._ended = False
        #: Sampled per-tuple stage traces off decided frames, keyed by
        #: tuple seq: ``{seq: [(stage_id, dur_ns), ...]}``.  Bounded
        #: (oldest evicted); the load generator reads this after a run to
        #: build its per-stage latency summary.
        self.stage_traces: dict[int, list] = {}
        self._trace_noted_ns: dict[int, int] = {}
        self._stage_traces_max = 4096
        #: Server-driven degradation state: the active level (updated by
        #: ``qos_update`` frames), every update received (in order), and
        #: an optional synchronous callback invoked per update — the
        #: cluster router uses it to forward worker-side transitions to
        #: the end subscriber.
        self.degradation_level: int = 0
        self.qos_updates: list[dict] = []
        self.on_qos_update = None

    def _note_traces(self, traces: dict) -> None:
        """Fold one decided frame's trace map into the bounded store."""
        store = self.stage_traces
        noted = self._trace_noted_ns
        now_ns = time.perf_counter_ns()
        for seq, pairs in traces.items():
            while len(store) >= self._stage_traces_max and seq not in store:
                evicted = next(iter(store))
                del store[evicted]
                noted.pop(evicted, None)
            store[seq] = pairs
            noted[seq] = now_ns

    def claim_trace(self, seq: int):
        """Remove and return ``(pairs, noted_ns)`` for one tuple.

        ``noted_ns`` is the local ``perf_counter_ns`` at which the
        decided frame carrying the trace was decoded — the cluster
        router uses it to measure its reassembly stage.
        """
        pairs = self.stage_traces.pop(seq, None)
        if pairs is None:
            return None
        return pairs, self._trace_noted_ns.pop(seq, 0)

    def _resize(self, capacity: int) -> None:
        """Adopt the server-resolved bound without dropping anything.

        Batches the read loop buffered before the subscribe reply
        arrived (they can share one TCP read with the ``ok``) transfer
        into the new queue; the bound stretches to hold them all.
        """
        buffered: list[Optional[Batch]] = []
        while True:
            try:
                buffered.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        self._queue = asyncio.Queue(
            maxsize=max(1, capacity, len(buffered))
        )
        for item in buffered:
            self._queue.put_nowait(item)
        # A push blocked against the old bound re-reads self._queue on
        # its next attempt.
        self._space.set()

    @property
    def buffered(self) -> int:
        """Client-side batches waiting for the consumer."""
        return self._queue.qsize()

    def close_local(self, reason: str) -> None:
        """End the stream from this side (no wire traffic).

        The cluster router uses this to dismiss a worker subscription it
        no longer wants (shutdown wedge-breaking, lost workers) without
        waiting for a ``closed`` frame that may never come.
        """
        self._close(reason)

    def __aiter__(self) -> AsyncIterator[Batch]:
        return self.batches()

    async def batches(self) -> AsyncIterator[Batch]:
        """Yield delivered batches until the server closes the stream."""
        while True:
            batch = await self._queue.get()
            self._space.set()
            if batch is None:
                return
            yield batch

    async def items(self) -> AsyncIterator[StreamTuple]:
        async for batch in self.batches():
            for item in batch.items:
                yield item

    # -- read-loop side -------------------------------------------------
    async def _push(self, batch: Batch) -> None:
        """Buffer one delivered batch, blocking while the consumer lags.

        The blocking wait is interruptible by :meth:`close_local` via
        the space event, so a subscription dismissed while its buffer is
        full (router shutdown, lost worker) releases the read loop
        instead of wedging the whole connection behind a consumer that
        will never pop again.
        """
        while not self._ended:
            try:
                self._queue.put_nowait(batch)
                return
            except asyncio.QueueFull:
                self._space.clear()
                await self._space.wait()

    def _close(self, reason: str) -> None:
        """End the stream without ever blocking (teardown paths).

        If the consumer lagged a full window behind, the oldest buffered
        batch is evicted to guarantee the end-of-stream sentinel lands —
        a closing subscription prefers terminating its consumer over
        preserving a tail the consumer stopped reading.
        """
        if self._ended:
            return
        self._ended = True
        self.closed_reason = reason
        # Release a read loop blocked on a full buffer (it re-checks
        # _ended and drops the batch).
        self._space.set()
        while True:
            try:
                self._queue.put_nowait(None)
                return
            except asyncio.QueueFull:
                try:
                    self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass


class GatewayClient:
    """One authenticated gateway connection (use :meth:`connect`)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        telemetry: Optional[Telemetry] = None,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame_bytes = max_frame_bytes
        #: Optional telemetry bundle: enables the trace feature offer,
        #: client-side ``ingest_send`` stage measurement, and local stage
        #: histograms.
        self.telemetry = telemetry
        #: Features confirmed by the server's welcome (empty for v1).
        self.features: list[str] = []
        self._seq = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._subscriptions: dict[str, RemoteSubscription] = {}
        self._read_task: Optional[asyncio.Task] = None
        self._closed = False
        #: Set once the read loop ends; requests after that would wait
        #: forever on a reply nobody can deliver.
        self._dead_reason: Optional[str] = None
        #: Populated from the server's welcome frame.
        self.server_sources: tuple[str, ...] = ()
        #: Negotiated body codec ("json" until the welcome upgrades it).
        self.codec: str = CODEC_JSON
        self._encoder = make_encoder(CODEC_JSON)

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        token: Optional[str] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        codec: str = CODEC_BINARY,
        telemetry: Optional[Telemetry] = None,
    ) -> "GatewayClient":
        """Open and authenticate one gateway connection.

        ``codec`` is the *preferred* body codec.  The hello offers it
        (with JSON as the standing fallback) and the server's welcome
        confirms the choice; an old server that names no codec leaves
        the connection on plain JSON, transparently.
        """
        if codec not in SUPPORTED_CODECS:
            raise ValueError(
                f"unknown codec {codec!r}; expected one of {SUPPORTED_CODECS}"
            )
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(
            reader, writer, max_frame_bytes=max_frame_bytes, telemetry=telemetry
        )
        client._read_task = asyncio.ensure_future(client._read_loop())
        offered = [codec] if codec == CODEC_JSON else [codec, CODEC_JSON]
        hello: dict = {"t": "hello", "v": PROTOCOL_VERSION, "codecs": offered}
        # qos (server-pushed degradation updates) costs nothing to
        # receive, so it is always offered; trace only makes sense with
        # a telemetry bundle to record into.
        features = [FEATURE_QOS]
        if telemetry is not None:
            features.insert(0, FEATURE_TRACE)
        hello["features"] = features
        if token is not None:
            hello["token"] = token
        try:
            welcome = await client._request(hello)
        except BaseException:
            await client.close(send_bye=False)
            raise
        client.server_sources = tuple(welcome.get("sources", ()))
        chosen = welcome.get("codec", CODEC_JSON)
        if chosen not in SUPPORTED_CODECS:
            chosen = CODEC_JSON
        client.codec = chosen
        client._encoder = make_encoder(chosen)
        confirmed = welcome.get("features")
        if isinstance(confirmed, list):
            client.features = [f for f in confirmed if isinstance(f, str)]
        return client

    async def close(self, *, send_bye: bool = True) -> None:
        """Tear the connection down; live subscriptions end locally."""
        if self._closed:
            return
        self._closed = True
        if send_bye:
            try:
                self._write({"t": "bye"})
                await self._writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        self._writer.close()
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, ConnectionError):
                pass
        self._fail_all("connection_closed")
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _write(self, frame: Mapping) -> None:
        self._writer.write(
            encode_frame(frame, max_frame_bytes=self._max_frame_bytes)
        )

    def _write_body(self, body: bytes) -> None:
        """Write one pre-encoded frame body (codec hot paths)."""
        if len(body) > self._max_frame_bytes:
            raise FrameTooLarge(len(body), self._max_frame_bytes)
        self._writer.write(pack_header(len(body)) + body)

    def _trace_start(self, source: str, seq: int) -> int:
        """``perf_counter_ns`` at ingest entry when ``seq`` is sampled
        and the trace feature was negotiated; 0 otherwise."""
        tele = self.telemetry
        if (
            tele is None
            or not tele.tracer.enabled
            or FEATURE_TRACE not in self.features
            or not tele.tracer.sampled(source, seq)
        ):
            return 0
        return time.perf_counter_ns()

    def _send_trace(self, start_ns: int):
        """Close the client-side ``ingest_send`` stage for one tuple."""
        if not start_ns:
            return None
        dur = time.perf_counter_ns() - start_ns
        self.telemetry.observe_stage(STAGE_INGEST_SEND, dur)
        return [(_SID_INGEST_SEND, dur)]

    def _send_traces(self, start_ns: int, seqs: list):
        """Same, shared across every sampled tuple of one batch frame."""
        if not start_ns or not seqs:
            return None
        dur = time.perf_counter_ns() - start_ns
        self.telemetry.observe_stage(STAGE_INGEST_SEND, dur)
        return {seq: [(_SID_INGEST_SEND, dur)] for seq in seqs}

    def _check_alive(self) -> None:
        if self._closed:
            raise ConnectionError("gateway client is closed")
        if self._dead_reason is not None:
            raise ConnectionError(
                f"gateway connection closed ({self._dead_reason})"
            )

    async def _request(self, frame: dict) -> dict:
        def write(seq: int) -> None:
            frame["seq"] = seq
            self._write(frame)

        return await self._roundtrip(write)

    async def _roundtrip(self, write) -> dict:
        """Allocate a request seq, write via ``write(seq)``, await reply."""
        self._check_alive()
        seq = next(self._seq)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        try:
            write(seq)
            await self._writer.drain()
            reply = await future
        finally:
            self._pending.pop(seq, None)
        if reply.get("t") == "error":
            raise GatewayError(
                reply.get("code", "unknown"), reply.get("message", "")
            )
        return reply

    async def ensure_source(self, source: str) -> bool:
        """Register ``source`` on the broker if absent; True if created."""
        reply = await self._request({"t": "ensure_source", "source": source})
        return bool(reply.get("created"))

    async def ingest(
        self,
        source: str,
        item: StreamTuple,
        *,
        ack: bool = True,
        pad_bytes: int = 0,
        adapt: Optional[AdaptiveIngest] = None,
        trace: Optional[list] = None,
    ) -> Optional[int]:
        """Offer one tuple to the broker across the wire.

        With ``ack=True`` (default) the call resolves when the broker has
        *processed* the tuple and returns the emission count — the same
        completion semantics as the in-process ``offer``.  ``ack=False``
        is fire-and-forget (the frame is written and drained, nothing
        more).  ``pad_bytes`` attaches throwaway payload so the wire
        frame approximates a configured tuple size.  The frame body uses
        the negotiated codec.  ``adapt`` feeds the measured ack latency
        to an :class:`AdaptiveIngest` controller (acked sends only).
        ``trace`` attaches explicit ``(stage_id, dur_ns)`` pairs instead
        of the client-measured ``ingest_send`` stage — the cluster
        router uses it to forward a trace carried from the producer.
        """
        encoder = self._encoder
        limit = self._max_frame_bytes
        trace_start_ns = 0 if trace is not None else self._trace_start(
            source, item.seq
        )
        if ack:
            started = time.perf_counter() if adapt is not None else 0.0
            reply = await self._roundtrip(
                lambda seq: self._write_body(
                    encoder.ingest_body(
                        source,
                        item,
                        seq=seq,
                        pad_bytes=pad_bytes,
                        max_frame_bytes=limit,
                        trace=(trace if trace is not None
                               else self._send_trace(trace_start_ns)),
                    )
                )
            )
            if adapt is not None:
                adapt.observe(1, time.perf_counter() - started)
            return reply.get("emissions")
        self._check_alive()
        self._write_body(
            encoder.ingest_body(
                source,
                item,
                pad_bytes=pad_bytes,
                max_frame_bytes=limit,
                trace=(trace if trace is not None
                       else self._send_trace(trace_start_ns)),
            )
        )
        await self._writer.drain()
        return None

    async def ingest_many(
        self,
        source: str,
        items: Sequence[StreamTuple],
        *,
        ack: bool = True,
        pad_bytes: int = 0,
        adapt: Optional[AdaptiveIngest] = None,
        traces: Optional[dict] = None,
    ) -> Optional[int]:
        """Offer many tuples in one ``ingest_batch`` frame.

        One frame, one (optional) ack, one broker lock acquisition for
        the whole batch — the per-tuple wire and scheduling overhead is
        amortized across ``len(items)``.  Returns the summed emission
        count when ``ack=True``.  ``adapt`` feeds the measured ack
        latency to an :class:`AdaptiveIngest` controller so the *next*
        batch is sized from how this one fared.  ``traces`` attaches an
        explicit ``{seq: pairs}`` trace map (cluster forward path)
        instead of the client-measured ``ingest_send`` stage.
        """
        if not items:
            return 0 if ack else None
        encoder = self._encoder
        limit = self._max_frame_bytes
        sampled_seqs: list[int] = []
        trace_start_ns = 0
        tele = self.telemetry
        if (
            traces is None
            and tele is not None
            and tele.tracer.enabled
            and FEATURE_TRACE in self.features
        ):
            sampled_seqs = [
                item.seq
                for item in items
                if tele.tracer.sampled(source, item.seq)
            ]
            if sampled_seqs:
                trace_start_ns = time.perf_counter_ns()
        if ack:
            started = time.perf_counter() if adapt is not None else 0.0
            reply = await self._roundtrip(
                lambda seq: self._write_body(
                    encoder.ingest_batch_body(
                        source,
                        items,
                        seq=seq,
                        pad_bytes=pad_bytes,
                        max_frame_bytes=limit,
                        traces=(traces if traces is not None
                                else self._send_traces(
                                    trace_start_ns, sampled_seqs)),
                    )
                )
            )
            if adapt is not None:
                adapt.observe(len(items), time.perf_counter() - started)
            return reply.get("emissions")
        self._check_alive()
        self._write_body(
            encoder.ingest_batch_body(
                source,
                items,
                pad_bytes=pad_bytes,
                max_frame_bytes=limit,
                traces=(traces if traces is not None
                        else self._send_traces(trace_start_ns, sampled_seqs)),
            )
        )
        await self._writer.drain()
        return None

    async def tick(self, now_ms: float) -> int:
        """Advance the broker's timer (timely cuts, latency flushes)."""
        reply = await self._request({"t": "tick", "now_ms": now_ms})
        return int(reply.get("emissions", 0))

    async def snapshot(self, *, window: bool = False) -> dict:
        """The live service snapshot as a plain dict.

        ``window=True`` asks the server to attach its raw decide-latency
        sliding window (``decide_window_ms``) so a front-tier router can
        merge several workers' windows into one honest percentile.
        """
        frame: dict = {"t": "snapshot"}
        if window:
            frame["window"] = True
        reply = await self._request(frame)
        return reply["snapshot"]

    async def export_source(self, source: str) -> dict:
        """Detach ``source`` on the server; returns its portable state.

        The epoch journal can exceed one frame, so it streams back in
        ``export_pull`` chunks; the returned state's ``journal`` holds
        wire-format entries ready to feed :meth:`import_source` on
        another gateway unchanged.
        """
        reply = await self._request({"t": "export_source", "source": source})
        return await self._pull_source_state(source, reply)

    async def snapshot_source(self, source: str) -> dict:
        """Copy ``source``'s portable epoch state without detaching it.

        The non-destructive sibling of :meth:`export_source` — used to
        arm a warm standby from a serving primary.
        """
        reply = await self._request(
            {"t": "snapshot_source", "source": source}
        )
        return await self._pull_source_state(source, reply)

    async def _pull_source_state(self, source: str, reply: dict) -> dict:
        state = dict(reply["state"])
        total = int(state.pop("journal_len", 0))
        journal: list = []
        while len(journal) < total:
            pull = await self._request(
                {
                    "t": "export_pull",
                    "source": source,
                    "offset": len(journal),
                    "count": _MIGRATION_CHUNK,
                }
            )
            entries = list(pull.get("entries") or ())
            journal.extend(entries)
            if pull.get("done") or not entries:
                break
        state["journal"] = journal
        return state

    async def import_source(
        self, source: str, state: dict, *, force: bool = False
    ) -> int:
        """Stream an exported source's epoch into this gateway's broker.

        ``source`` must already exist on the target with the migrated
        subscriptions re-attached in their original order; returns the
        number of journal entries replayed.
        """
        journal = list(state.get("journal") or ())
        await self._request({"t": "import_begin", "source": source})
        for start in range(0, len(journal), _MIGRATION_CHUNK):
            await self._request(
                {
                    "t": "import_chunk",
                    "source": source,
                    "entries": journal[start : start + _MIGRATION_CHUNK],
                }
            )
        reply = await self._request(
            {
                "t": "import_commit",
                "source": source,
                "fed": int(state.get("fed", 0)),
                "offered": int(state.get("offered", 0)),
                "exact": bool(state.get("exact", True)),
                "force": force,
            }
        )
        return int(reply.get("replayed", 0))

    async def subscribe(
        self,
        app: str,
        source: str,
        spec: str,
        *,
        qos: Union[QualitySpec, Mapping, None] = None,
        degradation: Union[DegradationPolicy, Mapping, None] = None,
        degradation_level: int = 0,
        degradation_config: Optional[DegradationConfig] = None,
        queue_capacity: Optional[int] = None,
        overflow: Optional[str] = None,
        batch_max_items: Optional[int] = None,
        batch_max_delay_ms: Optional[float] = None,
    ) -> RemoteSubscription:
        """Attach a subscriber; decided batches flow back on this socket.

        ``qos`` carries the application's quality profile to the broker
        (``latency_tolerance_ms`` / ``priority`` — see
        :func:`repro.qos.spec.session_limits`); the explicit keyword
        bounds override whatever the profile resolves to.

        ``degradation`` hands the server a whole fallback ladder (a
        :class:`~repro.qos.spec.DegradationPolicy` or an already-built
        wire profile): under overload the server steps this session down
        the ladder instead of dropping or disconnecting it, announcing
        each transition with a ``qos_update`` frame (reflected in the
        returned subscription's ``degradation_level`` / ``qos_updates``
        and its ``on_qos_update`` callback).  ``spec`` must equal the
        active level's filter spec.
        """
        existing = self._subscriptions.get(app)
        if existing is not None:
            if not existing._ended:
                raise ValueError(f"app {app!r} is already subscribed here")
            # The old subscription ended, but the server's `closed`
            # frame may still be in flight (its pump writes and its
            # request replies are ordered independently — an
            # unsubscribe ack can overtake the closed frame).  Wait for
            # the slot to clear so the late frame cannot close the
            # replacement; a locally-closed stream whose frame never
            # comes costs this wait exactly once, then the slot is
            # reclaimed for good.
            try:
                await asyncio.wait_for(existing._removed.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                pass
            if self._subscriptions.get(app) is existing:
                del self._subscriptions[app]
                existing._removed.set()
        frame: dict = {
            "t": "subscribe",
            "app": app,
            "source": source,
            "spec": spec,
        }
        if qos is not None:
            if isinstance(qos, QualitySpec):
                profile: dict = {
                    "latency_tolerance_ms": qos.latency_tolerance_ms,
                    "priority": qos.priority,
                }
            else:
                profile = dict(qos)
            frame["qos"] = profile
        if degradation is not None:
            if isinstance(degradation, DegradationPolicy):
                ladder = policy_to_profile(
                    degradation,
                    level=degradation_level,
                    config=degradation_config,
                )
            else:
                ladder = dict(degradation)
                if degradation_level:
                    ladder["level"] = degradation_level
            frame["degradation"] = ladder
        for key, value in (
            ("queue_capacity", queue_capacity),
            ("overflow", overflow),
            ("batch_max_items", batch_max_items),
            ("batch_max_delay_ms", batch_max_delay_ms),
        ):
            if value is not None:
                frame[key] = value
        # Register before the request: the first decided frame can be on
        # the wire the moment the server replies ok.  Without an explicit
        # capacity the queue starts unbounded for the one round trip
        # until the server echoes the resolved bound.
        subscription = RemoteSubscription(
            app, source, spec, capacity=queue_capacity or 0
        )
        if degradation is not None:
            subscription.degradation_level = int(
                frame["degradation"].get("level", 0)
            )
        self._subscriptions[app] = subscription
        try:
            reply = await self._request(frame)
        except BaseException:
            self._subscriptions.pop(app, None)
            raise
        # The server echoes the resolved bounds; mirror the capacity so
        # client-side buffering matches the session's queue bound, and
        # keep the full set for callers that re-subscribe elsewhere.
        subscription.resolved = {
            key: reply.get(key)
            for key in (
                "queue_capacity",
                "overflow",
                "batch_max_items",
                "batch_max_delay_ms",
            )
        }
        resolved = reply.get("queue_capacity")
        if queue_capacity is None and isinstance(resolved, int) and resolved >= 1:
            subscription._resize(resolved)
        return subscription

    async def unsubscribe(self, app: str) -> None:
        await self._request({"t": "unsubscribe", "app": app})

    async def re_filter(self, app: str, spec: str) -> None:
        await self._request({"t": "re_filter", "app": app, "spec": spec})
        if app in self._subscriptions:
            self._subscriptions[app].spec = spec

    # ------------------------------------------------------------------
    # Read loop
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        decoder = FrameDecoder(max_frame_bytes=self._max_frame_bytes)
        reason = "connection_closed"
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if frame.get("t") == "bye":
                        reason = frame.get("reason", "bye")
                        return
                    await self._on_frame(frame)
        except ProtocolError:
            reason = "protocol_error"
        except (ConnectionError, asyncio.CancelledError):
            raise
        finally:
            self._fail_all(reason)

    async def _on_frame(self, frame: dict) -> None:
        kind = frame.get("t")
        reply_to = frame.get("reply_to")
        if reply_to is not None:
            future = self._pending.get(reply_to)
            if future is not None and not future.done():
                future.set_result(frame)
            return
        if kind == "decided":
            subscription = self._subscriptions.get(frame.get("app"))
            if subscription is not None:
                if "traces" in frame:
                    subscription._note_traces(traces_from_wire(frame))
                # This put blocks when the consumer lags, intentionally
                # pausing the read loop (see the module docstring).
                await subscription._push(batch_from_wire(frame))
        elif kind == "qos_update":
            subscription = self._subscriptions.get(frame.get("app"))
            if subscription is not None:
                level = frame.get("level")
                if isinstance(level, int):
                    subscription.degradation_level = level
                spec = frame.get("spec")
                if isinstance(spec, str):
                    subscription.spec = spec
                update = {
                    key: frame.get(key)
                    for key in (
                        "app",
                        "source",
                        "action",
                        "level",
                        "spec",
                        "signal",
                        "value",
                        "threshold",
                    )
                }
                subscription.qos_updates.append(update)
                callback = subscription.on_qos_update
                if callback is not None:
                    callback(update)
        elif kind == "closed":
            subscription = self._subscriptions.pop(frame.get("app"), None)
            if subscription is not None:
                subscription._close(frame.get("reason", "closed"))
                subscription._removed.set()
        elif kind == "error":
            if "reply_to" in frame:
                # A refused fire-and-forget request (seq-less ingest/tick
                # gets an error with reply_to=null): the server kept the
                # connection; there is no future to fail and no reason to
                # kill our side either.
                return
            # Truly unsolicited server error (protocol violation
            # verdict): surface it by failing everything; the connection
            # is dead.
            raise ProtocolError(
                frame.get("message", "server error"),
                code=frame.get("code", "protocol"),
            )

    def _fail_all(self, reason: str) -> None:
        self._dead_reason = reason
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(
                    ConnectionError(f"gateway connection closed ({reason})")
                )
        self._pending.clear()
        for app in list(self._subscriptions):
            subscription = self._subscriptions.pop(app)
            subscription._close(reason)
            subscription._removed.set()
