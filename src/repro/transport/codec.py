"""Sans-io binary wire codec for the dissemination gateway.

The PR-3 wire protocol spends most of its per-tuple CPU on ``json.dumps``
/ ``json.loads``: every ingest frame re-serializes the attribute names,
and every decided batch is re-encoded once per subscriber session.  This
module removes that tax while staying protocol-compatible:

* **Self-describing bodies.**  A frame body whose first byte is ``{``
  (0x7B) is the v1 UTF-8 JSON format; any other first byte is a binary
  frame *tag*.  The :class:`~repro.transport.protocol.FrameDecoder`
  dispatches on that byte, so JSON and binary frames interleave freely
  on one connection and every control frame (hello, ok, error,
  subscribe, snapshot, ...) simply stays JSON — the transparent
  fallback.
* **Negotiated use.**  A peer may only *send* binary frames after the
  hello handshake agreed to them: the client offers ``codecs`` in its
  ``hello``, the server confirms the chosen codec in ``welcome``
  (:func:`negotiate`).  A v1 client that offers nothing gets pure JSON.
* **Interned attribute names.**  Binary tuple records carry attribute
  *ids*, not names.  Each sender owns a :class:`NameTable` assigning
  dense ids; every frame that uses an id the receiving connection has
  not seen yet prepends a ``(id, name)`` delta, so the stream is
  self-contained per connection while tuples cost ~10 bytes of names
  overhead exactly once per attribute, not once per tuple.
* **Encode-once segments.**  A tuple serializes to an immutable
  :class:`Segment` — for the binary codec a struct-packed record over
  the *shared* name table, for JSON the tuple's JSON text.  The gateway
  keeps one :class:`SegmentCache` per codec, so a tuple fanned out to N
  subscriber sessions is encoded once and the N ``decided`` frames are
  assembled from the same segment bytes by reference
  (:meth:`FrameEncoder.decided_pieces` returns a piece list for
  ``writelines``; nothing is concatenated per session).

Binary frame layouts (after the 4-byte big-endian length header)::

    varint   = unsigned LEB128
    string   = varint length + UTF-8 bytes
    f64      = little-endian IEEE-754 double
    names    = varint count, then per entry: varint id + string name
    tuple    = varint seq + f64 timestamp + varint n_attrs
               + n_attrs * (varint name_id + f64 value)

    0x01 ingest        varint req(0=none, else seq+1), string source,
                       varint pad_len + pad bytes, names, tuple
    0x02 ingest_batch  varint req, string source, varint pad_len + pad,
                       names, varint count, count * tuple
    0x03 decided       string app, f64 first_staged_ms, f64 flushed_ms,
                       names, varint count, count * tuple

When the ``trace`` feature was negotiated in the hello
(:data:`repro.transport.protocol.FEATURE_TRACE`), frames carrying
sampled stage-latency annotations use the *traced* tags — the base
layout with a trace section appended, so tuple segments stay shareable
between traced and untraced frames::

    pairs    = varint n, then n * (varint stage_id + varint dur_ns)
    tracemap = varint n, then n * (varint seq + pairs)

    0x11 ingest        0x01 layout, then pairs       (for its tuple)
    0x12 ingest_batch  0x02 layout, then tracemap
    0x13 decided       0x03 layout, then tracemap

Decoding always yields the *same dict shapes* the JSON protocol uses
(``{"t": "ingest", "source": ..., "tuple": {...}}``), so the server
dispatch, the client read loop and every test helper are codec-agnostic.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, Optional, Sequence

from repro.core.tuples import StreamTuple
from repro.service.batching import Batch
from repro.transport.protocol import FrameTooLarge, ProtocolError, tuple_to_wire

__all__ = [
    "CODEC_JSON",
    "CODEC_BINARY",
    "SUPPORTED_CODECS",
    "FANOUT_SHARED",
    "FANOUT_PER_SESSION",
    "FANOUTS",
    "negotiate",
    "NameTable",
    "Segment",
    "SegmentCache",
    "FrameEncoder",
    "JsonEncoder",
    "BinaryEncoder",
    "make_encoder",
    "decode_binary_body",
    "BinaryNames",
]

CODEC_JSON = "json"
CODEC_BINARY = "binary"

#: Codecs this implementation can send and receive.
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)

#: Fan-out strategies for decided-batch delivery (gateway knob).
FANOUT_SHARED = "shared"
FANOUT_PER_SESSION = "per_session"
FANOUTS = (FANOUT_SHARED, FANOUT_PER_SESSION)

_TAG_INGEST = 0x01
_TAG_INGEST_BATCH = 0x02
_TAG_DECIDED = 0x03
#: Traced variants: base layout + appended trace section (see docstring).
_TAG_INGEST_TRACED = 0x11
_TAG_INGEST_BATCH_TRACED = 0x12
_TAG_DECIDED_TRACED = 0x13

_F64 = struct.Struct("<d")

#: ``{seq: [(stage_id, duration_ns), ...]}`` — the normalized trace
#: annotation shape (see :func:`repro.transport.protocol.traces_from_wire`).
TraceMap = dict


def negotiate(
    offered: Optional[Sequence[str]],
    supported: Sequence[str] = SUPPORTED_CODECS,
) -> str:
    """Server-side codec choice: first offered codec the server supports.

    ``None`` or an empty offer is a v1 client — pure JSON.  An offer
    containing no supported codec also falls back to JSON (the client
    must treat an unconfirmed codec as refused).  ``supported`` lets a
    server restrict itself below :data:`SUPPORTED_CODECS` (tests use a
    JSON-only server to exercise the fallback path).
    """
    if not offered:
        return CODEC_JSON
    for name in offered:
        if name in supported and name in SUPPORTED_CODECS:
            return name
    return CODEC_JSON


# ---------------------------------------------------------------------------
# Primitives
# ---------------------------------------------------------------------------
def _put_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ProtocolError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _put_string(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _put_varint(out, len(data))
    out += data


def _put_trace_pairs(out: bytearray, pairs) -> None:
    _put_varint(out, len(pairs))
    for sid, dur_ns in pairs:
        _put_varint(out, int(sid))
        _put_varint(out, max(0, int(dur_ns)))


def _put_trace_map(out: bytearray, traces) -> None:
    _put_varint(out, len(traces))
    for seq, pairs in traces.items():
        _put_varint(out, int(seq))
        _put_trace_pairs(out, pairs)


def _traces_json(traces) -> bytes:
    """The JSON codec's ``traces`` object (string seq keys)."""
    return json.dumps(
        {
            str(seq): [[int(sid), int(ns)] for sid, ns in pairs]
            for seq, pairs in traces.items()
        },
        separators=(",", ":"),
    ).encode("ascii")


class _Reader:
    """Bounds-checked cursor over one frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def varint(self) -> int:
        result = 0
        shift = 0
        data = self.data
        while True:
            if self.pos >= len(data):
                raise ProtocolError("truncated varint in binary frame")
            byte = data[self.pos]
            self.pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ProtocolError("varint overflow in binary frame")

    def f64(self) -> float:
        end = self.pos + 8
        if end > len(self.data):
            raise ProtocolError("truncated float in binary frame")
        (value,) = _F64.unpack_from(self.data, self.pos)
        self.pos = end
        return value

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ProtocolError("truncated bytes in binary frame")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def string(self) -> str:
        length = self.varint()
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable string in binary frame: {exc}") from exc

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


# ---------------------------------------------------------------------------
# Name interning
# ---------------------------------------------------------------------------
class NameTable:
    """Sender-owned attribute-name interning (dense ids, append-only).

    One table may be shared by every connection of a gateway: segments
    reference the shared ids, while each connection separately tracks
    which ids it has already announced (see
    :meth:`BinaryEncoder.decided_pieces`).
    """

    __slots__ = ("_id_of", "_names")

    def __init__(self) -> None:
        self._id_of: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, name: str) -> int:
        nid = self._id_of.get(name)
        if nid is None:
            nid = len(self._names)
            self._id_of[name] = nid
            self._names.append(name)
        return nid

    def name_at(self, nid: int) -> str:
        return self._names[nid]

    def __len__(self) -> int:
        return len(self._names)


class BinaryNames:
    """Receiver-side id -> name table, learned from frame deltas."""

    __slots__ = ("_names",)

    def __init__(self) -> None:
        self._names: dict[int, str] = {}

    def learn(self, nid: int, name: str) -> None:
        self._names[nid] = name

    def resolve(self, nid: int) -> str:
        try:
            return self._names[nid]
        except KeyError:
            raise ProtocolError(
                f"binary frame references unannounced attribute id {nid}"
            ) from None


# ---------------------------------------------------------------------------
# Segments (encode-once tuples)
# ---------------------------------------------------------------------------
class Segment:
    """One tuple, encoded once, shareable across frames by reference."""

    __slots__ = ("data", "name_ids")

    def __init__(self, data: bytes, name_ids: tuple[int, ...] = ()):
        self.data = data
        #: Shared-table attribute ids the segment references (binary only).
        self.name_ids = name_ids

    def __len__(self) -> int:
        return len(self.data)


class SegmentCache:
    """Bounded LRU of per-tuple segments, keyed by tuple object identity.

    ``StreamTuple`` equality is seq-only, and two *sources* may reuse the
    same seq — so the cache keys on ``id(item)`` and pins the tuple
    itself in the entry (preventing id reuse while the entry lives).
    The broker routes one emission object to every recipient session, so
    fan-out to N subscribers is N-1 cache hits.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        #: id(item) -> (item, segment); dict order is the LRU order.
        self._entries: dict[int, tuple[StreamTuple, Segment]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, item: StreamTuple) -> Optional[Segment]:
        key = id(item)
        entry = self._entries.get(key)
        if entry is None or entry[0] is not item:
            self.misses += 1
            return None
        self.hits += 1
        # Refresh LRU position.
        del self._entries[key]
        self._entries[key] = entry
        return entry[1]

    def put(self, item: StreamTuple, segment: Segment) -> None:
        entries = self._entries
        key = id(item)
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]
        entries[key] = (item, segment)

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Encoders
# ---------------------------------------------------------------------------
class FrameEncoder:
    """Per-connection sending side of one negotiated codec.

    Subclasses provide the three hot-path encodings (single ingest,
    batched ingest, decided fan-out); everything else goes through
    :func:`repro.transport.protocol.encode_frame` as plain JSON.
    ``decided_pieces`` returns ``(pieces, total_bytes)`` where ``pieces``
    is ready for ``StreamWriter.writelines`` — callers prepend the
    4-byte length header and never join the pieces.
    """

    codec = CODEC_JSON

    def ingest_body(
        self,
        source: str,
        item: StreamTuple,
        *,
        seq: Optional[int] = None,
        pad_bytes: int = 0,
        max_frame_bytes: Optional[int] = None,
        trace: Optional[list] = None,
    ) -> bytes:
        raise NotImplementedError

    def ingest_batch_body(
        self,
        source: str,
        items: Sequence[StreamTuple],
        *,
        seq: Optional[int] = None,
        pad_bytes: int = 0,
        max_frame_bytes: Optional[int] = None,
        traces: Optional[TraceMap] = None,
    ) -> bytes:
        raise NotImplementedError

    def decided_pieces(
        self,
        app: str,
        batch: Batch,
        *,
        max_frame_bytes: int,
        shared: bool = True,
        traces: Optional[TraceMap] = None,
    ) -> tuple[list[bytes], int]:
        raise NotImplementedError


class JsonEncoder(FrameEncoder):
    """The v1 JSON format, with encode-once segment assembly for fan-out."""

    codec = CODEC_JSON

    def __init__(self, cache: Optional[SegmentCache] = None):
        self._cache = cache if cache is not None else SegmentCache()

    # -- segments -------------------------------------------------------
    def tuple_segment(self, item: StreamTuple) -> Segment:
        segment = self._cache.get(item)
        if segment is None:
            segment = Segment(
                json.dumps(
                    tuple_to_wire(item), separators=(",", ":")
                ).encode("utf-8")
            )
            self._cache.put(item, segment)
        return segment

    # -- hot paths ------------------------------------------------------
    def ingest_body(
        self,
        source,
        item,
        *,
        seq=None,
        pad_bytes=0,
        max_frame_bytes=None,
        trace=None,
    ):
        frame: dict = {
            "t": "ingest",
            "source": source,
            "tuple": tuple_to_wire(item),
        }
        if seq is not None:
            frame["seq"] = seq
        if pad_bytes > 0:
            frame["pad"] = "x" * pad_bytes
        if trace:
            frame["trace"] = [[int(sid), int(ns)] for sid, ns in trace]
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if max_frame_bytes is not None and len(body) > max_frame_bytes:
            raise FrameTooLarge(len(body), max_frame_bytes)
        return body

    def ingest_batch_body(
        self,
        source,
        items,
        *,
        seq=None,
        pad_bytes=0,
        max_frame_bytes=None,
        traces=None,
    ):
        frame: dict = {
            "t": "ingest_batch",
            "source": source,
            "tuples": [tuple_to_wire(item) for item in items],
        }
        if seq is not None:
            frame["seq"] = seq
        if pad_bytes > 0:
            frame["pad"] = "x" * pad_bytes
        if traces:
            frame["traces"] = {
                str(seq_): [[int(sid), int(ns)] for sid, ns in pairs]
                for seq_, pairs in traces.items()
            }
        body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
        if max_frame_bytes is not None and len(body) > max_frame_bytes:
            raise FrameTooLarge(len(body), max_frame_bytes)
        return body

    def decided_pieces(
        self, app, batch, *, max_frame_bytes, shared=True, traces=None
    ):
        prefix = (
            b'{"t":"decided","app":'
            + json.dumps(app).encode("utf-8")
            + b',"first_staged_ms":'
            + repr(float(batch.first_staged_ms)).encode("ascii")
            + b',"flushed_ms":'
            + repr(float(batch.flushed_ms)).encode("ascii")
            + b',"items":['
        )
        pieces: list[bytes] = [prefix]
        total = len(prefix)
        if shared:
            segments = [self.tuple_segment(item) for item in batch.items]
        else:
            # The PR-3 per-session baseline: re-serialize every tuple for
            # every subscriber (kept for A/B benchmarking).
            segments = [
                Segment(
                    json.dumps(
                        tuple_to_wire(item), separators=(",", ":")
                    ).encode("utf-8")
                )
                for item in batch.items
            ]
        for index, segment in enumerate(segments):
            if index:
                pieces.append(b",")
                total += 1
            pieces.append(segment.data)
            total += len(segment.data)
        if traces:
            tail = b'],"traces":' + _traces_json(traces) + b"}"
        else:
            tail = b"]}"
        pieces.append(tail)
        total += len(tail)
        if total > max_frame_bytes:
            raise FrameTooLarge(total, max_frame_bytes)
        return pieces, total


class BinaryEncoder(FrameEncoder):
    """Struct-packed hot frames over a (possibly shared) name table."""

    codec = CODEC_BINARY

    def __init__(
        self,
        table: Optional[NameTable] = None,
        cache: Optional[SegmentCache] = None,
    ):
        self._table = table if table is not None else NameTable()
        self._cache = cache if cache is not None else SegmentCache()
        #: Shared-table ids this connection's peer has been told about.
        self._announced: set[int] = set()

    # -- segments -------------------------------------------------------
    def tuple_segment(self, item: StreamTuple) -> Segment:
        segment = self._cache.get(item)
        if segment is None:
            out = bytearray()
            ids = self._encode_tuple(out, item)
            segment = Segment(bytes(out), ids)
            self._cache.put(item, segment)
        return segment

    def _encode_tuple(self, out: bytearray, item: StreamTuple) -> tuple[int, ...]:
        _put_varint(out, item.seq)
        out += _F64.pack(item.timestamp)
        values = item.values
        _put_varint(out, len(values))
        ids = []
        intern = self._table.intern
        pack = _F64.pack
        for name, value in values.items():
            nid = intern(name)
            ids.append(nid)
            _put_varint(out, nid)
            out += pack(value)
        return tuple(ids)

    def _names_delta(self, out: bytearray, used_ids: Iterable[int]) -> set[int]:
        """Append the delta section for any not-yet-announced ids.

        Returns the new ids *without* committing them to ``_announced`` —
        the caller commits only once the frame passed the size check, so
        a refused oversized frame cannot leave the peer's table behind.
        """
        fresh = {nid for nid in used_ids if nid not in self._announced}
        _put_varint(out, len(fresh))
        for nid in sorted(fresh):
            _put_varint(out, nid)
            _put_string(out, self._table.name_at(nid))
        return fresh

    # -- hot paths ------------------------------------------------------
    def ingest_body(
        self,
        source,
        item,
        *,
        seq=None,
        pad_bytes=0,
        max_frame_bytes=None,
        trace=None,
    ):
        head = bytearray([_TAG_INGEST_TRACED if trace else _TAG_INGEST])
        _put_varint(head, 0 if seq is None else seq + 1)
        _put_string(head, source)
        _put_varint(head, max(0, pad_bytes))
        head += b"\x00" * max(0, pad_bytes)
        body = bytearray()
        ids = self._encode_tuple(body, item)
        if trace:
            _put_trace_pairs(body, trace)
        fresh = self._names_delta(head, ids)
        total = len(head) + len(body)
        if max_frame_bytes is not None and total > max_frame_bytes:
            # Refused before the delta is committed: the peer never saw
            # this frame, so the names must go out with the next one.
            raise FrameTooLarge(total, max_frame_bytes)
        self._announced |= fresh
        return bytes(head + body)

    def ingest_batch_body(
        self,
        source,
        items,
        *,
        seq=None,
        pad_bytes=0,
        max_frame_bytes=None,
        traces=None,
    ):
        head = bytearray(
            [_TAG_INGEST_BATCH_TRACED if traces else _TAG_INGEST_BATCH]
        )
        _put_varint(head, 0 if seq is None else seq + 1)
        _put_string(head, source)
        _put_varint(head, max(0, pad_bytes))
        head += b"\x00" * max(0, pad_bytes)
        body = bytearray()
        used: list[int] = []
        _put_varint(body, len(items))
        for item in items:
            used.extend(self._encode_tuple(body, item))
        if traces:
            _put_trace_map(body, traces)
        fresh = self._names_delta(head, used)
        total = len(head) + len(body)
        if max_frame_bytes is not None and total > max_frame_bytes:
            raise FrameTooLarge(total, max_frame_bytes)
        self._announced |= fresh
        return bytes(head + body)

    def decided_pieces(
        self, app, batch, *, max_frame_bytes, shared=True, traces=None
    ):
        if shared:
            segments = [self.tuple_segment(item) for item in batch.items]
        else:
            segments = []
            for item in batch.items:
                out = bytearray()
                ids = self._encode_tuple(out, item)
                segments.append(Segment(bytes(out), ids))
        head = bytearray([_TAG_DECIDED_TRACED if traces else _TAG_DECIDED])
        _put_string(head, app)
        head += _F64.pack(batch.first_staged_ms)
        head += _F64.pack(batch.flushed_ms)
        fresh = self._names_delta(
            head, (nid for segment in segments for nid in segment.name_ids)
        )
        _put_varint(head, len(segments))
        tail = b""
        if traces:
            tail_out = bytearray()
            _put_trace_map(tail_out, traces)
            tail = bytes(tail_out)
        pieces: list[bytes] = [bytes(head)]
        total = (
            len(head)
            + sum(len(segment) for segment in segments)
            + len(tail)
        )
        if total > max_frame_bytes:
            raise FrameTooLarge(total, max_frame_bytes)
        # Size check passed: the delta will reach the peer, commit it.
        self._announced |= fresh
        pieces.extend(segment.data for segment in segments)
        if tail:
            pieces.append(tail)
        return pieces, total


def make_encoder(
    codec: str,
    *,
    table: Optional[NameTable] = None,
    cache: Optional[SegmentCache] = None,
) -> FrameEncoder:
    """Encoder for one negotiated connection."""
    if codec == CODEC_BINARY:
        return BinaryEncoder(table=table, cache=cache)
    if codec == CODEC_JSON:
        return JsonEncoder(cache=cache)
    raise ValueError(f"unknown codec {codec!r}; expected {SUPPORTED_CODECS}")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------
def _read_names(reader: _Reader, names: BinaryNames) -> None:
    count = reader.varint()
    for _ in range(count):
        nid = reader.varint()
        names.learn(nid, reader.string())


def _read_trace_pairs(reader: _Reader) -> list[tuple[int, int]]:
    count = reader.varint()
    return [(reader.varint(), reader.varint()) for _ in range(count)]


def _read_trace_map(reader: _Reader) -> dict[int, list[tuple[int, int]]]:
    count = reader.varint()
    out: dict[int, list[tuple[int, int]]] = {}
    for _ in range(count):
        seq = reader.varint()
        out[seq] = _read_trace_pairs(reader)
    return out


def _read_tuple(reader: _Reader, names: BinaryNames) -> StreamTuple:
    seq = reader.varint()
    ts = reader.f64()
    n_attrs = reader.varint()
    values: dict[str, float] = {}
    for _ in range(n_attrs):
        nid = reader.varint()
        values[names.resolve(nid)] = reader.f64()
    # Decoded straight to a StreamTuple (the payload codecs pass
    # instances through), skipping the dict round trip JSON pays.
    return StreamTuple.trusted(seq, ts, values)


def decode_binary_body(body: bytes, names: BinaryNames) -> dict:
    """Decode one binary frame body into the canonical JSON dict shape.

    ``names`` is the connection's receiver-side table; deltas carried by
    the frame are learned before any tuple record is resolved.
    """
    reader = _Reader(body, pos=1)
    tag = body[0]
    if tag in (
        _TAG_INGEST,
        _TAG_INGEST_BATCH,
        _TAG_INGEST_TRACED,
        _TAG_INGEST_BATCH_TRACED,
    ):
        req = reader.varint()
        source = reader.string()
        pad_len = reader.varint()
        reader.take(pad_len)  # padding is load-shaping only; discard
        _read_names(reader, names)
        if tag in (_TAG_INGEST, _TAG_INGEST_TRACED):
            frame: dict = {
                "t": "ingest",
                "source": source,
                "tuple": _read_tuple(reader, names),
            }
            if tag == _TAG_INGEST_TRACED:
                frame["trace"] = _read_trace_pairs(reader)
        else:
            count = reader.varint()
            frame = {
                "t": "ingest_batch",
                "source": source,
                "tuples": [_read_tuple(reader, names) for _ in range(count)],
            }
            if tag == _TAG_INGEST_BATCH_TRACED:
                frame["traces"] = _read_trace_map(reader)
        if req:
            frame["seq"] = req - 1
        return frame
    if tag in (_TAG_DECIDED, _TAG_DECIDED_TRACED):
        app = reader.string()
        first_staged_ms = reader.f64()
        flushed_ms = reader.f64()
        _read_names(reader, names)
        count = reader.varint()
        frame = {
            "t": "decided",
            "app": app,
            "first_staged_ms": first_staged_ms,
            "flushed_ms": flushed_ms,
            "items": [_read_tuple(reader, names) for _ in range(count)],
        }
        if tag == _TAG_DECIDED_TRACED:
            frame["traces"] = _read_trace_map(reader)
        return frame
    raise ProtocolError(f"unknown binary frame tag 0x{tag:02x}")
