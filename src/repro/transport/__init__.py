"""Networked dissemination gateway: the live broker behind real sockets.

:mod:`repro.service` made the batch engine a long-running broker; this
package makes the broker a *server*.  A length-prefixed JSON wire
protocol (:mod:`~repro.transport.protocol`) carries ingest, dynamic
subscriptions and decided-batch delivery over TCP
(:mod:`~repro.transport.server` / :mod:`~repro.transport.client`), with
the broker's bounded-queue backpressure policies propagating to the
sockets, and a minimal HTTP endpoint (:mod:`~repro.transport.http`)
serves live snapshots for scraping.  Everything is stdlib asyncio — no
new dependencies.
"""

from repro.transport.client import GatewayClient, GatewayError, RemoteSubscription
from repro.transport.codec import (
    CODEC_BINARY,
    CODEC_JSON,
    FANOUT_PER_SESSION,
    FANOUT_SHARED,
    FANOUTS,
    SUPPORTED_CODECS,
    BinaryEncoder,
    JsonEncoder,
    NameTable,
    SegmentCache,
    make_encoder,
    negotiate,
)
from repro.transport.http import SnapshotHTTP
from repro.transport.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    batch_from_wire,
    batch_to_wire,
    encode_frame,
    pack_header,
    tuple_from_wire,
    tuple_to_wire,
)
from repro.transport.server import GatewayServer

__all__ = [
    "BinaryEncoder",
    "CODEC_BINARY",
    "CODEC_JSON",
    "FANOUTS",
    "FANOUT_PER_SESSION",
    "FANOUT_SHARED",
    "FrameDecoder",
    "FrameTooLarge",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "JsonEncoder",
    "MAX_FRAME_BYTES",
    "NameTable",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteSubscription",
    "SUPPORTED_CODECS",
    "SegmentCache",
    "SnapshotHTTP",
    "batch_from_wire",
    "batch_to_wire",
    "encode_frame",
    "make_encoder",
    "negotiate",
    "pack_header",
    "tuple_from_wire",
    "tuple_to_wire",
]
