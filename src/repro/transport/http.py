"""Minimal HTTP endpoint serving live service snapshots for scraping.

Two routes, both read-only and stdlib-only (asyncio streams; no web
framework):

* ``GET /healthz`` — liveness: ``{"status": "ok", "sources": [...],
  "session_count": N}``;
* ``GET /snapshot`` — the full
  :meth:`~repro.service.broker.DisseminationService.snapshot` dict,
  including live p50/p99 decide latency, per-session queue depths and
  drop counters — everything a scraper needs mid-run.

Responses are ``Connection: close`` HTTP/1.1 with explicit
``Content-Length``, which every scraper (curl, prometheus blackbox,
``urllib``) handles without keep-alive bookkeeping.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.service.broker import DisseminationService

__all__ = ["SnapshotHTTP"]

#: Bound on the request head we are willing to buffer.
_MAX_REQUEST_BYTES = 8192
_REQUEST_TIMEOUT_S = 5.0


class SnapshotHTTP:
    """Tiny read-only HTTP front end for one dissemination service."""

    def __init__(
        self,
        service: DisseminationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("http endpoint already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_head(reader), timeout=_REQUEST_TIMEOUT_S
            )
            if request is None:
                return
            method, path = request
            status, payload = await self._route(method, path)
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (
            ConnectionError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,  # readline overruns the stream limit
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_head(
        reader: asyncio.StreamReader,
    ) -> Optional[tuple[str, str]]:
        """Parse the request line, drain headers, ignore any body."""
        request_line = await reader.readline()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return None
        drained = len(request_line)
        while drained < _MAX_REQUEST_BYTES:
            line = await reader.readline()
            drained += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
        return parts[0].upper(), parts[1]

    async def _route(self, method: str, path: str) -> tuple[str, dict]:
        if method != "GET":
            return "405 Method Not Allowed", {"error": "only GET is served"}
        path = path.split("?", 1)[0]
        if path == "/healthz":
            # Liveness gets polled constantly: answer from the cheap
            # accessors, not a full snapshot (per-session stats plus
            # percentile computation).
            return "200 OK", {
                "status": "ok",
                "sources": list(self.service.sources()),
                "session_count": self.service.session_count(),
            }
        if path == "/snapshot":
            # The cluster router's snapshot is a coroutine (it gathers
            # per-worker snapshots) returning a plain merged dict.
            from repro.transport.server import service_snapshot_dict

            return "200 OK", await service_snapshot_dict(self.service)
        return "404 Not Found", {
            "error": f"no route {path!r}; try /snapshot or /healthz"
        }
