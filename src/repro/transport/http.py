"""Minimal HTTP endpoint serving live service observability surfaces.

Four routes, all read-only and stdlib-only (asyncio streams; no web
framework):

* ``GET /healthz`` — liveness: ``{"status": "ok", "sources": [...],
  "session_count": N}``;
* ``GET /snapshot`` — the full
  :meth:`~repro.service.broker.DisseminationService.snapshot` dict,
  including live p50/p99 decide latency, per-session queue depths and
  drop counters — everything a scraper needs mid-run;
* ``GET /metrics`` — Prometheus text exposition of the attached
  :class:`~repro.obs.telemetry.Telemetry` registry.  When the fronted
  service is a cluster router (it has ``metrics_text``), the exposition
  is the fleet merge: the router's own series labeled
  ``worker="router"`` plus every live worker's scrape labeled with its
  slot index;
* ``GET /events?since=N&limit=M`` — the structured event log as JSON
  lines, ids strictly increasing; pass the last seen ``id`` as
  ``since`` to page.  On a cluster router the handler first folds every
  worker's fresh events into the router log;
* ``GET /health/report`` — the attached
  :class:`~repro.obs.watch.Watchtower`'s latest
  :class:`~repro.obs.slo.HealthReport` as JSON (polling on demand when
  no background poll has run yet); ``404`` when no watchtower is
  attached.

Responses are ``Connection: close`` HTTP/1.1 with explicit
``Content-Length``, which every scraper (curl, prometheus blackbox,
``urllib``) handles without keep-alive bookkeeping.  Non-GET methods
get a ``405``; a request head that overruns the buffer bound (or
announces an oversized body via ``Content-Length``) gets a ``400``
instead of a silent hangup.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional
from urllib.parse import parse_qs

from repro.obs.telemetry import Telemetry
from repro.service.broker import DisseminationService

__all__ = ["SnapshotHTTP"]

#: Bound on the request head (and any announced body) we will buffer.
_MAX_REQUEST_BYTES = 8192
_REQUEST_TIMEOUT_S = 5.0

#: Sentinel from ``_read_head``: the request overran the buffer bound.
_OVERSIZED = object()


class SnapshotHTTP:
    """Tiny read-only HTTP front end for one dissemination service."""

    def __init__(
        self,
        service: DisseminationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry: Optional[Telemetry] = None,
        watchtower=None,
    ):
        self.service = service
        self.host = host
        self.telemetry = telemetry
        self.watchtower = watchtower
        self._requested_port = port
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("http endpoint already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                self._read_head(reader), timeout=_REQUEST_TIMEOUT_S
            )
            if request is None:
                return
            if request is _OVERSIZED:
                status, ctype, body = self._json_reply(
                    "400 Bad Request",
                    {"error": "request head exceeds "
                     f"{_MAX_REQUEST_BYTES} bytes"},
                )
            else:
                method, path = request
                status, ctype, body = await self._route(method, path)
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (
            ConnectionError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,  # readline overruns the stream limit
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_head(reader: asyncio.StreamReader):
        """Parse the request line and drain headers.

        Returns ``(method, path)``, ``None`` for an empty/unparseable
        request line, or :data:`_OVERSIZED` when the head overruns
        :data:`_MAX_REQUEST_BYTES` or a ``Content-Length`` header
        announces a body bigger than we are willing to read.
        """
        request_line = await reader.readline()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return None
        drained = len(request_line)
        content_length = 0
        terminated = False
        while drained <= _MAX_REQUEST_BYTES:
            line = await reader.readline()
            drained += len(line)
            if line in (b"\r\n", b"\n", b""):
                terminated = True
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if not terminated or content_length > _MAX_REQUEST_BYTES:
            return _OVERSIZED
        return parts[0].upper(), parts[1]

    @staticmethod
    def _json_reply(status: str, payload: dict) -> tuple[str, str, bytes]:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        return status, "application/json", body

    async def _route(
        self, method: str, path: str
    ) -> tuple[str, str, bytes]:
        if method != "GET":
            return self._json_reply(
                "405 Method Not Allowed", {"error": "only GET is served"}
            )
        path, _, query = path.partition("?")
        if path == "/healthz":
            # Liveness gets polled constantly: answer from the cheap
            # accessors, not a full snapshot (per-session stats plus
            # percentile computation).
            return self._json_reply(
                "200 OK",
                {
                    "status": "ok",
                    "sources": list(self.service.sources()),
                    "session_count": self.service.session_count(),
                },
            )
        if path == "/snapshot":
            # The cluster router's snapshot is a coroutine (it gathers
            # per-worker snapshots) returning a plain merged dict.
            from repro.transport.server import service_snapshot_dict

            payload = await service_snapshot_dict(self.service)
            return self._json_reply("200 OK", payload)
        if path == "/metrics":
            return await self._metrics()
        if path == "/events":
            return await self._events(query)
        if path == "/health/report":
            return await self._health_report()
        return self._json_reply(
            "404 Not Found",
            {
                "error": f"no route {path!r}; try /snapshot, /healthz, "
                "/metrics, /events or /health/report"
            },
        )

    async def _health_report(self) -> tuple[str, str, bytes]:
        """Latest Watchtower verdicts (polling once when none yet)."""
        tower = self.watchtower
        if tower is None:
            return self._json_reply(
                "404 Not Found", {"error": "no watchtower is attached"}
            )
        report = tower.report
        if report is None:
            report = await tower.poll()
        return self._json_reply("200 OK", report.to_dict())

    async def _metrics(self) -> tuple[str, str, bytes]:
        """Prometheus exposition — fleet-merged when fronting a router."""
        merged = getattr(self.service, "metrics_text", None)
        if merged is not None:
            text = await merged()
        elif self.telemetry is not None:
            text = self.telemetry.registry.render()
        else:
            return self._json_reply(
                "404 Not Found", {"error": "telemetry is disabled"}
            )
        return (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            text.encode("utf-8"),
        )

    async def _events(self, query: str) -> tuple[str, str, bytes]:
        """Structured event log as JSON lines, pageable via ``since``."""
        if self.telemetry is None:
            return self._json_reply(
                "404 Not Found", {"error": "telemetry is disabled"}
            )
        params = parse_qs(query)

        def intval(name: str, fallback):
            raw = params.get(name, [None])[0]
            if raw is None:
                return fallback
            try:
                return int(raw)
            except ValueError:
                return fallback

        since = intval("since", 0)
        limit = intval("limit", None)
        pull = getattr(self.service, "pull_events", None)
        if pull is not None:
            # Cluster router: fold fresh worker events in first, so one
            # scrape sees the whole fleet.
            await pull()
        lines = [
            json.dumps(record, separators=(",", ":"), default=str)
            for record in self.telemetry.events.since(since, limit=limit)
        ]
        body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
        return "200 OK", "application/x-ndjson", body
