"""Length-prefixed JSON wire protocol for the dissemination gateway.

One frame on the wire is a 4-byte big-endian length header followed by
that many bytes of UTF-8 JSON.  Every frame is a JSON object with a
``"t"`` type tag; request frames carry a client-chosen ``"seq"`` and the
server's response echoes it as ``"reply_to"``, so one connection can
multiplex many outstanding requests with unsolicited ``decided`` /
``closed`` delivery frames in between.

The protocol is versioned at the handshake: the first frame on a
connection must be ``hello`` with ``"v" == PROTOCOL_VERSION``; the
server answers ``welcome`` (or ``error`` + close on a version or auth
mismatch).

Frame vocabulary (client → server unless noted)::

    hello         {v, token?, codecs?, features?} -> welcome | error
    ensure_source {seq, source}                  -> ok {created}
    ingest        {source, tuple, seq?, pad?}    -> ok {emissions}   (when seq given)
    ingest_batch  {source, tuples, seq?, pad?}   -> ok {emissions}   (when seq given)
    subscribe     {seq, app, source, spec, qos?,
                   degradation?, queue_capacity?,
                   overflow?, batch_max_items?,
                   batch_max_delay_ms?}
                                                 -> ok
    unsubscribe   {seq, app}                     -> ok (then closed)
    re_filter     {seq, app, spec}               -> ok
    tick          {seq?, now_ms}                 -> ok {emissions}
    snapshot      {seq, window?}                 -> snapshot {snapshot}
    bye           {reason?}                      (either direction)

    welcome       {v, server, sources, codec,
                   features}                     (server → client)
    ok            {reply_to, ...}                (server → client)
    error         {reply_to?, code, message}     (server → client)
    decided       {app, items, first_staged_ms,
                   flushed_ms}                   (server → client)
    qos_update    {app, action, level, spec,
                   signal, value, threshold}     (server → client)
    closed        {app, reason}                  (server → client)

``ingest`` may carry ``pad`` — a throwaway string whose only purpose is
to make the wire frame approximate a real payload size (the load
generator uses it so TCP throughput numbers reflect the configured
tuple size, not just the attribute dictionary).  ``ingest_batch``
amortizes the per-frame round trip and the broker's per-offer task and
lock overhead across many tuples; its ``ok`` reports the summed
emission count.  ``snapshot`` with ``window=true`` asks the server to
attach its raw decide-latency sliding window (``decide_window_ms``) so
a front-tier router can merge several workers' windows into one honest
percentile computation.

Besides ``codecs``, the hello may offer ``features`` — protocol
extensions beyond the body codec.  The server confirms the agreed
subset in ``welcome`` (:func:`negotiate_features`); an extension may
only appear on the wire after both sides agreed, so v1 peers are
untouched.  The defined features:

* ``"trace"``: sampled per-tuple stage-latency annotations
  (:mod:`repro.obs.trace`).  When negotiated, ``ingest`` may carry
  ``trace`` (a ``[[stage_id, duration_ns], ...]`` pair list for its
  tuple) and ``ingest_batch`` / ``decided`` may carry ``traces`` (a
  ``{seq: pairs}`` map covering only the sampled tuples in the frame);
  :func:`traces_from_wire` normalizes either codec's decoded shape.
  Trace annotations are additive metadata — receivers that negotiated
  the feature but find no trace field simply record nothing.
* ``"qos"``: server-initiated graceful degradation.  ``subscribe`` may
  carry ``degradation`` — a :func:`repro.qos.policy_to_profile` shape
  (``{levels, bandwidth_floors_kbps?, level?, config?}``) handing the
  server a whole fallback ladder — and the server pushes an unsolicited
  ``qos_update`` frame per applied level transition, carrying the
  triggering signal as evidence.  Degradation itself is server-side
  policy: a server may accept ``degradation`` and adapt the session
  even for a client that did not negotiate ``qos``; only the
  ``qos_update`` notifications are gated on the agreement.

Two *body codecs* share this frame vocabulary.  A body whose first byte
is ``{`` is UTF-8 JSON (the v1 format); any other first byte is a
struct-packed binary frame (:mod:`repro.transport.codec`).  The client
offers ``codecs`` (preference-ordered) in its hello and the server
confirms the chosen one in ``welcome``; either side may only *send*
binary after that agreement, so a v1 peer never sees a binary frame.
Control frames stay JSON under either codec — only the hot paths
(``ingest``, ``ingest_batch``, ``decided``) have binary encodings.

:class:`FrameDecoder` is sans-io: feed it whatever ``read()`` returned
— half a header, three frames glued together — and it yields exactly
the complete frames (as dicts, whichever codec encoded them), enforcing
``max_frame_bytes`` *from the header* so an oversized frame is rejected
before its body is buffered.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator, Mapping, Optional

from repro.core.tuples import StreamTuple
from repro.service.batching import Batch

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FEATURE_QOS",
    "FEATURE_TRACE",
    "SUPPORTED_FEATURES",
    "ProtocolError",
    "FrameTooLarge",
    "encode_frame",
    "pack_header",
    "negotiate_features",
    "FrameDecoder",
    "tuple_to_wire",
    "tuple_from_wire",
    "batch_to_wire",
    "batch_from_wire",
    "traces_from_wire",
]

PROTOCOL_VERSION = 1

#: Optional protocol extension: sampled per-tuple trace annotations.
FEATURE_TRACE = "trace"

#: Optional protocol extension: degradation profiles in ``subscribe``
#: and server-pushed ``qos_update`` level-transition frames.
FEATURE_QOS = "qos"

#: Features this implementation understands (hello/welcome negotiation).
SUPPORTED_FEATURES = (FEATURE_TRACE, FEATURE_QOS)

#: Default per-frame ceiling.  Generous for batched deliveries, small
#: enough that one bad client cannot balloon broker memory.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, unexpected or policy-violating frame."""

    def __init__(self, message: str, code: str = "protocol"):
        super().__init__(message)
        self.code = code


class FrameTooLarge(ProtocolError):
    """A frame header announced more bytes than ``max_frame_bytes``."""

    def __init__(self, size: int, limit: int):
        super().__init__(
            f"frame of {size} bytes exceeds the {limit}-byte limit",
            code="frame_too_large",
        )
        self.size = size
        self.limit = limit


def encode_frame(
    frame: Mapping, *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one frame to header + JSON body bytes."""
    body = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise FrameTooLarge(len(body), max_frame_bytes)
    return _HEADER.pack(len(body)) + body


def negotiate_features(
    offered,
    supported: tuple = SUPPORTED_FEATURES,
) -> list[str]:
    """Server-side feature agreement: offered ∩ supported, offer order.

    ``None`` (a v1 hello with no ``features`` key) or an unrecognized
    offer yields the empty agreement — nothing extension-gated may be
    sent to that peer.
    """
    if not offered:
        return []
    return [
        str(name)
        for name in offered
        if name in supported and name in SUPPORTED_FEATURES
    ]


def pack_header(size: int) -> bytes:
    """The 4-byte length header for a ``size``-byte body.

    Used by the encode-once fan-out path, which writes the header and a
    list of shared body pieces (``writelines``) instead of one
    concatenated frame."""
    return _HEADER.pack(size)


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte-chunk feed.

    TCP gives back bytes, not frames: a ``read()`` may return half a
    header, a header plus part of a body, or several frames coalesced.
    The decoder buffers across :meth:`feed` calls and yields only
    complete frames, in order.
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        #: Body length announced by the current header, None between frames.
        self._expected: Optional[int] = None
        #: Receiver-side attribute-name table for binary frames, created
        #: on first use (lazily imported to avoid a module cycle).
        self._binary_names = None

    @property
    def buffered(self) -> int:
        """Bytes currently held waiting for a frame to complete."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[dict]:
        """Absorb one chunk; return every frame it completed (maybe [])."""
        self._buffer.extend(data)
        return list(self._drain())

    def _drain(self) -> Iterator[dict]:
        while True:
            if self._expected is None:
                if len(self._buffer) < _HEADER.size:
                    return
                (size,) = _HEADER.unpack(bytes(self._buffer[: _HEADER.size]))
                if size > self.max_frame_bytes:
                    # Reject from the header alone: the body is never
                    # buffered, so a hostile length cannot balloon memory.
                    raise FrameTooLarge(size, self.max_frame_bytes)
                del self._buffer[: _HEADER.size]
                self._expected = size
            if len(self._buffer) < self._expected:
                return
            body = bytes(self._buffer[: self._expected])
            del self._buffer[: self._expected]
            self._expected = None
            if not body:
                raise ProtocolError("empty frame body")
            if body[0] == 0x7B:  # "{" — the v1 JSON body format
                try:
                    frame = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ProtocolError(f"undecodable frame body: {exc}") from exc
                if not isinstance(frame, dict) or "t" not in frame:
                    raise ProtocolError("a frame must be an object with a 't' tag")
            else:
                frame = self._decode_binary(body)
            yield frame

    def _decode_binary(self, body: bytes) -> dict:
        # Local import: codec.py imports the error types from this module.
        from repro.transport import codec as _codec

        if self._binary_names is None:
            self._binary_names = _codec.BinaryNames()
        return _codec.decode_binary_body(body, self._binary_names)


# ---------------------------------------------------------------------------
# Payload codecs
# ---------------------------------------------------------------------------
def tuple_to_wire(item: StreamTuple) -> dict:
    return {"seq": item.seq, "ts": item.timestamp, "values": dict(item.values)}


def tuple_from_wire(payload) -> StreamTuple:
    # The binary codec decodes tuple records straight to StreamTuples;
    # pass them through so decided/ingest handling is codec-agnostic.
    if isinstance(payload, StreamTuple):
        return payload
    try:
        return StreamTuple(
            seq=int(payload["seq"]),
            timestamp=float(payload["ts"]),
            values={str(k): float(v) for k, v in payload["values"].items()},
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ProtocolError(f"malformed tuple payload: {exc!r}") from exc


def batch_to_wire(batch: Batch) -> dict:
    return {
        "items": [tuple_to_wire(item) for item in batch.items],
        "first_staged_ms": batch.first_staged_ms,
        "flushed_ms": batch.flushed_ms,
    }


def batch_from_wire(payload: Mapping) -> Batch:
    try:
        items = payload["items"]
        if items and all(type(item) is StreamTuple for item in items):
            # Binary decode already produced StreamTuples; adopt them.
            decoded = tuple(items)
        else:
            decoded = tuple(tuple_from_wire(item) for item in items)
        return Batch(
            items=decoded,
            first_staged_ms=float(payload["first_staged_ms"]),
            flushed_ms=float(payload["flushed_ms"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed batch payload: {exc!r}") from exc


def traces_from_wire(frame: Mapping) -> dict[int, list[tuple[int, int]]]:
    """Normalize a frame's trace annotations to ``{seq: [(sid, ns)]}``.

    Handles all three shapes: the JSON codec's string-keyed ``traces``
    map, the binary codec's int-keyed map, and a single-tuple ``ingest``
    frame's ``trace`` pair list (keyed by the tuple's own seq).  Returns
    ``{}`` when the frame carries no annotations; malformed annotations
    are dropped rather than failing the frame — traces are advisory.
    """
    out: dict[int, list[tuple[int, int]]] = {}
    raw = frame.get("traces")
    if isinstance(raw, Mapping):
        for key, pairs in raw.items():
            try:
                out[int(key)] = [
                    (int(sid), int(ns)) for sid, ns in pairs
                ]
            except (TypeError, ValueError):
                continue
    single = frame.get("trace")
    if single is not None:
        payload = frame.get("tuple")
        try:
            seq = (
                payload.seq
                if isinstance(payload, StreamTuple)
                else int(payload["seq"])
            )
            out[seq] = [(int(sid), int(ns)) for sid, ns in single]
        except (KeyError, TypeError, ValueError):
            pass
    return out
