"""Merging and canonicalization of per-shard engine results.

Two concerns live here:

* :func:`combine` folds the per-group :class:`EngineResult` objects of a
  sharded run into one :class:`CombinedResult` with group-aware totals
  (inputs, distinct outputs, transmissions, CPU, cuts) and a single
  time-ordered multiplexed emission log tagged by group key.
* :func:`canonical_result` reduces an :class:`EngineResult` to a plain,
  comparable structure that is independent of process-local artifacts —
  candidate-set ids come from a per-process counter and wall-clock
  timings jitter, so equality of sharded vs. sequential runs is defined
  over decisions (which tuples, for which filter, decided when) and
  emissions (which tuples, to whom, emitted when).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.engine import EngineResult
from repro.core.output import Emission

__all__ = ["CombinedResult", "combine", "canonical_result"]


def canonical_result(result: EngineResult) -> dict:
    """Deterministic, comparable view of one engine run."""
    decisions = {
        filter_name: [
            (decision.decide_ts, tuple(item.seq for item in decision.tuples))
            for decision in decided
        ]
        for filter_name, decided in result.decisions.items()
    }
    emissions = [
        (
            emission.emit_ts,
            emission.item.seq,
            tuple(sorted(emission.recipients)),
            emission.decide_ts,
        )
        for emission in result.emissions
    ]
    return {
        "algorithm": result.algorithm,
        "input_count": result.input_count,
        "decisions": decisions,
        "emissions": emissions,
    }


@dataclass
class CombinedResult:
    """Group-aware totals over the per-group results of one run."""

    results: Mapping[str, EngineResult]
    #: The merged multiplexed output: (group_key, emission), ordered by
    #: emission time, then source timestamp, then group key.
    emissions: list[tuple[str, Emission]] = field(default_factory=list)

    @property
    def input_count(self) -> int:
        return sum(result.input_count for result in self.results.values())

    @property
    def output_count(self) -> int:
        """Distinct output tuples, counted per group (seqs are per-stream)."""
        return sum(result.output_count for result in self.results.values())

    @property
    def transmissions(self) -> int:
        return sum(result.transmissions for result in self.results.values())

    @property
    def oi_ratio(self) -> float:
        inputs = self.input_count
        if inputs == 0:
            return 0.0
        return self.output_count / inputs

    @property
    def total_cpu_ms(self) -> float:
        return sum(result.total_cpu_ms for result in self.results.values())

    @property
    def regions_emitted(self) -> int:
        return sum(result.regions_emitted for result in self.results.values())

    @property
    def regions_cut(self) -> int:
        return sum(result.regions_cut for result in self.results.values())

    @property
    def cuts_triggered(self) -> int:
        return sum(result.cuts_triggered for result in self.results.values())

    @property
    def mean_latency_ms(self) -> float:
        delays = [emission.delay_ms for _, emission in self.emissions]
        if not delays:
            return 0.0
        return sum(delays) / len(delays)


def combine(results: Mapping[str, EngineResult]) -> CombinedResult:
    """Merge per-group results into one consistent, ordered view."""
    merged: list[tuple[str, Emission]] = []
    for key, result in results.items():
        merged.extend((key, emission) for emission in result.emissions)
    merged.sort(key=lambda pair: (pair[1].emit_ts, pair[1].item.timestamp, pair[0]))
    return CombinedResult(results=dict(results), emissions=merged)
