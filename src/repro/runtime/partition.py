"""Stable group-key partitioning.

Shard placement must be deterministic across processes and runs —
Python's builtin ``hash`` is salted per interpreter, so hashed
placement uses BLAKE2 instead.  All tuples of one group key land on one
shard, which is what keeps sharded runs bit-identical to sequential
runs: the engine's coordination state never spans shards.

Two placements are provided.  ``"balanced"`` (the default) deals a
finite, known workload round-robin, which spreads small task lists
evenly — hashing five variant names can put four of them on one shard.
``"hashed"`` places by key alone, independent of what other tasks are
in the workload; use it when the same key must land on the same shard
across different workloads (open-ended keyed streams).
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2s
from typing import Iterable, Sequence

from repro.core.tuples import StreamTuple
from repro.runtime.tasks import GroupTask

__all__ = [
    "PLACEMENTS",
    "HashRing",
    "shard_for_key",
    "partition_tasks",
    "partition_keyed_stream",
]

PLACEMENTS = ("balanced", "hashed")


def shard_for_key(key: str, shards: int) -> int:
    """Deterministic shard index for ``key`` in ``range(shards)``."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards == 1:
        return 0
    digest = blake2s(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def _ring_point(token: str) -> int:
    digest = blake2s(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over named members.

    :func:`shard_for_key` reshuffles nearly every key when the shard
    count changes, which is fine for a fixed batch run but fatal for a
    live cluster: growing from N to N+1 workers would migrate almost
    every source.  The ring places each member at ``replicas`` BLAKE2
    points on a 64-bit circle and assigns a key to the first member
    point at or after the key's own point, so adding or removing one
    member only moves the keys that fall in that member's arcs —
    ~1/N of them in expectation.

    Members are arbitrary hashable names (worker indices in the
    cluster), so a member can leave and rejoin without renumbering the
    survivors.
    """

    def __init__(self, members: Iterable[object] = (), *, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._replicas = replicas
        self._members: set[object] = set()
        self._points: list[int] = []
        self._owners: dict[int, object] = {}
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: object) -> bool:
        return member in self._members

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def _tokens(self, member: object) -> list[int]:
        return [
            _ring_point(f"{member!r}#{i}") for i in range(self._replicas)
        ]

    def add(self, member: object) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for point in self._tokens(member):
            # On the vanishingly rare 64-bit collision the earlier
            # member keeps the point; placement stays deterministic.
            if point not in self._owners:
                self._owners[point] = member
                self._points.insert(bisect_right(self._points, point), point)

    def remove(self, member: object) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        for point in self._tokens(member):
            if self._owners.get(point) is member or self._owners.get(point) == member:
                del self._owners[point]
                index = bisect_right(self._points, point) - 1
                if 0 <= index < len(self._points) and self._points[index] == point:
                    del self._points[index]

    def owner(self, key: str):
        """The member owning ``key``, or None for an empty ring."""
        if not self._points:
            return None
        point = _ring_point(key)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def assignment(self, keys: Iterable[str]) -> dict[str, object]:
        """Owner per key — convenience for stability tests/rebalancing."""
        return {key: self.owner(key) for key in keys}


def partition_tasks(
    tasks: Sequence[GroupTask], shards: int, placement: str = "balanced"
) -> list[list[GroupTask]]:
    """Assign tasks to shards, preserving task order per shard.

    ``"balanced"`` deals tasks round-robin by workload position (even
    load, deterministic for a given workload order); ``"hashed"`` uses
    :func:`shard_for_key` (stable per key across workloads).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; expected {PLACEMENTS}")
    buckets: list[list[GroupTask]] = [[] for _ in range(shards)]
    for position, task in enumerate(tasks):
        if placement == "balanced":
            index = position % shards
        else:
            index = shard_for_key(task.key, shards)
        buckets[index].append(task)
    return buckets


def partition_keyed_stream(
    items: Iterable[tuple[str, StreamTuple]],
) -> dict[str, list[StreamTuple]]:
    """Demultiplex one keyed stream into per-group sub-streams.

    Arrival order is preserved within each key, so every sub-stream stays
    a time-ordered series as the paper's stream model requires.
    """
    streams: dict[str, list[StreamTuple]] = {}
    for key, item in items:
        streams.setdefault(key, []).append(item)
    return streams
