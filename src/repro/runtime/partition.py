"""Stable group-key partitioning.

Shard placement must be deterministic across processes and runs —
Python's builtin ``hash`` is salted per interpreter, so hashed
placement uses BLAKE2 instead.  All tuples of one group key land on one
shard, which is what keeps sharded runs bit-identical to sequential
runs: the engine's coordination state never spans shards.

Two placements are provided.  ``"balanced"`` (the default) deals a
finite, known workload round-robin, which spreads small task lists
evenly — hashing five variant names can put four of them on one shard.
``"hashed"`` places by key alone, independent of what other tasks are
in the workload; use it when the same key must land on the same shard
across different workloads (open-ended keyed streams).
"""

from __future__ import annotations

from hashlib import blake2s
from typing import Iterable, Sequence

from repro.core.tuples import StreamTuple
from repro.runtime.tasks import GroupTask

__all__ = ["PLACEMENTS", "shard_for_key", "partition_tasks", "partition_keyed_stream"]

PLACEMENTS = ("balanced", "hashed")


def shard_for_key(key: str, shards: int) -> int:
    """Deterministic shard index for ``key`` in ``range(shards)``."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards == 1:
        return 0
    digest = blake2s(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def partition_tasks(
    tasks: Sequence[GroupTask], shards: int, placement: str = "balanced"
) -> list[list[GroupTask]]:
    """Assign tasks to shards, preserving task order per shard.

    ``"balanced"`` deals tasks round-robin by workload position (even
    load, deterministic for a given workload order); ``"hashed"`` uses
    :func:`shard_for_key` (stable per key across workloads).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if placement not in PLACEMENTS:
        raise ValueError(f"unknown placement {placement!r}; expected {PLACEMENTS}")
    buckets: list[list[GroupTask]] = [[] for _ in range(shards)]
    for position, task in enumerate(tasks):
        if placement == "balanced":
            index = position % shards
        else:
            index = shard_for_key(task.key, shards)
        buckets[index].append(task)
    return buckets


def partition_keyed_stream(
    items: Iterable[tuple[str, StreamTuple]],
) -> dict[str, list[StreamTuple]]:
    """Demultiplex one keyed stream into per-group sub-streams.

    Arrival order is preserved within each key, so every sub-stream stays
    a time-ordered series as the paper's stream model requires.
    """
    streams: dict[str, list[StreamTuple]] = {}
    for key, item in items:
        streams.setdefault(key, []).append(item)
    return streams
