"""Shard worker: build an engine from a task and run it.

The module-level :func:`run_shard` is the process-pool entry point; it
must stay importable (no closures) so it pickles by reference.  Filters
are re-parsed from their spec strings inside the worker, which keeps the
payload small and avoids shipping stateful filter objects across the
process boundary.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.core.cuts import TimeConstraint
from repro.core.engine import EngineResult, GroupAwareEngine, SelfInterestedEngine
from repro.core.output import BatchedOutput, PerCandidateSetOutput, RegionOutput
from repro.filters.spec import parse_group
from repro.runtime.tasks import EngineConfig, GroupTask

__all__ = ["build_engine", "run_task", "run_shard"]


def _make_strategy(config: EngineConfig):
    if config.output == "region":
        return RegionOutput()
    if config.output == "pcs":
        return PerCandidateSetOutput()
    return BatchedOutput(config.batch_size)


def build_engine(
    specs: tuple[str, ...], config: EngineConfig
) -> Union[GroupAwareEngine, SelfInterestedEngine]:
    """Fresh engine for one task (fresh filters, no shared state)."""
    filters = parse_group(list(specs))
    if config.algorithm == "self_interested":
        return SelfInterestedEngine(filters)
    constraint: Optional[TimeConstraint] = None
    if config.constraint_ms is not None:
        constraint = TimeConstraint(config.constraint_ms)
    return GroupAwareEngine(
        filters,
        algorithm=config.algorithm,
        output_strategy=_make_strategy(config),
        time_constraint=constraint,
    )


def run_task(task: GroupTask) -> EngineResult:
    """Run one group's engine over its stream, start to finish."""
    engine = build_engine(task.specs, task.config)
    return engine.run(task.tuples)


def run_shard(payloads: list[tuple]) -> tuple[float, list[tuple[str, EngineResult]]]:
    """Process-pool entry point: run every task payload of one shard.

    Returns the shard's wall-clock milliseconds and the per-key results
    in task order.
    """
    started = time.perf_counter()
    results = []
    for payload in payloads:
        task = GroupTask.from_payload(payload)
        results.append((task.key, run_task(task)))
    wall_ms = (time.perf_counter() - started) * 1e3
    return wall_ms, results
