"""Sharded, parallel execution layer over the group-aware engines.

The paper's engines coordinate one *group* of filters over one stream;
groups never share state.  This package scales that model out: a
workload of independent :class:`GroupTask`s is partitioned by group key
across N worker shards (process, thread or serial executors), each shard
runs a fresh engine per group, and the per-shard
:class:`~repro.core.engine.EngineResult`s are merged into one consistent
result whose decided outputs are identical to a sequential run.
"""

from repro.runtime.merge import CombinedResult, canonical_result, combine
from repro.runtime.partition import (
    PLACEMENTS,
    HashRing,
    partition_keyed_stream,
    partition_tasks,
    shard_for_key,
)
from repro.runtime.sharded import (
    EXECUTORS,
    ShardedResult,
    ShardedRuntime,
    run_sequential,
    run_tasks,
)
from repro.runtime.tasks import EngineConfig, GroupTask
from repro.runtime.worker import build_engine, run_task

__all__ = [
    "CombinedResult",
    "EXECUTORS",
    "EngineConfig",
    "HashRing",
    "PLACEMENTS",
    "GroupTask",
    "ShardedResult",
    "ShardedRuntime",
    "build_engine",
    "canonical_result",
    "combine",
    "partition_keyed_stream",
    "partition_tasks",
    "run_sequential",
    "run_task",
    "run_tasks",
    "shard_for_key",
]
