"""Sharded parallel execution of independent filter groups.

The :class:`ShardedRuntime` partitions a workload of :class:`GroupTask`s
across N shards by stable key hash and runs each shard's tasks on a
worker, with three interchangeable executors:

* ``"process"`` — one OS process per shard via
  :class:`concurrent.futures.ProcessPoolExecutor`; true parallelism.
* ``"thread"`` — one thread per shard; useful where process pools are
  unavailable (sandboxes) and as a determinism cross-check.
* ``"serial"`` — the single-process batched fallback: shards run one
  after another in shard order, in the calling process.

All three produce identical decided outputs and emissions for the same
workload (group keys never span shards, and each group's engine is fresh
per run), so results stay deterministic and comparable to the plain
sequential engine.  If a preferred executor cannot be created or dies —
process pools are routinely forbidden in sandboxes — the runtime falls
back ``process → thread → serial`` and records what actually ran.
"""

from __future__ import annotations

import atexit
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Sequence

from repro.core.engine import EngineResult
from repro.runtime.merge import CombinedResult, canonical_result, combine
from repro.runtime.partition import PLACEMENTS, partition_tasks
from repro.runtime.tasks import GroupTask
from repro.runtime.worker import run_shard

__all__ = ["EXECUTORS", "ShardedResult", "ShardedRuntime", "run_tasks", "run_sequential"]

EXECUTORS = ("process", "thread", "serial")

#: Fallback order when a preferred executor cannot run.
_FALLBACK = {"process": "thread", "thread": "serial"}


@dataclass
class ShardedResult:
    """Everything produced by one sharded run."""

    #: Per-group engine results, in workload (task) order.
    results: dict[str, EngineResult]
    #: Group key to shard index.
    assignment: dict[str, int]
    shards: int
    #: Executor that actually ran (after any fallback).
    executor: str
    requested_executor: str
    wall_ms: float
    #: Worker-measured wall-clock per non-empty shard.
    shard_wall_ms: dict[int, float] = field(default_factory=dict)

    @cached_property
    def combined(self) -> CombinedResult:
        """Merged decisions/emissions/metrics across every group."""
        return combine(self.results)

    def canonical(self) -> dict[str, dict]:
        """Comparable per-group view (see :func:`canonical_result`)."""
        return {key: canonical_result(result) for key, result in self.results.items()}

    def __getitem__(self, key: str) -> EngineResult:
        return self.results[key]


class ShardedRuntime:
    """Partition a workload by group key and run it on N shards."""

    def __init__(self, shards: int = 1, executor: str = "process", placement: str = "balanced"):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if executor not in EXECUTORS:
            raise ValueError(f"unknown executor {executor!r}; expected {EXECUTORS}")
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; expected {PLACEMENTS}")
        self.shards = shards
        self.executor = executor
        self.placement = placement

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[GroupTask]) -> ShardedResult:
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError(f"group keys must be unique, got {keys}")
        started = time.perf_counter()

        buckets = partition_tasks(tasks, self.shards, placement=self.placement)
        assignment = {
            task.key: index for index, bucket in enumerate(buckets) for task in bucket
        }
        occupied = [(index, bucket) for index, bucket in enumerate(buckets) if bucket]

        executor = self.executor
        outcome: Optional[dict[int, tuple[float, list[tuple[str, EngineResult]]]]] = None
        while outcome is None:
            try:
                outcome = _execute(executor, occupied)
            except (OSError, ImportError, BrokenProcessPool) as error:
                fallback = _FALLBACK.get(executor)
                if fallback is None:
                    raise
                # Process pools are unavailable in some sandboxes; degrade
                # gracefully rather than failing the run.
                import warnings

                warnings.warn(
                    f"{executor!r} executor unavailable ({error!r}); "
                    f"falling back to {fallback!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                executor = fallback

        by_key = {
            key: result
            for _, (_, shard_results) in sorted(outcome.items())
            for key, result in shard_results
        }
        results = {key: by_key[key] for key in keys}
        shard_wall_ms = {index: wall for index, (wall, _) in sorted(outcome.items())}
        wall_ms = (time.perf_counter() - started) * 1e3
        return ShardedResult(
            results=results,
            assignment=assignment,
            shards=self.shards,
            executor=executor,
            requested_executor=self.executor,
            wall_ms=wall_ms,
            shard_wall_ms=shard_wall_ms,
        )


# Worker pools are expensive to create — a process pool respawns (and on
# spawn-start platforms, re-imports) its workers — and experiment loops
# call run_group once per group per repeat.  run_shard is a pure function
# of its payloads, so pools are safely reusable: cache them per
# (executor kind, worker count) for the life of the interpreter, and
# drop a pool that breaks so the fallback chain starts fresh.
_POOLS: dict[tuple[str, int], Executor] = {}


def _pool_for(executor: str, workers: int) -> Executor:
    key = (executor, workers)
    pool = _POOLS.get(key)
    if pool is None:
        pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
        pool = pool_cls(max_workers=workers)
        _POOLS[key] = pool
    return pool


def _discard_pool(executor: str, workers: int) -> None:
    pool = _POOLS.pop((executor, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


def _execute(
    executor: str, occupied: list[tuple[int, list[GroupTask]]]
) -> dict[int, tuple[float, list[tuple[str, EngineResult]]]]:
    """Run every non-empty shard under the named executor."""
    if executor == "serial":
        return {
            index: run_shard([task.to_payload() for task in bucket])
            for index, bucket in occupied
        }
    payloads = {
        index: [task.to_payload() for task in bucket] for index, bucket in occupied
    }
    workers = max(1, len(occupied))
    try:
        pool = _pool_for(executor, workers)
        futures = {index: pool.submit(run_shard, batch) for index, batch in payloads.items()}
        return {index: future.result() for index, future in futures.items()}
    except Exception:
        # A broken or unusable pool must not be reused by later runs.
        _discard_pool(executor, workers)
        raise


def run_tasks(
    tasks: Sequence[GroupTask], shards: int = 1, executor: str = "process"
) -> ShardedResult:
    """Convenience wrapper: run a workload on a fresh runtime."""
    return ShardedRuntime(shards=shards, executor=executor).run(tasks)


def run_sequential(tasks: Sequence[GroupTask]) -> ShardedResult:
    """Reference run: every task in order, one process, one shard."""
    return ShardedRuntime(shards=1, executor="serial").run(tasks)
