"""Task model for the sharded runtime.

A :class:`GroupTask` is the unit of placement: one filter group (given as
spec strings, see :mod:`repro.filters.spec`), one engine configuration
and one time-ordered stream, identified by a *group key*.  Groups are
independent by construction — the paper's coordination state (group
utility, regions, decided outputs) is scoped to one group sharing one
data source — so tasks can run on any shard, in any process, and produce
the same :class:`~repro.core.engine.EngineResult` as a sequential run.

Tasks serialize to plain tuples (:meth:`GroupTask.to_payload`) so worker
processes receive cheap, version-stable payloads instead of pickled
filter objects; filters are re-parsed from their specs inside the worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.tuples import StreamTuple

__all__ = ["EngineConfig", "GroupTask"]

_ALGORITHMS = ("region", "per_candidate_set", "self_interested")
_OUTPUTS = ("region", "pcs", "batched")


@dataclass(frozen=True)
class EngineConfig:
    """Portable engine configuration (mirrors Table 4.2 variants).

    ``constraint_ms`` enables timely cuts when not ``None``; ``output``
    selects the section-3.4 output strategy.  The self-interested
    baseline ignores both.
    """

    algorithm: str = "region"
    output: str = "region"
    batch_size: int = 100
    constraint_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.output not in _OUTPUTS:
            raise ValueError(f"unknown output strategy {self.output!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")


@dataclass(frozen=True)
class GroupTask:
    """One filter group plus its stream, ready to run on any shard."""

    key: str
    specs: tuple[str, ...]
    tuples: tuple[StreamTuple, ...]
    config: EngineConfig = field(default_factory=EngineConfig)

    @classmethod
    def build(
        cls,
        key: str,
        specs: Sequence[str],
        stream: Iterable[StreamTuple],
        config: Optional[EngineConfig] = None,
    ) -> "GroupTask":
        return cls(
            key=key,
            specs=tuple(specs),
            tuples=tuple(stream),
            config=config if config is not None else EngineConfig(),
        )

    def to_payload(self) -> tuple:
        """Flatten to plain builtins for cheap cross-process transfer."""
        rows = tuple(
            (item.seq, item.timestamp, tuple(item.values.items()))
            for item in self.tuples
        )
        cfg = self.config
        return (
            self.key,
            self.specs,
            cfg.algorithm,
            cfg.output,
            cfg.batch_size,
            cfg.constraint_ms,
            rows,
        )

    @staticmethod
    def from_payload(payload: tuple) -> "GroupTask":
        key, specs, algorithm, output, batch_size, constraint_ms, rows = payload
        config = EngineConfig(
            algorithm=algorithm,
            output=output,
            batch_size=batch_size,
            constraint_ms=constraint_ms,
        )
        tuples = tuple(
            StreamTuple(seq=seq, timestamp=ts, values=dict(values))
            for seq, ts, values in rows
        )
        return GroupTask(key=key, specs=tuple(specs), tuples=tuples, config=config)
