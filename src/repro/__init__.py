"""Group-aware stream filtering.

A reproduction of "Group-aware Stream Filtering" (Li & Kotz, 2007; Li's
Dartmouth dissertation TR2008-621): cooperative data-selection filters
that trade CPU time for network bandwidth in bandwidth-constrained
stream-processing systems.

Quick start::

    from repro import (
        Trace, GroupAwareEngine, SelfInterestedEngine, DeltaCompressionFilter,
    )

    trace = Trace.from_values([0, 35, 29, 45, 50, 59, 80, 97, 100, 112], "temp")
    group = [
        DeltaCompressionFilter("A", "temp", delta=50, slack=10),
        DeltaCompressionFilter("B", "temp", delta=40, slack=5),
        DeltaCompressionFilter("C", "temp", delta=80, slack=25),
    ]
    result = GroupAwareEngine(group).run(trace)
    print(result.output_count)   # 3 tuples serve all three applications

Subpackages: :mod:`repro.core` (algorithms), :mod:`repro.filters`
(filter framework), :mod:`repro.sources` (synthetic traces),
:mod:`repro.net` (simulated Solar-like dissemination),
:mod:`repro.timeliness` (delay models), :mod:`repro.metrics`
(evaluation metrics) and :mod:`repro.experiments` (table/figure
reproduction harness).
"""

from repro.core import (
    BatchedOutput,
    EngineResult,
    GroupAwareEngine,
    PerCandidateSetOutput,
    RegionOutput,
    RuntimePredictor,
    SelfInterestedEngine,
    StreamTuple,
    TimeConstraint,
    Trace,
    src_statistics,
)
from repro.filters import (
    AveragedDeltaFilter,
    DeltaCompressionFilter,
    GroupAwareFilter,
    StatefulDeltaCompressionFilter,
    StratifiedSamplingFilter,
    TrendDeltaFilter,
    parse_filter,
    parse_group,
)

__version__ = "1.0.0"

__all__ = [
    "AveragedDeltaFilter",
    "BatchedOutput",
    "DeltaCompressionFilter",
    "EngineResult",
    "GroupAwareEngine",
    "GroupAwareFilter",
    "PerCandidateSetOutput",
    "RegionOutput",
    "RuntimePredictor",
    "SelfInterestedEngine",
    "StatefulDeltaCompressionFilter",
    "StratifiedSamplingFilter",
    "StreamTuple",
    "TimeConstraint",
    "Trace",
    "TrendDeltaFilter",
    "__version__",
    "parse_filter",
    "parse_group",
    "src_statistics",
]
