"""Shared experiment harness: algorithm variants and group runs.

Table 4.2 names the algorithm variants compared throughout Chapter 4
(SI, RG, RG+C, PS, PS+C, plus output-strategy suffixes).  This module
maps those names to engine configurations and runs a filter group under
each, with fresh filter instances per run so state never leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.engine import EngineResult
from repro.core.tuples import Trace
from repro.runtime import EngineConfig, GroupTask, ShardedRuntime
from repro.runtime import EXECUTORS as _EXECUTORS
from repro.runtime import run_task as run_worker_task

__all__ = [
    "Variant",
    "STANDARD_VARIANTS",
    "run_variant",
    "run_group",
    "GroupRun",
    "set_parallelism",
    "get_parallelism",
]

#: Default group time constraint for +C variants.  The paper "set the
#: group time constraint large enough so that few regions were cut" for
#: the headline comparison (section 4.4).
DEFAULT_CONSTRAINT_MS = 500.0

#: Session-wide parallelism defaults, set by the CLI's ``--shards`` /
#: ``--executor`` flags.  ``run_group`` consults these when the caller
#: does not pass ``shards`` explicitly, so every registered experiment
#: picks up the flag without changing its signature.
_DEFAULT_SHARDS: int = 1
_DEFAULT_EXECUTOR: str = "process"


def set_parallelism(shards: int, executor: str = "process") -> None:
    """Set the default shard count / executor used by :func:`run_group`."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if executor not in _EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; expected {_EXECUTORS}")
    global _DEFAULT_SHARDS, _DEFAULT_EXECUTOR
    _DEFAULT_SHARDS = shards
    _DEFAULT_EXECUTOR = executor


def get_parallelism() -> tuple[int, str]:
    return _DEFAULT_SHARDS, _DEFAULT_EXECUTOR


@dataclass(frozen=True)
class Variant:
    """One named engine configuration (Table 4.2 notation)."""

    name: str
    algorithm: str  # "region" | "per_candidate_set" | "self_interested"
    cuts: bool = False
    constraint_ms: float = DEFAULT_CONSTRAINT_MS
    output: str = "region"  # "region" | "pcs" | "batched"
    batch_size: int = 100

    def to_engine_config(self, constraint_ms: Optional[float] = None) -> EngineConfig:
        """Portable config for the sharded runtime (same engine settings)."""
        constraint: Optional[float] = None
        if self.cuts:
            constraint = constraint_ms if constraint_ms is not None else self.constraint_ms
        return EngineConfig(
            algorithm=self.algorithm,
            output=self.output,
            batch_size=self.batch_size,
            constraint_ms=constraint,
        )


def variant_from_name(name: str) -> Variant:
    """Parse Table 4.2 notation like ``"RG+C"`` or ``"PS(B)-200"``."""
    text = name.strip()
    if text == "SI":
        return Variant("SI", "self_interested")
    if text.startswith("RG"):
        algorithm = "region"
        rest = text[2:]
    elif text.startswith("PS"):
        algorithm = "per_candidate_set"
        rest = text[2:]
    else:
        raise ValueError(f"unknown variant {name!r}")
    cuts = "+C" in rest
    output = "region"
    batch = 100
    if "(Pcs)" in rest:
        output = "pcs"
    elif "(B)" in rest:
        output = "batched"
        if ")-" in rest:
            batch = int(rest.split(")-", 1)[1])
    return Variant(text, algorithm, cuts=cuts, output=output, batch_size=batch)


STANDARD_VARIANTS = ("RG", "RG+C", "PS", "PS+C", "SI")


def run_variant(
    specs: Sequence[str],
    trace: Trace,
    variant: Variant | str,
    constraint_ms: Optional[float] = None,
) -> EngineResult:
    """Run one filter group (given as spec strings) under one variant.

    Delegates to the runtime worker's engine construction so the
    sequential and sharded paths are the same code — whatever engine a
    config produces here is exactly what a shard worker produces.
    """
    if isinstance(variant, str):
        variant = variant_from_name(variant)
    config = variant.to_engine_config(constraint_ms)
    return run_worker_task(
        GroupTask.build(key=variant.name, specs=specs, stream=trace, config=config)
    )


@dataclass
class GroupRun:
    """Results of running one group under several variants."""

    group_name: str
    results: dict[str, EngineResult] = field(default_factory=dict)

    def oi_ratio(self, variant: str) -> float:
        return self.results[variant].oi_ratio

    def output_ratio(self, variant: str, baseline: str = "SI") -> float:
        base = self.results[baseline].output_count
        if base == 0:
            raise ValueError("baseline produced no output")
        return self.results[variant].output_count / base


def run_group(
    group_name: str,
    specs: Sequence[str],
    trace: Trace,
    variants: Sequence[str] = STANDARD_VARIANTS,
    constraint_ms: Optional[float] = None,
    shards: Optional[int] = None,
    executor: Optional[str] = None,
) -> GroupRun:
    """Run a filter group under each named variant on the same trace.

    Variant runs are independent engine executions, so with ``shards > 1``
    they are dispatched to the sharded runtime (one :class:`GroupTask`
    per variant, keyed by variant name) and run in parallel.  Decided
    outputs are identical to the sequential path; only wall-clock
    changes.  When ``shards`` is ``None`` the CLI-settable default from
    :func:`set_parallelism` applies.
    """
    if shards is None:
        shards = _DEFAULT_SHARDS
    if executor is None:
        executor = _DEFAULT_EXECUTOR
    run = GroupRun(group_name=group_name)
    if shards > 1 and len(variants) > 1:
        tasks = [
            GroupTask.build(
                key=name,
                specs=specs,
                stream=trace,
                config=variant_from_name(name).to_engine_config(constraint_ms),
            )
            for name in variants
        ]
        sharded = ShardedRuntime(shards=shards, executor=executor).run(tasks)
        run.results.update(sharded.results)
        return run
    for name in variants:
        run.results[name] = run_variant(specs, trace, name, constraint_ms)
    return run
