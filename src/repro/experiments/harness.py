"""Shared experiment harness: algorithm variants and group runs.

Table 4.2 names the algorithm variants compared throughout Chapter 4
(SI, RG, RG+C, PS, PS+C, plus output-strategy suffixes).  This module
maps those names to engine configurations and runs a filter group under
each, with fresh filter instances per run so state never leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.cuts import TimeConstraint
from repro.core.engine import EngineResult, GroupAwareEngine, SelfInterestedEngine
from repro.core.output import BatchedOutput, PerCandidateSetOutput, RegionOutput
from repro.core.tuples import Trace
from repro.filters.spec import parse_group

__all__ = ["Variant", "STANDARD_VARIANTS", "run_variant", "run_group", "GroupRun"]

#: Default group time constraint for +C variants.  The paper "set the
#: group time constraint large enough so that few regions were cut" for
#: the headline comparison (section 4.4).
DEFAULT_CONSTRAINT_MS = 500.0


@dataclass(frozen=True)
class Variant:
    """One named engine configuration (Table 4.2 notation)."""

    name: str
    algorithm: str  # "region" | "per_candidate_set" | "self_interested"
    cuts: bool = False
    constraint_ms: float = DEFAULT_CONSTRAINT_MS
    output: str = "region"  # "region" | "pcs" | "batched"
    batch_size: int = 100

    def make_strategy(self):
        if self.output == "region":
            return RegionOutput()
        if self.output == "pcs":
            return PerCandidateSetOutput()
        if self.output == "batched":
            return BatchedOutput(self.batch_size)
        raise ValueError(f"unknown output strategy {self.output!r}")


def variant_from_name(name: str) -> Variant:
    """Parse Table 4.2 notation like ``"RG+C"`` or ``"PS(B)-200"``."""
    text = name.strip()
    if text == "SI":
        return Variant("SI", "self_interested")
    if text.startswith("RG"):
        algorithm = "region"
        rest = text[2:]
    elif text.startswith("PS"):
        algorithm = "per_candidate_set"
        rest = text[2:]
    else:
        raise ValueError(f"unknown variant {name!r}")
    cuts = "+C" in rest
    output = "region"
    batch = 100
    if "(Pcs)" in rest:
        output = "pcs"
    elif "(B)" in rest:
        output = "batched"
        if ")-" in rest:
            batch = int(rest.split(")-", 1)[1])
    return Variant(text, algorithm, cuts=cuts, output=output, batch_size=batch)


STANDARD_VARIANTS = ("RG", "RG+C", "PS", "PS+C", "SI")


def run_variant(
    specs: Sequence[str],
    trace: Trace,
    variant: Variant | str,
    constraint_ms: Optional[float] = None,
) -> EngineResult:
    """Run one filter group (given as spec strings) under one variant."""
    if isinstance(variant, str):
        variant = variant_from_name(variant)
    filters = parse_group(list(specs))
    if variant.algorithm == "self_interested":
        return SelfInterestedEngine(filters).run(trace)
    constraint = None
    if variant.cuts:
        constraint = TimeConstraint(
            constraint_ms if constraint_ms is not None else variant.constraint_ms
        )
    engine = GroupAwareEngine(
        filters,
        algorithm=variant.algorithm,
        output_strategy=variant.make_strategy(),
        time_constraint=constraint,
    )
    return engine.run(trace)


@dataclass
class GroupRun:
    """Results of running one group under several variants."""

    group_name: str
    results: dict[str, EngineResult] = field(default_factory=dict)

    def oi_ratio(self, variant: str) -> float:
        return self.results[variant].oi_ratio

    def output_ratio(self, variant: str, baseline: str = "SI") -> float:
        base = self.results[baseline].output_count
        if base == 0:
            raise ValueError("baseline produced no output")
        return self.results[variant].output_count / base


def run_group(
    group_name: str,
    specs: Sequence[str],
    trace: Trace,
    variants: Sequence[str] = STANDARD_VARIANTS,
    constraint_ms: Optional[float] = None,
) -> GroupRun:
    """Run a filter group under each named variant on the same trace."""
    run = GroupRun(group_name=group_name)
    for name in variants:
        run.results[name] = run_variant(specs, trace, name, constraint_ms)
    return run
