"""Command-line interface for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig_4_2
    python -m repro.experiments run fig_4_17 --tuples 1500 --repeats 3
    python -m repro.experiments all --tuples 2000
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import set_parallelism
from repro.runtime import EXECUTORS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id")
    _add_knobs(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_knobs(everything)
    return parser


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def _add_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tuples", type=int, default=3000, help="trace length")
    parser.add_argument("--repeats", type=int, default=None, help="repetitions")
    parser.add_argument("--seed", type=int, default=7, help="base random seed")
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="run variant engines on N parallel shards (default: 1, sequential)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="shard executor when --shards > 1 (default: process)",
    )


def _kwargs(args: argparse.Namespace) -> dict:
    kwargs = {"n_tuples": args.tuples, "seed": args.seed}
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    return kwargs


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "shards", None) is not None:
        set_parallelism(args.shards, args.executor)
    if args.command == "list":
        for experiment_id in EXPERIMENTS.ids():
            print(experiment_id)
        return 0
    if args.command == "run":
        report = EXPERIMENTS.run(args.experiment_id, **_kwargs(args))
        print(report)
        return 0
    # "all"
    for experiment_id in EXPERIMENTS.ids():
        started = time.perf_counter()
        report = EXPERIMENTS.run(experiment_id, **_kwargs(args))
        elapsed = time.perf_counter() - started
        print(report)
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
