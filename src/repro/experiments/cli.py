"""Command-line interface for the experiment harness and live service.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig_4_2
    python -m repro.experiments run fig_4_17 --tuples 1500 --repeats 3
    python -m repro.experiments all --tuples 2000
    python -m repro.experiments serve --port 7787 --http-port 7788
    python -m repro.experiments loadgen --rate 500 --duration 2 --size tiny
    python -m repro.experiments loadgen --transport tcp --verify
    python -m repro.experiments loadgen --transport tcp --connect 127.0.0.1:7787
    python -m repro.experiments watch --connect 127.0.0.1:7788
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import set_parallelism
from repro.runtime import EXECUTORS

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id")
    _add_knobs(run)

    everything = sub.add_parser("all", help="run every experiment")
    _add_knobs(everything)

    serve = sub.add_parser(
        "serve",
        help="run the networked dissemination gateway (TCP + HTTP snapshot)",
    )
    _add_serve_knobs(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="load-generate against the broker, writing a run manifest",
    )
    _add_service_knobs(loadgen)
    loadgen.add_argument(
        "--out",
        default="runs/loadgen",
        help="artifact directory for metrics.jsonl + summary.json",
    )
    loadgen.add_argument(
        "--verify",
        action="store_true",
        help="replay the offered trace through the batch engine and "
        "record whether decided outputs match",
    )
    loadgen.add_argument(
        "--progress",
        action="store_true",
        help="print each periodic metrics record as it is captured",
    )

    watch = sub.add_parser(
        "watch",
        help="stream health verdicts from a live gateway's /metrics + /events",
    )
    watch.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="HTTP (snapshot) address of a running `repro serve`",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, help="poll period in seconds"
    )
    watch.add_argument(
        "--rules",
        default=None,
        metavar="FILE",
        help="declarative rules file (TOML on 3.11+, JSON anywhere) "
        "replacing/extending the stock rules and SLO windows",
    )
    watch.add_argument(
        "--polls",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop after N polls (default: run until interrupted)",
    )
    watch.add_argument(
        "--json",
        action="store_true",
        help="print each report as one JSON line instead of the text view",
    )
    watch.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the final HealthReport JSON to this file",
    )
    watch.add_argument(
        "--expect",
        choices=("ok", "warn", "critical"),
        default=None,
        help="exit nonzero unless the final report's status matches",
    )

    scenario = sub.add_parser(
        "scenario",
        help="run a declarative robustness scenario and grade its verdict",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_run = scenario_sub.add_parser(
        "run",
        help="run one scenario file (TOML/JSON) to a verdict manifest",
    )
    scenario_run.add_argument("file", help="scenario file path")
    scenario_run.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory (summary, metrics, events, verdict.json); "
        "default runs/scenario/<name>[-off]",
    )
    scenario_run.add_argument(
        "--degradation",
        choices=("on", "off"),
        default="on",
        help="'off' strips the ladder and grades the [verdict.disabled] "
        "criteria instead (the control run)",
    )
    scenario_run.add_argument(
        "--json",
        action="store_true",
        help="print the verdict manifest as JSON instead of the text view",
    )
    return parser


def _add_serve_knobs(parser: argparse.ArgumentParser) -> None:
    from repro.service import FANOUTS, OVERFLOW_POLICIES
    from repro.transport import MAX_FRAME_BYTES

    parser.add_argument(
        "--fanout",
        choices=FANOUTS,
        default="shared",
        help="decided-batch delivery: 'shared' encodes each tuple once "
        "per codec and fans the segments out by reference; "
        "'per_session' re-serializes per subscriber (PR-3 baseline)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=7787,
        help="gateway TCP port (0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="shard sources across N broker worker processes behind "
        "this gateway (default 1: single in-process broker)",
    )
    parser.add_argument(
        "--standby",
        type=int,
        default=0,
        metavar="N",
        help="keep N warm standby workers mirroring the first N shards; "
        "a failover promotes the standby and splices its shadow "
        "streams with zero delivery gap (requires --workers > 1... N)",
    )
    parser.add_argument(
        "--self-heal",
        action="store_true",
        help="run the remediation loop: Watchtower verdict edges drive "
        "standby adoption, respawns, live migration and (policy-"
        "gated) scaling; requires --workers > 1, --http-port and "
        "telemetry",
    )
    parser.add_argument(
        "--watch-rules",
        default=None,
        metavar="FILE",
        help="declarative rules file (TOML on 3.11+, JSON anywhere) "
        "for the built-in Watchtower's rules/SLOs and the "
        "remediation policy",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="also serve GET /snapshot and /healthz on this port",
    )
    parser.add_argument(
        "--sources",
        default="random_walk",
        help="comma-separated source names to advertise at startup "
        "(clients can add more with ensure_source)",
    )
    parser.add_argument(
        "--algorithm", choices=("region", "per_candidate_set"), default="region"
    )
    parser.add_argument("--constraint-ms", type=float, default=None)
    parser.add_argument("--queue-capacity", type=int, default=16)
    parser.add_argument("--overflow", choices=OVERFLOW_POLICIES, default="block")
    parser.add_argument("--batch-items", type=int, default=8)
    parser.add_argument("--batch-delay-ms", type=float, default=50.0)
    parser.add_argument(
        "--no-tick-cuts",
        action="store_true",
        help="restrict timely cuts to arrivals (needed when a remote "
        "loadgen verifies a constrained run against the batch engine)",
    )
    parser.add_argument("--auth-token", default=None)
    parser.add_argument("--max-frame-bytes", type=int, default=MAX_FRAME_BYTES)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--watch-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll period of the built-in Watchtower serving "
        "/health/report (0 disables; needs --http-port and telemetry)",
    )
    parser.add_argument(
        "--metrics-scrape-ttl",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="cluster routers cache per-worker /metrics bodies and "
        "/events folds this long (0 re-scrapes every request)",
    )
    _add_telemetry_knobs(parser)


def _add_telemetry_knobs(parser: argparse.ArgumentParser) -> None:
    from repro.obs import DEFAULT_SAMPLE_PERIOD

    parser.add_argument(
        "--trace-sample",
        type=_positive_int,
        default=DEFAULT_SAMPLE_PERIOD,
        metavar="N",
        help="stage-trace roughly one in N tuples (deterministic on the "
        f"tuple key, default {DEFAULT_SAMPLE_PERIOD})",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable metrics, tracing and the event log entirely "
        "(/metrics and /events answer 404)",
    )


async def _serve_async(args: argparse.Namespace) -> int:
    from repro.runtime.tasks import EngineConfig
    from repro.service import DisseminationService, ServiceConfig
    from repro.transport import GatewayServer, SnapshotHTTP

    source_names: list[str] = []
    for name in (part.strip() for part in args.sources.split(",")):
        if name and name not in source_names:
            source_names.append(name)
    telemetry = None
    if not args.no_telemetry:
        from repro.obs import Telemetry

        telemetry = Telemetry(sample_period=args.trace_sample)
    rules_config = None
    if args.watch_rules is not None:
        from repro.obs.rulesfile import RulesFileError, load_rules_file

        try:
            rules_config = load_rules_file(args.watch_rules)
        except RulesFileError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
    if args.self_heal and args.workers <= 1:
        print(
            "serve: --self-heal needs a worker fleet (--workers > 1)",
            file=sys.stderr,
        )
        return 2
    if args.self_heal and (
        args.http_port is None or telemetry is None or args.watch_interval <= 0
    ):
        print(
            "serve: --self-heal needs the built-in Watchtower "
            "(--http-port, telemetry and --watch-interval > 0)",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1:
        from repro.service.cluster import ClusterConfig, ClusterService

        service = ClusterService(
            ClusterConfig(
                workers=args.workers,
                sources=tuple(source_names),
                algorithm=args.algorithm,
                constraint_ms=args.constraint_ms,
                queue_capacity=args.queue_capacity,
                overflow=args.overflow,
                batch_max_items=args.batch_items,
                batch_max_delay_ms=args.batch_delay_ms,
                tick_cuts=not args.no_tick_cuts,
                seed=args.seed,
                max_frame_bytes=args.max_frame_bytes,
                metrics_scrape_ttl_s=args.metrics_scrape_ttl,
                standby=max(args.standby, 0),
            ),
            telemetry=telemetry,
        )
        await service.start()
    else:
        service = DisseminationService(
            ServiceConfig(
                engine=EngineConfig(
                    algorithm=args.algorithm, constraint_ms=args.constraint_ms
                ),
                queue_capacity=args.queue_capacity,
                overflow=args.overflow,
                batch_max_items=args.batch_items,
                batch_max_delay_ms=args.batch_delay_ms,
                tick_cuts=not args.no_tick_cuts,
                seed=args.seed,
            ),
            telemetry=telemetry,
        )
        for name in source_names:
            if not service.has_source(name):
                service.add_source(name)
    gateway = GatewayServer(
        service,
        host=args.host,
        port=args.port,
        auth_token=args.auth_token,
        max_frame_bytes=args.max_frame_bytes,
        fanout=args.fanout,
        telemetry=telemetry,
    )
    http = None
    watchtower = None
    watch_task = None
    remediation = None
    try:
        await gateway.start()
        if args.http_port is not None:
            if telemetry is not None and args.watch_interval > 0:
                from repro.obs.watch import LocalProbe, Watchtower

                watch_kwargs: dict = {}
                if rules_config is not None:
                    watch_kwargs["rules"] = rules_config.rules
                    watch_kwargs["slos"] = rules_config.slos
                    # File settings win over the CLI defaults.
                    settings = rules_config.watch
                    if "decide_p99_target_ms" in settings:
                        watch_kwargs["decide_p99_target_ms"] = settings[
                            "decide_p99_target_ms"
                        ]
                    if "death_window_s" in settings:
                        watch_kwargs["death_window_s"] = settings[
                            "death_window_s"
                        ]
                    if "flap_window_s" in settings:
                        watch_kwargs["flap_window_s"] = settings[
                            "flap_window_s"
                        ]
                interval = args.watch_interval
                if rules_config is not None:
                    interval = rules_config.watch.get("interval_s", interval)
                watchtower = Watchtower(
                    LocalProbe(telemetry, service=service),
                    interval_s=interval,
                    events=telemetry.events,
                    **watch_kwargs,
                )
            http = SnapshotHTTP(
                service, host=args.host, port=args.http_port,
                telemetry=telemetry, watchtower=watchtower,
            )
            await http.start()
            if args.self_heal and watchtower is not None:
                from repro.service.remediate import (
                    RemediationLoop,
                    RemediationPolicy,
                )

                policy = RemediationPolicy(
                    **(
                        rules_config.remediation
                        if rules_config is not None
                        and rules_config.remediation is not None
                        else {}
                    )
                )
                remediation = RemediationLoop(
                    service,
                    watchtower,
                    policy=policy,
                    events=telemetry.events,
                )
                remediation.attach()
            if watchtower is not None:
                watch_task = asyncio.create_task(watchtower.run())
    except BaseException:
        # A bind failure after the cluster came up must not strand the
        # worker subprocesses (children outlive a crashed parent).
        await service.close()
        raise
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    signals = (signal.SIGINT, signal.SIGTERM)
    try:
        for signum in signals:
            loop.add_signal_handler(signum, stop.set)

        def unhook() -> None:
            for signum in signals:
                loop.remove_signal_handler(signum)

    except NotImplementedError:
        # Windows event loops have no add_signal_handler; fall back to
        # the plain signal module (the handler only sets an Event).
        previous = {
            signum: signal.signal(
                signum, lambda *_: loop.call_soon_threadsafe(stop.set)
            )
            for signum in signals
        }

        def unhook() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    ready = f"gateway listening on {args.host}:{gateway.port}"
    if http is not None:
        ready += f", http on {args.host}:{http.port}"
    print(ready, flush=True)
    await stop.wait()
    unhook()
    if remediation is not None:
        await remediation.close()
    if watch_task is not None:
        watch_task.cancel()
        try:
            await watch_task
        except asyncio.CancelledError:
            pass
    # Graceful shutdown: final-flush every session batcher (gateway
    # shutdown closes the service, which cuts engines over and flushes),
    # then emit the terminal snapshot for whoever is scraping stdout.
    snapshot = await gateway.shutdown()
    if http is not None:
        await http.close()
    print(json.dumps(snapshot), flush=True)
    return 0


async def _watch_async(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.watch import HttpProbe, Watchtower, format_report

    host, _, port_text = args.connect.rpartition(":")
    if not port_text.isdigit():
        print(f"--connect must be HOST:PORT, got {args.connect!r}")
        return 2
    tower_kwargs: dict = {}
    interval = args.interval
    if args.rules is not None:
        from repro.obs.rulesfile import RulesFileError, load_rules_file

        try:
            config = load_rules_file(args.rules)
        except RulesFileError as exc:
            print(f"watch: {exc}", file=sys.stderr)
            return 2
        tower_kwargs["rules"] = config.rules
        tower_kwargs["slos"] = config.slos
        settings = config.watch
        if "decide_p99_target_ms" in settings:
            tower_kwargs["decide_p99_target_ms"] = settings[
                "decide_p99_target_ms"
            ]
        if "death_window_s" in settings:
            tower_kwargs["death_window_s"] = settings["death_window_s"]
        if "flap_window_s" in settings:
            tower_kwargs["flap_window_s"] = settings["flap_window_s"]
        interval = settings.get("interval_s", interval)
    tower = Watchtower(
        HttpProbe(host or "127.0.0.1", int(port_text)),
        interval_s=interval,
        **tower_kwargs,
    )
    report = None
    polls = 0
    while args.polls is None or polls < args.polls:
        report = await tower.poll()
        polls += 1
        if args.json:
            print(json.dumps(report.to_dict()), flush=True)
        else:
            print(format_report(report), flush=True)
        if args.polls is not None and polls >= args.polls:
            break
        await asyncio.sleep(interval)
    if args.out is not None and report is not None:
        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
    if args.expect is not None and (
        report is None or report.status != args.expect
    ):
        got = report.status if report is not None else "none"
        print(f"watch: expected final status {args.expect!r}, got {got!r}")
        # Name the rules that produced the mismatched status — "it went
        # critical" without which rule and at what value is undebuggable
        # from CI logs.
        if report is not None:
            for verdict in report.firing:
                bound = (
                    f"{verdict.threshold:g}"
                    if verdict.threshold is not None
                    else "n/a"
                )
                print(
                    f"watch:   {verdict.status:<8} {verdict.name} "
                    f"({verdict.signal} = {verdict.value:g}, "
                    f"threshold {bound})"
                    + (f" - {verdict.detail}" if verdict.detail else "")
                )
        return 1
    return 0


def _add_service_knobs(parser: argparse.ArgumentParser) -> None:
    from repro.service import (
        CODECS,
        FANOUTS,
        LOADGEN_SOURCES,
        OVERFLOW_POLICIES,
        SIZES,
        TRANSPORTS,
    )

    parser.add_argument("--source", choices=LOADGEN_SOURCES, default="random_walk")
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="inproc",
        help="drive the broker in-process or across a real TCP socket",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="target an already-running gateway (requires --transport tcp); "
        "default self-hosts one on an ephemeral localhost port",
    )
    parser.add_argument(
        "--tuple-bytes",
        type=int,
        default=64,
        help="simulated payload bytes per tuple (multicast accounting "
        "and TCP ingest-frame padding)",
    )
    parser.add_argument(
        "--codec",
        choices=CODECS,
        default="binary",
        help="preferred wire body codec (tcp only; falls back to json "
        "if the server refuses binary)",
    )
    parser.add_argument(
        "--fanout",
        choices=FANOUTS,
        default="shared",
        help="self-hosted gateway delivery strategy: encode-once "
        "'shared' segments vs the 'per_session' re-serialize baseline",
    )
    parser.add_argument(
        "--ingest-batch",
        type=int,
        default=1,
        metavar="N",
        help="max tuples per ingest frame / broker offer; with N > 1 an "
        "AIMD controller sizes each flush from observed ack latency "
        "(see --fixed-batch)",
    )
    parser.add_argument(
        "--fixed-batch",
        action="store_true",
        help="disable adaptive ingest batching and always send "
        "--ingest-batch tuples per flush",
    )
    parser.add_argument(
        "--sources",
        type=_positive_int,
        default=1,
        metavar="N",
        help="independent source streams (each with its own subscriber "
        "set, feeder task and TCP connection)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="self-host a cluster of N broker worker processes behind "
        "the gateway (requires --transport tcp, no --connect)",
    )
    parser.add_argument("--size", choices=sorted(SIZES), default="tiny")
    parser.add_argument("--rate", type=float, default=500.0, help="tuples/sec")
    parser.add_argument("--duration", type=float, default=2.0, help="seconds")
    parser.add_argument("--mode", choices=("open", "closed"), default="open")
    parser.add_argument(
        "--algorithm", choices=("region", "per_candidate_set"), default="region"
    )
    parser.add_argument("--constraint-ms", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--queue-capacity", type=int, default=16)
    parser.add_argument("--overflow", choices=OVERFLOW_POLICIES, default="block")
    parser.add_argument("--batch-items", type=int, default=8)
    parser.add_argument("--batch-delay-ms", type=float, default=50.0)
    parser.add_argument(
        "--consumer-delay-ms",
        type=float,
        default=0.0,
        help="simulated per-batch consumer service time",
    )
    parser.add_argument(
        "--churn",
        action="store_true",
        help="apply the default subscriber churn schedule",
    )
    parser.add_argument(
        "--no-watch",
        action="store_true",
        help="skip the in-run Watchtower (no health block / health.json)",
    )
    _add_telemetry_knobs(parser)


def _service_config(args: argparse.Namespace, out_dir: str | None, verify: bool):
    from repro.service import LoadGenConfig, default_churn

    config = LoadGenConfig(
        source=args.source,
        size=args.size,
        rate=args.rate,
        duration_s=args.duration,
        mode=args.mode,
        algorithm=args.algorithm,
        constraint_ms=args.constraint_ms,
        seed=args.seed,
        queue_capacity=args.queue_capacity,
        overflow=args.overflow,
        batch_max_items=args.batch_items,
        batch_max_delay_ms=args.batch_delay_ms,
        consumer_delay_ms=args.consumer_delay_ms,
        out_dir=out_dir,
        verify=verify,
        transport=args.transport,
        connect=args.connect,
        tuple_size_bytes=args.tuple_bytes,
        codec=args.codec,
        fanout=args.fanout,
        ingest_batch=args.ingest_batch,
        adaptive_batch=not args.fixed_batch,
        sources=args.sources,
        workers=args.workers,
        trace_sample=0 if args.no_telemetry else args.trace_sample,
        watch=not args.no_watch,
    )
    if args.churn:
        from dataclasses import replace

        config = replace(config, churn=default_churn(config))
    return config


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def _add_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tuples", type=int, default=3000, help="trace length")
    parser.add_argument("--repeats", type=int, default=None, help="repetitions")
    parser.add_argument("--seed", type=int, default=7, help="base random seed")
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="run variant engines on N parallel shards (default: 1, sequential)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="process",
        help="shard executor when --shards > 1 (default: process)",
    )


def _kwargs(args: argparse.Namespace) -> dict:
    kwargs = {"n_tuples": args.tuples, "seed": args.seed}
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    return kwargs


def _scenario_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.scenario import (
        ScenarioError,
        load_scenario_file,
        run_scenario,
    )

    try:
        scenario = load_scenario_file(args.file)
    except ScenarioError as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2
    degradation = args.degradation != "off"
    out_dir = args.out
    if out_dir is None:
        out_dir = str(
            Path("runs")
            / "scenario"
            / (scenario.name + ("" if degradation else "-off"))
        )
    manifest = run_scenario(
        scenario, degradation=degradation, out_dir=out_dir
    )
    if args.json:
        print(json.dumps(manifest, indent=2))
    else:
        mode = "degradation on" if degradation else "degradation off"
        print(f"scenario {scenario.name!r} ({mode}):")
        for check in manifest["checks"]:
            flag = "PASS" if check["ok"] else "FAIL"
            bound = f" (value {check['value']!r}, bound {check['bound']!r})"
            print(f"  {flag}  {check['name']}{bound}  {check['detail']}")
        qos = manifest.get("qos")
        if qos:
            print(
                f"  qos: max level {qos.get('max_level')}, "
                f"{qos.get('degraded_events')} degrades / "
                f"{qos.get('recovered_events')} recoveries, "
                f"recovery {qos.get('recovery_time_s')}s"
            )
        print(f"  artifacts in {out_dir}/")
    if not manifest["passed"]:
        print("scenario: verdict FAILED", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "shards", None) is not None:
        set_parallelism(args.shards, args.executor)
    if args.command == "list":
        for experiment_id in EXPERIMENTS.ids():
            print(experiment_id)
        return 0
    if args.command == "run":
        report = EXPERIMENTS.run(args.experiment_id, **_kwargs(args))
        print(report)
        return 0
    if args.command == "serve":
        return asyncio.run(_serve_async(args))
    if args.command == "watch":
        try:
            return asyncio.run(_watch_async(args))
        except KeyboardInterrupt:
            return 130
    if args.command == "scenario":
        return _scenario_run(args)
    if args.command == "loadgen":
        from repro.service import run_loadgen

        def show(record: dict) -> None:
            print(
                f"[{record['t_s']:7.2f}s] offered={record['offered']} "
                f"decided={record['decided_emissions']} "
                f"delivered={record['delivered_tuples']} "
                f"dropped={record['dropped_tuples']} "
                f"sessions={record['session_count']} "
                f"p99={record['decide_p99_ms']:.1f}ms"
            )

        summary = run_loadgen(
            _service_config(args, args.out, args.verify),
            on_record=show if args.progress else None,
        )
        print(
            f"loadgen: {summary['offered']} offered, "
            f"{summary['delivered_tuples']} delivered, "
            f"{summary['dropped_tuples']} dropped, "
            f"p99 decide {summary['decide_latency_ms']['p99']:.1f} ms; "
            f"artifacts in {args.out}/"
        )
        if summary["equivalent_to_batch"] is False:
            print("ERROR: live decided outputs diverged from the batch engine")
            return 1
        return 0
    # "all"
    for experiment_id in EXPERIMENTS.ids():
        started = time.perf_counter()
        report = EXPERIMENTS.run(experiment_id, **_kwargs(args))
        elapsed = time.perf_counter() - started
        print(report)
        print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
