"""Experiment report container and registry plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ExperimentReport", "ExperimentRegistry"]


@dataclass
class ExperimentReport:
    """The regenerated artifact for one paper table or figure.

    ``text`` is the printable reproduction of the table/series;
    ``data`` holds the raw numbers for tests and EXPERIMENTS.md;
    ``paper_claim`` states what the paper reports, for side-by-side
    comparison.
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)
    paper_claim: str = ""

    def __str__(self) -> str:
        parts = [self.text]
        if self.paper_claim:
            parts.append(f"[paper] {self.paper_claim}")
        return "\n".join(parts)


class ExperimentRegistry:
    """Registry of experiment id -> callable producing a report."""

    def __init__(self) -> None:
        self._experiments: dict[str, Callable[..., ExperimentReport]] = {}

    def register(self, experiment_id: str):
        def decorator(function: Callable[..., ExperimentReport]):
            if experiment_id in self._experiments:
                raise ValueError(f"experiment {experiment_id!r} already registered")
            self._experiments[experiment_id] = function
            return function

        return decorator

    def run(self, experiment_id: str, **kwargs) -> ExperimentReport:
        try:
            function = self._experiments[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"available: {', '.join(sorted(self._experiments))}"
            ) from None
        return function(**kwargs)

    def ids(self) -> list[str]:
        return sorted(self._experiments)
