"""Experiment harness: regenerate every table and figure of the paper.

``EXPERIMENTS`` maps experiment ids (``table_4_1`` ... ``fig_5_5_scenario``)
to runners; the CLI (``python -m repro.experiments``) prints the rows the
paper reports.  DESIGN.md's per-experiment index maps ids to paper
artifacts and modules.
"""

from repro.experiments.chapter4 import CHAPTER4
from repro.experiments.chapter5 import CHAPTER5
from repro.experiments.configs import (
    FILTER_TYPE_NOTATIONS,
    TABLE_4_1_GROUPS,
    dc_specs_from_statistics,
    fig_4_19_groups,
    table_5_2_groups,
)
from repro.experiments.harness import (
    STANDARD_VARIANTS,
    GroupRun,
    Variant,
    run_group,
    run_variant,
)
from repro.experiments.report import ExperimentRegistry, ExperimentReport

__all__ = [
    "CHAPTER4",
    "CHAPTER5",
    "EXPERIMENTS",
    "ExperimentRegistry",
    "ExperimentReport",
    "FILTER_TYPE_NOTATIONS",
    "GroupRun",
    "STANDARD_VARIANTS",
    "TABLE_4_1_GROUPS",
    "Variant",
    "dc_specs_from_statistics",
    "fig_4_19_groups",
    "run_group",
    "run_variant",
    "table_5_2_groups",
]

#: Unified registry over both chapters.
EXPERIMENTS = ExperimentRegistry()
for _registry in (CHAPTER4, CHAPTER5):
    for _experiment_id in _registry.ids():
        EXPERIMENTS._experiments[_experiment_id] = _registry._experiments[_experiment_id]
